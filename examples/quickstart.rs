//! Quickstart: open a PebblesDB database, write, snapshot, stream a cursor
//! and inspect the FLSM layout.
//!
//! ```text
//! cargo run -p pebblesdb-examples --bin quickstart
//! ```

use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{Db, KvStore, ReadOptions, WriteBatch};
use pebblesdb_env::DiskEnv;

fn main() {
    let dir = pebblesdb_examples::scratch_dir("quickstart");
    let env = DiskEnv::new();
    let _ = std::fs::remove_dir_all(&dir);

    // Open (and create) a database on disk.
    let db = PebblesDb::open(Arc::new(env), &dir).expect("open database");

    // Single writes and reads.
    db.put(b"language", b"rust").expect("put");
    db.put(b"paper", b"pebblesdb-sosp17").expect("put");
    assert_eq!(db.get(b"language").expect("get"), Some(b"rust".to_vec()));

    // Atomic batches.
    let mut batch = WriteBatch::new();
    batch.put(b"guard", b"skip-list inspired");
    batch.delete(b"language");
    db.write(batch).expect("batch write");
    assert_eq!(db.get(b"language").expect("get"), None);

    // Insert a larger sorted range.
    for i in 0..10_000u32 {
        db.put(
            format!("key{i:06}").as_bytes(),
            format!("value-{i}").as_bytes(),
        )
        .expect("bulk put");
    }
    db.flush().expect("flush");

    // Pin a snapshot, then keep writing: reads through the snapshot still
    // see the pre-write state.
    let snap = db.snapshot();
    db.put(b"key000100", b"overwritten-later").expect("put");
    assert_eq!(
        db.get_opts(&snap.read_options(), b"key000100")
            .expect("snapshot get"),
        Some(b"value-100".to_vec())
    );

    // Stream a range with a cursor instead of materialising a vector: seek
    // to the start, then drive `next()` lazily.
    let mut iter = db.iter(&snap.read_options()).expect("iterator");
    iter.seek(b"key000100");
    let mut printed = 0;
    println!("cursor over [key000100, key000110):");
    while iter.valid() && iter.key() < b"key000110".as_slice() {
        println!(
            "  {} -> {}",
            String::from_utf8_lossy(iter.key()),
            String::from_utf8_lossy(iter.value())
        );
        printed += 1;
        iter.next();
    }
    assert_eq!(printed, 10);
    drop(iter);
    drop(snap); // releases the pinned sequence so compaction may GC it

    // The materialising convenience API is still there, built on the cursor.
    let range = db
        .scan(b"key000100", b"key000110", 100)
        .expect("range query");
    println!("scan() returned {} entries (newest data)", range.len());
    assert_eq!(range[0].1, b"overwritten-later".to_vec());
    let _ = db.iter(&ReadOptions::default()).expect("plain cursor");

    // Column families: a secondary index in its own namespace, maintained
    // atomically with the primary rows. Every family shares the WAL and
    // sequence space, so one cross-family batch is one atomic commit.
    let by_value = db.create_cf("by-value").expect("create column family");
    let indexed_put = |key: &[u8], value: &[u8]| {
        let mut batch = WriteBatch::new();
        batch.put(key, value); // default family: the primary row
        batch.put_cf(by_value.id(), &[value, b"/", key].concat(), &[]); // index entry
        db.write(batch).expect("atomic cross-family batch");
    };
    indexed_put(b"user:1", b"alice");
    indexed_put(b"user:2", b"bob");
    indexed_put(b"user:3", b"alice");
    // Look keys up by value with a scan over the index family only; the
    // family is a real namespace, so the cursor never sees primary rows.
    let alices = by_value
        .scan(b"alice/", b"alice0", 100)
        .expect("index scan");
    println!(
        "\nindex family finds {} keys for value \"alice\": {:?}",
        alices.len(),
        alices
            .iter()
            .map(|(k, _)| String::from_utf8_lossy(&k[b"alice/".len()..]).into_owned())
            .collect::<Vec<_>>()
    );
    assert_eq!(alices.len(), 2);
    println!("column families: {:?}", db.list_cfs());
    for cf in db.cf_stats() {
        println!(
            "  {}: {} files, {} live bytes, {} flushes",
            cf.name, cf.num_files, cf.live_bytes, cf.flushes
        );
    }

    // Peek at the FLSM structure and the store statistics.
    println!("\nFLSM layout: {}", db.level_summary());
    println!("guards per level: {:?}", db.guards_per_level());
    let stats = db.stats();
    println!(
        "user data {} | device writes {} | write amplification {:.2}",
        pebblesdb_examples::mib(stats.user_bytes_written),
        pebblesdb_examples::mib(stats.bytes_written),
        stats.write_amplification()
    );

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
