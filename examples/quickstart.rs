//! Quickstart: open a PebblesDB database, write, read, scan and inspect the
//! FLSM layout.
//!
//! ```text
//! cargo run -p pebblesdb-examples --bin quickstart
//! ```

use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, WriteBatch};
use pebblesdb_env::DiskEnv;

fn main() {
    let dir = pebblesdb_examples::scratch_dir("quickstart");
    let env = DiskEnv::new();
    let _ = std::fs::remove_dir_all(&dir);

    // Open (and create) a database on disk.
    let db = PebblesDb::open(Arc::new(env), &dir).expect("open database");

    // Single writes and reads.
    db.put(b"language", b"rust").expect("put");
    db.put(b"paper", b"pebblesdb-sosp17").expect("put");
    assert_eq!(db.get(b"language").expect("get"), Some(b"rust".to_vec()));

    // Atomic batches.
    let mut batch = WriteBatch::new();
    batch.put(b"guard", b"skip-list inspired");
    batch.delete(b"language");
    db.write(batch).expect("batch write");
    assert_eq!(db.get(b"language").expect("get"), None);

    // Insert a larger sorted range and run a range query.
    for i in 0..10_000u32 {
        db.put(format!("key{i:06}").as_bytes(), format!("value-{i}").as_bytes())
            .expect("bulk put");
    }
    db.flush().expect("flush");
    let range = db
        .scan(b"key000100", b"key000110", 100)
        .expect("range query");
    println!("range query returned {} entries:", range.len());
    for (key, value) in &range {
        println!("  {} -> {}", String::from_utf8_lossy(key), String::from_utf8_lossy(value));
    }

    // Peek at the FLSM structure and the store statistics.
    println!("\nFLSM layout: {}", db.level_summary());
    println!("guards per level: {:?}", db.guards_per_level());
    let stats = db.stats();
    println!(
        "user data {} | device writes {} | write amplification {:.2}",
        pebblesdb_examples::mib(stats.user_bytes_written),
        pebblesdb_examples::mib(stats.bytes_written),
        stats.write_amplification()
    );

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
