//! Run a small YCSB session-store workload (Load A + workload A) against
//! PebblesDB and print throughput and latency percentiles.
//!
//! ```text
//! cargo run -p pebblesdb-examples --bin ycsb_workload
//! ```

use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, StoreOptions};
use pebblesdb_env::MemEnv;
use pebblesdb_ycsb::runner::load_phase;
use pebblesdb_ycsb::{run_workload, CoreWorkload, WorkloadKind};

fn main() {
    let records = 20_000u64;
    let operations = 10_000u64;
    let threads = 4;

    let env = Arc::new(MemEnv::new());
    let options = StoreOptions::default().scale_down(16);
    let store: Arc<dyn KvStore> = Arc::new(
        PebblesDb::open_with_options(env, std::path::Path::new("/ycsb"), options).expect("open"),
    );

    println!("loading {records} records with {threads} threads...");
    let workload = CoreWorkload::preset(WorkloadKind::LoadA, records).with_value_size(1024);
    load_phase(&store, &workload, threads).expect("load phase");
    store.flush().expect("flush");

    for kind in [
        WorkloadKind::A,
        WorkloadKind::B,
        WorkloadKind::C,
        WorkloadKind::E,
    ] {
        let report = run_workload(Arc::clone(&store), kind, records, operations, threads, 1024)
            .expect("run workload");
        println!(
            "workload {:<6} {:>8.1} KOps/s   p50 {:>6} us   p99 {:>8} us   ({} ops)",
            report.workload,
            report.kops_per_second(),
            report.latency.percentile(50.0),
            report.latency.percentile(99.0),
            report.operations
        );
    }

    let stats = store.stats();
    println!(
        "\ntotal write IO {} for {} of user data (write amplification {:.2})",
        pebblesdb_examples::mib(stats.bytes_written),
        pebblesdb_examples::mib(stats.user_bytes_written),
        stats.write_amplification()
    );
}
