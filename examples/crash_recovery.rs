//! Crash recovery: write data, simulate a crash (including a torn tail on
//! the write-ahead log), reopen and verify everything durable is back.
//!
//! ```text
//! cargo run -p pebblesdb-examples --bin crash_recovery
//! ```

use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, StoreOptions};
use pebblesdb_env::{Env, MemEnv};

fn main() {
    let env_concrete = MemEnv::new();
    let env: Arc<dyn Env> = Arc::new(env_concrete.clone());
    let dir = Path::new("/crashdb");
    let options = StoreOptions::default().scale_down(32);
    let keys = 20_000u32;

    let guards_before;
    {
        let db = PebblesDb::open_with_options(Arc::clone(&env), dir, options.clone())
            .expect("open database");
        for i in 0..keys {
            db.put(
                format!("key{i:08}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .expect("put");
        }
        // No flush: recent writes only exist in the write-ahead log.
        guards_before = db.guards_per_level();
        println!(
            "wrote {keys} keys; layout before crash: {}",
            db.level_summary()
        );

        // Simulate a crash that tears the tail of the live WAL.
        let wal_name = env
            .children(dir)
            .expect("list files")
            .into_iter()
            .filter(|name| name.ends_with(".log"))
            .max()
            .expect("a live WAL exists");
        let wal_path = dir.join(&wal_name);
        let size = env.file_size(&wal_path).expect("wal size") as usize;
        env_concrete
            .truncate_file(&wal_path, size.saturating_sub(7))
            .expect("truncate");
        println!("simulated crash: dropped the process and tore 7 bytes off {wal_name}");
        // The database handle is dropped here without any shutdown work.
    }

    let db = PebblesDb::open_with_options(env, dir, options).expect("recover database");
    let mut recovered = 0u32;
    for i in 0..keys {
        if db
            .get(format!("key{i:08}").as_bytes())
            .expect("get")
            .is_some()
        {
            recovered += 1;
        }
    }
    println!(
        "after recovery: {recovered}/{keys} keys readable (only the torn tail record may be lost)"
    );
    println!("guards before crash: {guards_before:?}");
    println!("guards after crash:  {:?}", db.guards_per_level());
    assert!(recovered >= keys - 100, "recovery lost too much data");
    println!("crash recovery OK: data and guard metadata survived.");
}
