//! Compare FLSM and LSM compaction behaviour side by side (the scenario of
//! Figures 2.1 and 3.1 in the paper).
//!
//! Inserts the same random workload into PebblesDB and the HyperLevelDB-style
//! baseline, then prints each store's level layout, write amplification and
//! compaction effort.
//!
//! ```text
//! cargo run -p pebblesdb-examples --bin compare_engines
//! ```

use std::path::Path;
use std::sync::Arc;

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, ReadOptions, StoreOptions, StorePreset};
use pebblesdb_env::MemEnv;
use pebblesdb_lsm::LsmDb;

fn small_options() -> StoreOptions {
    let mut options = StoreOptions::default();
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 32 << 10;
    options.base_level_bytes = 128 << 10;
    options.top_level_bits = 10;
    options
}

fn workload(store: &dyn KvStore, keys: u32) {
    for i in 0..keys {
        let k = (i.wrapping_mul(48271)) % keys;
        store
            .put(format!("key{k:08}").as_bytes(), &vec![b'v'; 256])
            .expect("put");
    }
    store.flush().expect("flush");
}

/// Streams the whole store through the cursor API, the read pattern the
/// FLSM pays for and the iterator-level optimisations win back.
fn full_cursor_walk(store: &dyn KvStore) -> u64 {
    let mut iter = store.iter(&ReadOptions::default()).expect("cursor");
    iter.seek_to_first();
    let mut rows = 0u64;
    while iter.valid() {
        rows += 1;
        iter.next();
    }
    rows
}

fn main() {
    let keys = 30_000u32;

    let pebbles_env = Arc::new(MemEnv::new());
    let pebbles = PebblesDb::open_with_options(pebbles_env, Path::new("/pebbles"), small_options())
        .expect("open pebblesdb");
    workload(&pebbles, keys);

    let lsm_env = Arc::new(MemEnv::new());
    let lsm = LsmDb::open_with_options(
        lsm_env,
        Path::new("/hyper"),
        small_options(),
        StorePreset::HyperLevelDb,
    )
    .expect("open baseline");
    workload(&lsm, keys);

    println!("{keys} random inserts of 256-byte values into both engines\n");

    println!(
        "full cursor walk: PebblesDB streamed {} rows, baseline {} rows\n",
        full_cursor_walk(&pebbles),
        full_cursor_walk(&lsm)
    );

    let p = pebbles.stats();
    println!("PebblesDB (FLSM)");
    println!("  layout:             {}", pebbles.level_summary());
    println!("  guards per level:   {:?}", pebbles.guards_per_level());
    println!("  write amplification {:.2}", p.write_amplification());
    println!(
        "  compactions {}  (read {}  wrote {})",
        p.compactions,
        pebblesdb_examples::mib(p.compaction_bytes_read),
        pebblesdb_examples::mib(p.compaction_bytes_written)
    );

    let l = lsm.stats();
    println!("\nHyperLevelDB-style baseline (LSM)");
    println!("  layout:             {}", lsm.level_summary());
    println!("  write amplification {:.2}", l.write_amplification());
    println!(
        "  compactions {}  (read {}  wrote {})",
        l.compactions,
        pebblesdb_examples::mib(l.compaction_bytes_read),
        pebblesdb_examples::mib(l.compaction_bytes_written)
    );

    println!(
        "\nFLSM compaction reads {:.1}x less data than the LSM baseline on this workload,",
        l.compaction_bytes_read.max(1) as f64 / p.compaction_bytes_read.max(1) as f64
    );
    println!("because it never rewrites sstables that already live in the next level.");
}
