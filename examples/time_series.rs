//! Time-series ingestion: the empty-guard scenario of Figure 5.4.
//!
//! Inserts several consecutive key windows, deleting each window before
//! moving on (as a metrics retention policy would), and shows that read
//! throughput stays stable even as guards from expired windows become empty.
//! Each window is additionally range-read through a pinned snapshot cursor —
//! the "consistent backup while ingestion continues" scenario the
//! snapshot-aware API makes first-class.
//!
//! ```text
//! cargo run -p pebblesdb-examples --bin time_series
//! ```

use std::sync::Arc;
use std::time::Instant;

use pebblesdb::PebblesDb;
use pebblesdb_common::{KvStore, StoreOptions};
use pebblesdb_env::MemEnv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let window = 15_000u64;
    let iterations = 5u64;

    let env = Arc::new(MemEnv::new());
    let options = StoreOptions::default().scale_down(16);
    let db = PebblesDb::open_with_options(env, std::path::Path::new("/timeseries"), options)
        .expect("open");
    let mut rng = StdRng::seed_from_u64(1);

    println!("{iterations} windows of {window} keys (insert, read, expire)\n");
    for iteration in 0..iterations {
        let base = iteration * window;
        for i in 0..window {
            db.put(
                format!("metric.{:012}", base + i).as_bytes(),
                &vec![b'm'; 256],
            )
            .expect("put");
        }

        let reads = window / 2;
        let start = Instant::now();
        let mut found = 0u64;
        for _ in 0..reads {
            let k = base + rng.gen_range(0..window);
            if db
                .get(format!("metric.{k:012}").as_bytes())
                .expect("get")
                .is_some()
            {
                found += 1;
            }
        }
        let kops = reads as f64 / start.elapsed().as_secs_f64() / 1000.0;

        // Pin the window before expiring it, then stream the whole window
        // through the snapshot cursor *while* the deletes land — the cursor
        // still sees every key of the window.
        let snap = db.snapshot();
        for i in 0..window {
            db.delete(format!("metric.{:012}", base + i).as_bytes())
                .expect("delete");
        }
        let mut iter = db.iter(&snap.read_options()).expect("snapshot cursor");
        iter.seek(format!("metric.{base:012}").as_bytes());
        let mut snapshot_rows = 0u64;
        while iter.valid() && snapshot_rows < window {
            snapshot_rows += 1;
            iter.next();
        }
        drop(iter);
        drop(snap);
        db.flush().expect("flush");

        println!(
            "window {:>2}: reads {:>7.1} KOps/s ({found}/{reads} hits), \
             snapshot scan saw {snapshot_rows}/{window} expired rows, \
             empty guards so far: {}",
            iteration + 1,
            kops,
            db.empty_guards()
        );
    }
    println!("\nfinal layout: {}", db.level_summary());
    println!("Empty guards accumulate but do not slow reads down — the Figure 5.4 result.");
}
