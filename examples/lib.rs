//! Shared helpers for the runnable examples.
//!
//! Each example is a stand-alone binary (`cargo run -p pebblesdb-examples
//! --bin <name>`); this small library only holds the bits they share, namely
//! creating a scratch directory and formatting byte counts.

use std::path::PathBuf;

/// Returns a unique scratch directory under the system temp dir.
pub fn scratch_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pebblesdb-example-{name}-{}", std::process::id()))
}

/// Formats a byte count as mebibytes.
pub fn mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_distinct_per_name() {
        assert_ne!(scratch_dir("a"), scratch_dir("b"));
        assert!(mib(1024 * 1024).starts_with("1.00"));
    }
}
