//! RESP2 wire framing, shared by the network server and its clients.
//!
//! The workspace is offline, so the codec is written in-tree like the other
//! protocol-level pieces (WAL records, sstable blocks). RESP2 was chosen
//! because it is trivially debuggable (`redis-cli`-compatible framing), has a
//! self-describing type system that maps cleanly onto key-value replies, and
//! supports pipelining for free — frames are self-delimiting, so a client may
//! write N commands before reading N replies.
//!
//! The decoder is **incremental**: [`decode`] parses at most one complete
//! frame from a byte slice and reports how many bytes it consumed, returning
//! `Ok(None)` when the frame is torn (more bytes are needed). Malformed or
//! oversized frames return an error — the connection layer replies with a
//! protocol error and closes, but the process never panics on untrusted
//! input. [`RespCodec`] wraps the buffer bookkeeping so both the server's
//! connection loop and the bench client share one resumption path.

use crate::error::{Error, Result};

/// One RESP2 value (a frame, or an element of an array frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespValue {
    /// `+OK\r\n` — a short non-binary status string.
    Simple(String),
    /// `-ERR message\r\n` — an error reply.
    Error(String),
    /// `:42\r\n` — a signed 64-bit integer.
    Integer(i64),
    /// `$5\r\nhello\r\n` — a binary-safe string.
    Bulk(Vec<u8>),
    /// `$-1\r\n` — the null bulk string ("no value").
    NullBulk,
    /// `*2\r\n...` — an array of values (commands are arrays of bulks).
    Array(Vec<RespValue>),
    /// `*-1\r\n` — the null array.
    NullArray,
}

impl RespValue {
    /// The canonical `+OK` reply.
    pub fn ok() -> RespValue {
        RespValue::Simple("OK".to_string())
    }

    /// An error reply with the given message.
    pub fn error(msg: impl Into<String>) -> RespValue {
        RespValue::Error(msg.into())
    }

    /// A bulk string holding `bytes`.
    pub fn bulk(bytes: impl Into<Vec<u8>>) -> RespValue {
        RespValue::Bulk(bytes.into())
    }

    /// Encodes a client command (an array of bulk strings).
    pub fn command(args: &[&[u8]]) -> RespValue {
        RespValue::Array(args.iter().map(|a| RespValue::bulk(a.to_vec())).collect())
    }

    /// Serialises the value into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RespValue::Simple(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Error(s) => {
                out.push(b'-');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Integer(i) => {
                out.push(b':');
                out.extend_from_slice(i.to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            RespValue::Bulk(b) => {
                out.push(b'$');
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(b);
                out.extend_from_slice(b"\r\n");
            }
            RespValue::NullBulk => out.extend_from_slice(b"$-1\r\n"),
            RespValue::Array(items) => {
                out.push(b'*');
                out.extend_from_slice(items.len().to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
                for item in items {
                    item.encode_into(out);
                }
            }
            RespValue::NullArray => out.extend_from_slice(b"*-1\r\n"),
        }
    }

    /// Serialises the value into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Interprets this frame as a command: an array of binary-safe strings.
    ///
    /// This is the server-side entry point, so it is strict: anything other
    /// than a non-empty array of bulk (or simple) strings is a protocol
    /// error.
    pub fn into_command(self) -> Result<Vec<Vec<u8>>> {
        let items = match self {
            RespValue::Array(items) => items,
            other => {
                return Err(protocol_error(format!(
                    "expected a command array, got {}",
                    other.type_name()
                )))
            }
        };
        if items.is_empty() {
            return Err(protocol_error("empty command array"));
        }
        let mut args = Vec::with_capacity(items.len());
        for item in items {
            match item {
                RespValue::Bulk(bytes) => args.push(bytes),
                RespValue::Simple(s) => args.push(s.into_bytes()),
                other => {
                    return Err(protocol_error(format!(
                        "command arguments must be bulk strings, got {}",
                        other.type_name()
                    )))
                }
            }
        }
        Ok(args)
    }

    /// A short human-readable name of the value's wire type.
    pub fn type_name(&self) -> &'static str {
        match self {
            RespValue::Simple(_) => "simple string",
            RespValue::Error(_) => "error",
            RespValue::Integer(_) => "integer",
            RespValue::Bulk(_) => "bulk string",
            RespValue::NullBulk => "null bulk string",
            RespValue::Array(_) => "array",
            RespValue::NullArray => "null array",
        }
    }
}

/// Creates the error used for every framing violation. The connection layer
/// matches on the `protocol error` prefix to decide the connection must
/// close (command-level errors keep it open).
pub fn protocol_error(msg: impl std::fmt::Display) -> Error {
    Error::invalid_argument(format!("protocol error: {msg}"))
}

/// Returns `true` if `err` is a framing violation produced by this module.
pub fn is_protocol_error(err: &Error) -> bool {
    matches!(err, Error::InvalidArgument(msg) if msg.starts_with("protocol error:"))
}

/// Hard bounds on accepted frames, so an untrusted peer cannot make the
/// server allocate unbounded memory from a tiny header.
#[derive(Debug, Clone)]
pub struct RespLimits {
    /// Largest accepted bulk-string payload, in bytes.
    pub max_bulk_len: usize,
    /// Largest accepted array element count.
    pub max_array_len: usize,
    /// Deepest accepted array nesting.
    pub max_depth: usize,
    /// Longest accepted `\r\n`-terminated header line.
    pub max_line_len: usize,
}

impl Default for RespLimits {
    fn default() -> RespLimits {
        RespLimits {
            max_bulk_len: 8 << 20,
            max_array_len: 1 << 16,
            max_depth: 8,
            max_line_len: 128,
        }
    }
}

/// Attempts to parse one complete frame from the front of `buf`.
///
/// Returns `Ok(Some((value, consumed)))` on success, `Ok(None)` when `buf`
/// holds only a prefix of a frame (feed more bytes and retry — torn frames
/// always resume), and an error when the bytes can never become a valid
/// frame under `limits`.
pub fn decode(buf: &[u8], limits: &RespLimits) -> Result<Option<(RespValue, usize)>> {
    let mut pos = 0usize;
    match decode_at(buf, &mut pos, limits, 0)? {
        Some(value) => Ok(Some((value, pos))),
        None => Ok(None),
    }
}

/// Reads one `\r\n`-terminated line starting at `*pos`, advancing past it.
fn decode_line<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    limits: &RespLimits,
) -> Result<Option<&'a [u8]>> {
    let rest = &buf[*pos..];
    match rest.windows(2).position(|w| w == b"\r\n") {
        Some(end) => {
            if end > limits.max_line_len {
                return Err(protocol_error("header line too long"));
            }
            let line = &rest[..end];
            if line.contains(&b'\r') || line.contains(&b'\n') {
                return Err(protocol_error("bare CR or LF inside header line"));
            }
            *pos += end + 2;
            Ok(Some(line))
        }
        None => {
            // No terminator yet; if the partial line already exceeds the
            // bound it can never become valid.
            if rest.len() > limits.max_line_len + 1 {
                return Err(protocol_error("header line too long"));
            }
            Ok(None)
        }
    }
}

/// Parses the decimal integer of a header line (`:`, `$`, `*` payloads).
fn parse_int(line: &[u8], what: &str) -> Result<i64> {
    let text = std::str::from_utf8(line)
        .map_err(|_| protocol_error(format!("non-ASCII {what} header")))?;
    text.parse::<i64>()
        .map_err(|_| protocol_error(format!("malformed {what} header {text:?}")))
}

fn decode_at(
    buf: &[u8],
    pos: &mut usize,
    limits: &RespLimits,
    depth: usize,
) -> Result<Option<RespValue>> {
    if depth > limits.max_depth {
        return Err(protocol_error("array nesting too deep"));
    }
    let Some(&type_byte) = buf.get(*pos) else {
        return Ok(None);
    };
    *pos += 1;
    match type_byte {
        b'+' => Ok(decode_line(buf, pos, limits)?
            .map(|line| RespValue::Simple(String::from_utf8_lossy(line).into_owned()))),
        b'-' => Ok(decode_line(buf, pos, limits)?
            .map(|line| RespValue::Error(String::from_utf8_lossy(line).into_owned()))),
        b':' => match decode_line(buf, pos, limits)? {
            Some(line) => Ok(Some(RespValue::Integer(parse_int(line, "integer")?))),
            None => Ok(None),
        },
        b'$' => {
            let Some(line) = decode_line(buf, pos, limits)? else {
                return Ok(None);
            };
            let len = parse_int(line, "bulk length")?;
            if len == -1 {
                return Ok(Some(RespValue::NullBulk));
            }
            if len < 0 {
                return Err(protocol_error(format!("negative bulk length {len}")));
            }
            let len = len as usize;
            // Oversize is rejected from the header alone, before the payload
            // arrives — a 4 GiB announcement never allocates 4 GiB.
            if len > limits.max_bulk_len {
                return Err(protocol_error(format!(
                    "bulk length {len} exceeds limit {}",
                    limits.max_bulk_len
                )));
            }
            if buf.len() < *pos + len + 2 {
                return Ok(None);
            }
            let payload = buf[*pos..*pos + len].to_vec();
            if &buf[*pos + len..*pos + len + 2] != b"\r\n" {
                return Err(protocol_error("bulk payload not CRLF-terminated"));
            }
            *pos += len + 2;
            Ok(Some(RespValue::Bulk(payload)))
        }
        b'*' => {
            let Some(line) = decode_line(buf, pos, limits)? else {
                return Ok(None);
            };
            let len = parse_int(line, "array length")?;
            if len == -1 {
                return Ok(Some(RespValue::NullArray));
            }
            if len < 0 {
                return Err(protocol_error(format!("negative array length {len}")));
            }
            let len = len as usize;
            if len > limits.max_array_len {
                return Err(protocol_error(format!(
                    "array length {len} exceeds limit {}",
                    limits.max_array_len
                )));
            }
            let mut items = Vec::with_capacity(len.min(64));
            for _ in 0..len {
                match decode_at(buf, pos, limits, depth + 1)? {
                    Some(item) => items.push(item),
                    None => return Ok(None),
                }
            }
            Ok(Some(RespValue::Array(items)))
        }
        other => Err(protocol_error(format!(
            "unknown frame type byte 0x{other:02x}"
        ))),
    }
}

/// A resumable frame buffer: feed raw bytes in, take complete frames out.
///
/// Consumed bytes are compacted away lazily so pipelined bursts do not
/// memmove on every frame.
#[derive(Debug, Default)]
pub struct RespCodec {
    limits: RespLimits,
    buf: Vec<u8>,
    start: usize,
}

impl RespCodec {
    /// Creates a codec enforcing `limits`.
    pub fn new(limits: RespLimits) -> RespCodec {
        RespCodec {
            limits,
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Appends raw bytes received from the peer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing once the dead prefix dominates.
        if self.start > 0 && self.start >= self.buf.len() / 2 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Takes the next complete frame, or `None` if the buffer holds only a
    /// torn prefix. Errors are sticky protocol violations: the connection
    /// must be closed.
    pub fn next_frame(&mut self) -> Result<Option<RespValue>> {
        match decode(&self.buf[self.start..], &self.limits)? {
            Some((value, consumed)) => {
                self.start += consumed;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some(value))
            }
            None => Ok(None),
        }
    }

    /// Bytes currently buffered but not yet parsed into frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(value: &RespValue) {
        let encoded = value.encode();
        let (decoded, consumed) = decode(&encoded, &RespLimits::default())
            .unwrap()
            .expect("complete frame");
        assert_eq!(&decoded, value);
        assert_eq!(consumed, encoded.len());
    }

    #[test]
    fn scalar_frames_roundtrip() {
        roundtrip(&RespValue::ok());
        roundtrip(&RespValue::error("ERR boom"));
        roundtrip(&RespValue::Integer(0));
        roundtrip(&RespValue::Integer(-42));
        roundtrip(&RespValue::Integer(i64::MAX));
        roundtrip(&RespValue::bulk(b"".to_vec()));
        roundtrip(&RespValue::bulk(b"binary\x00\xff\r\nsafe".to_vec()));
        roundtrip(&RespValue::NullBulk);
        roundtrip(&RespValue::NullArray);
        roundtrip(&RespValue::Array(vec![]));
    }

    #[test]
    fn command_frames_roundtrip_and_parse() {
        let cmd = RespValue::command(&[b"SET", b"key", b"value"]);
        roundtrip(&cmd);
        let args = cmd.into_command().unwrap();
        assert_eq!(
            args,
            vec![b"SET".to_vec(), b"key".to_vec(), b"value".to_vec()]
        );
        assert!(RespValue::Integer(1).into_command().is_err());
        assert!(RespValue::Array(vec![]).into_command().is_err());
        assert!(RespValue::Array(vec![RespValue::Integer(1)])
            .into_command()
            .is_err());
    }

    /// Builds a random RESP value tree (bounded depth/size).
    fn arbitrary_value(rng: &mut StdRng, depth: usize) -> RespValue {
        let pick = if depth == 0 {
            rng.gen_range(0..5)
        } else {
            rng.gen_range(0..7)
        };
        match pick {
            0 => RespValue::Simple(
                (0..rng.gen_range(0..20))
                    .map(|_| rng.gen_range(b'a'..=b'z') as char)
                    .collect(),
            ),
            1 => RespValue::Error(format!("ERR code {}", rng.gen_range(0..1000))),
            2 => RespValue::Integer(rng.gen::<i64>()),
            3 => {
                let len = rng.gen_range(0..200);
                RespValue::Bulk((0..len).map(|_| rng.gen::<u8>()).collect())
            }
            4 => {
                if rng.gen_bool(0.5) {
                    RespValue::NullBulk
                } else {
                    RespValue::NullArray
                }
            }
            _ => {
                let len = rng.gen_range(0..6);
                RespValue::Array((0..len).map(|_| arbitrary_value(rng, depth - 1)).collect())
            }
        }
    }

    #[test]
    fn property_arbitrary_batches_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x5e59);
        for _ in 0..200 {
            // Encode a pipelined batch of frames back to back, then decode
            // them all out of one buffer.
            let batch: Vec<RespValue> = (0..rng.gen_range(1..8))
                .map(|_| arbitrary_value(&mut rng, 3))
                .collect();
            let mut wire = Vec::new();
            for value in &batch {
                value.encode_into(&mut wire);
            }
            let limits = RespLimits::default();
            let mut offset = 0usize;
            let mut decoded = Vec::new();
            while offset < wire.len() {
                let (value, consumed) = decode(&wire[offset..], &limits)
                    .unwrap()
                    .expect("complete frame");
                decoded.push(value);
                offset += consumed;
            }
            assert_eq!(decoded, batch);
        }
    }

    #[test]
    fn property_torn_frames_resume_at_any_split() {
        let mut rng = StdRng::seed_from_u64(0x7041);
        for _ in 0..100 {
            let batch: Vec<RespValue> = (0..rng.gen_range(1..5))
                .map(|_| arbitrary_value(&mut rng, 2))
                .collect();
            let mut wire = Vec::new();
            for value in &batch {
                value.encode_into(&mut wire);
            }
            // Feed the wire bytes in random-sized chunks; every prefix must
            // either yield frames or report "incomplete", never error.
            let mut codec = RespCodec::new(RespLimits::default());
            let mut decoded = Vec::new();
            let mut offset = 0usize;
            while offset < wire.len() {
                let chunk = rng.gen_range(1..=(wire.len() - offset).min(7));
                codec.feed(&wire[offset..offset + chunk]);
                offset += chunk;
                while let Some(value) = codec.next_frame().expect("no protocol error") {
                    decoded.push(value);
                }
            }
            assert_eq!(decoded, batch);
            assert_eq!(codec.pending_bytes(), 0);
        }
    }

    #[test]
    fn oversized_frames_are_rejected_from_the_header() {
        let limits = RespLimits {
            max_bulk_len: 16,
            max_array_len: 4,
            max_depth: 2,
            max_line_len: 32,
        };
        // The bulk header alone must trigger the error — no payload arrives.
        assert!(decode(b"$17\r\n", &limits).is_err());
        assert!(decode(b"$999999999999\r\n", &limits).is_err());
        assert!(decode(b"*5\r\n", &limits).is_err());
        // Nesting deeper than the limit.
        assert!(decode(b"*1\r\n*1\r\n*1\r\n*1\r\n:1\r\n", &limits).is_err());
        // A header line that never terminates but already exceeds the bound.
        let long = vec![b'x'; 64];
        let mut frame = vec![b'+'];
        frame.extend_from_slice(&long);
        assert!(decode(&frame, &limits).is_err());
        // At the limit everything still works.
        assert!(decode(b"$16\r\n0123456789abcdef\r\n", &limits)
            .unwrap()
            .is_some());
    }

    #[test]
    fn malformed_frames_error_instead_of_panicking() {
        let limits = RespLimits::default();
        for bad in [
            b"?1\r\n".as_slice(),
            b":abc\r\n",
            b"$-2\r\n",
            b"*-2\r\n",
            b"$3\r\nabcd\r\n", // payload longer than announced
            b":1\n\r\n",
        ] {
            assert!(decode(bad, &limits).is_err(), "{bad:?} must error");
        }
        // A protocol error is recognisable as such.
        let err = decode(b"?", &limits).unwrap_err();
        assert!(is_protocol_error(&err));
    }

    #[test]
    fn codec_compacts_consumed_prefixes() {
        let mut codec = RespCodec::new(RespLimits::default());
        for i in 0..100 {
            codec.feed(&RespValue::Integer(i).encode());
            assert_eq!(codec.next_frame().unwrap(), Some(RespValue::Integer(i)));
        }
        assert_eq!(codec.pending_bytes(), 0);
        // Interior buffer must not have grown with the traffic.
        assert!(codec.buf.len() < 64, "buffer retained {}", codec.buf.len());
    }
}
