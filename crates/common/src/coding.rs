//! Fixed-width and variable-length integer encodings.
//!
//! All on-disk formats in the workspace (write-ahead log, sstables, MANIFEST
//! version edits) use little-endian fixed-width integers and LEB128-style
//! varints, matching the conventions of the LevelDB family the paper builds
//! on.

use crate::error::{Error, Result};

/// Appends a little-endian `u32` to `dst`.
pub fn put_fixed32(dst: &mut Vec<u8>, value: u32) {
    dst.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64` to `dst`.
pub fn put_fixed64(dst: &mut Vec<u8>, value: u64) {
    dst.extend_from_slice(&value.to_le_bytes());
}

/// Decodes a little-endian `u32` from the first four bytes of `src`.
///
/// # Panics
///
/// Panics if `src` is shorter than four bytes.
pub fn decode_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().expect("buffer holds 4 bytes"))
}

/// Decodes a little-endian `u64` from the first eight bytes of `src`.
///
/// # Panics
///
/// Panics if `src` is shorter than eight bytes.
pub fn decode_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().expect("buffer holds 8 bytes"))
}

/// Appends a varint-encoded `u32` to `dst`.
pub fn put_varint32(dst: &mut Vec<u8>, value: u32) {
    put_varint64(dst, u64::from(value));
}

/// Appends a varint-encoded `u64` to `dst`.
pub fn put_varint64(dst: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        dst.push((value as u8 & 0x7f) | 0x80);
        value >>= 7;
    }
    dst.push(value as u8);
}

/// Decodes a varint `u64` from the front of `src`.
///
/// Returns the decoded value and the number of bytes consumed.
pub fn decode_varint64(src: &[u8]) -> Result<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (idx, &byte) in src.iter().enumerate() {
        if shift > 63 {
            return Err(Error::corruption("varint64 overflow"));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((result, idx + 1));
        }
        shift += 7;
    }
    Err(Error::corruption("truncated varint64"))
}

/// Decodes a varint `u32` from the front of `src`.
///
/// Returns the decoded value and the number of bytes consumed.
pub fn decode_varint32(src: &[u8]) -> Result<(u32, usize)> {
    let (value, len) = decode_varint64(src)?;
    if value > u64::from(u32::MAX) {
        return Err(Error::corruption("varint32 out of range"));
    }
    Ok((value as u32, len))
}

/// Appends a length-prefixed byte slice (varint length followed by the bytes).
pub fn put_length_prefixed_slice(dst: &mut Vec<u8>, value: &[u8]) {
    put_varint32(dst, value.len() as u32);
    dst.extend_from_slice(value);
}

/// Decodes a length-prefixed byte slice from the front of `src`.
///
/// Returns the slice and the total number of bytes consumed (prefix + data).
pub fn get_length_prefixed_slice(src: &[u8]) -> Result<(&[u8], usize)> {
    let (len, prefix) = decode_varint32(src)?;
    let len = len as usize;
    if src.len() < prefix + len {
        return Err(Error::corruption("truncated length-prefixed slice"));
    }
    Ok((&src[prefix..prefix + len], prefix + len))
}

/// Returns the number of bytes the varint encoding of `value` occupies.
pub fn varint_length(mut value: u64) -> usize {
    let mut len = 1;
    while value >= 0x80 {
        value >>= 7;
        len += 1;
    }
    len
}

/// A cursor over a byte slice used when decoding structured records.
///
/// The manifest and write-batch decoders use this to consume fields in order
/// while reporting corruption instead of panicking on truncated input.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, offset: 0 }
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.offset >= self.data.len()
    }

    /// Returns the number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    /// Reads a varint `u32`.
    pub fn read_varint32(&mut self) -> Result<u32> {
        let (value, used) = decode_varint32(&self.data[self.offset..])?;
        self.offset += used;
        Ok(value)
    }

    /// Reads a varint `u64`.
    pub fn read_varint64(&mut self) -> Result<u64> {
        let (value, used) = decode_varint64(&self.data[self.offset..])?;
        self.offset += used;
        Ok(value)
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn read_fixed32(&mut self) -> Result<u32> {
        if self.remaining() < 4 {
            return Err(Error::corruption("truncated fixed32"));
        }
        let value = decode_fixed32(&self.data[self.offset..]);
        self.offset += 4;
        Ok(value)
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn read_fixed64(&mut self) -> Result<u64> {
        if self.remaining() < 8 {
            return Err(Error::corruption("truncated fixed64"));
        }
        let value = decode_fixed64(&self.data[self.offset..]);
        self.offset += 8;
        Ok(value)
    }

    /// Reads a length-prefixed byte slice.
    pub fn read_length_prefixed_slice(&mut self) -> Result<&'a [u8]> {
        let (slice, used) = get_length_prefixed_slice(&self.data[self.offset..])?;
        self.offset += used;
        Ok(slice)
    }

    /// Reads exactly `n` raw bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption("truncated byte read"));
        }
        let slice = &self.data[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdeadbeef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(decode_fixed32(&buf), 0xdeadbeef);
        assert_eq!(decode_fixed64(&buf[4..]), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn varint_roundtrip_selected_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        for &v in &values {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), varint_length(v));
            let (decoded, used) = decode_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint32_rejects_out_of_range() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(decode_varint32(&buf).is_err());
    }

    #[test]
    fn truncated_varint_is_corruption() {
        let buf = vec![0x80u8, 0x80];
        assert!(decode_varint64(&buf).is_err());
    }

    #[test]
    fn length_prefixed_slice_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        put_length_prefixed_slice(&mut buf, b"");
        let (a, used_a) = get_length_prefixed_slice(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, used_b) = get_length_prefixed_slice(&buf[used_a..]).unwrap();
        assert_eq!(b, b"");
        assert_eq!(used_a + used_b, buf.len());
    }

    #[test]
    fn decoder_reads_fields_in_order() {
        let mut buf = Vec::new();
        put_varint32(&mut buf, 7);
        put_fixed64(&mut buf, 42);
        put_length_prefixed_slice(&mut buf, b"key");
        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.read_varint32().unwrap(), 7);
        assert_eq!(dec.read_fixed64().unwrap(), 42);
        assert_eq!(dec.read_length_prefixed_slice().unwrap(), b"key");
        assert!(dec.is_empty());
    }

    #[test]
    fn decoder_reports_truncation() {
        let mut buf = Vec::new();
        put_varint32(&mut buf, 10);
        buf.extend_from_slice(b"abc");
        let mut dec = Decoder::new(&buf);
        assert!(dec.read_length_prefixed_slice().is_err());
    }
}
