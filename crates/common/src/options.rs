//! Store configuration options and the presets used in the evaluation.
//!
//! The paper compares PebblesDB against LevelDB, HyperLevelDB and RocksDB,
//! which differ mainly in memtable size, level-0 back-pressure thresholds and
//! compaction aggressiveness (section 5.1 of the paper). [`StorePreset`]
//! captures those configurations so the benchmark harness can request "run
//! this workload with RocksDB-style parameters" for any engine.

use std::sync::Arc;

use crate::counters::CompressionStats;
use crate::key::SequenceNumber;

/// Which codec a block (or separated value) is stored with.
///
/// The numeric value of each variant is the on-disk compression tag written
/// in every sstable block trailer, so the enum doubles as the tag registry:
/// files written before compression existed carry tag `0` everywhere and
/// remain readable forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompressionType {
    /// Store bytes verbatim (tag 0 — the only tag older files contain).
    #[default]
    None,
    /// The in-tree LZ77-style codec from `pebblesdb-compress` (tag 1).
    Lz,
}

impl CompressionType {
    /// The on-disk block-trailer tag for this codec.
    pub fn tag(self) -> u8 {
        match self {
            CompressionType::None => 0,
            CompressionType::Lz => 1,
        }
    }

    /// Short name used by flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            CompressionType::None => "off",
            CompressionType::Lz => "lz",
        }
    }

    /// Parses the `--compression` flag values.
    pub fn parse(flag: &str) -> Option<CompressionType> {
        match flag {
            "off" | "none" | "raw" | "0" => Some(CompressionType::None),
            "on" | "lz" | "1" => Some(CompressionType::Lz),
            _ => None,
        }
    }
}

/// Which evaluated key-value store a configuration models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorePreset {
    /// Google LevelDB defaults: 4 MiB memtable, level-0 slowdown 8 / stop 12.
    LevelDb,
    /// HyperLevelDB defaults: LevelDB sizes with more eager compaction.
    HyperLevelDb,
    /// RocksDB defaults: 64 MiB memtable, level-0 slowdown 20 / stop 24,
    /// multi-threaded compaction.
    RocksDb,
    /// PebblesDB defaults (FLSM engine with guards).
    PebblesDb,
    /// PebblesDB with `max_sstables_per_guard = 1`, which degenerates to
    /// LSM-like behaviour (the "PebblesDB-1" series in Figure 5.1d).
    PebblesDb1,
}

impl StorePreset {
    /// A short human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            StorePreset::LevelDb => "LevelDB",
            StorePreset::HyperLevelDb => "HyperLevelDB",
            StorePreset::RocksDb => "RocksDB",
            StorePreset::PebblesDb => "PebblesDB",
            StorePreset::PebblesDb1 => "PebblesDB-1",
        }
    }
}

/// Configuration shared by every engine in the workspace.
///
/// The FLSM-specific knobs (`max_sstables_per_guard`, guard-selection bits,
/// parallel seeks, ...) are ignored by the baseline LSM and B+Tree engines.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Create the database directory if it does not exist.
    pub create_if_missing: bool,
    /// Fail `open` if the database already exists.
    pub error_if_exists: bool,
    /// Verify checksums and fail loudly on any sign of corruption.
    pub paranoid_checks: bool,

    /// Size (bytes) a memtable may reach before being flushed to level 0.
    pub write_buffer_size: usize,
    /// Target size (bytes) of an sstable data block.
    pub block_size: usize,
    /// Number of entries between restart points in a data block.
    pub block_restart_interval: usize,
    /// Capacity (bytes) of the block cache shared by all sstables.
    pub block_cache_capacity: usize,
    /// Number of open sstable readers kept in the table cache.
    pub max_open_files: usize,
    /// Bits per key for the sstable-level bloom filter (0 disables filters).
    pub bloom_bits_per_key: usize,

    /// Number of on-disk levels (level 0 included).
    pub max_levels: usize,
    /// Number of level-0 files that triggers a compaction.
    pub level0_compaction_trigger: usize,
    /// Number of level-0 files at which writes are throttled.
    pub level0_slowdown_writes_trigger: usize,
    /// Number of level-0 files at which writes stop until compaction catches
    /// up.
    pub level0_stop_writes_trigger: usize,
    /// Target size (bytes) of an individual sstable produced by compaction.
    pub max_file_size: usize,
    /// Maximum total bytes for level 1; deeper levels multiply by
    /// [`StoreOptions::level_size_multiplier`].
    pub base_level_bytes: u64,
    /// Growth factor between consecutive level size budgets.
    pub level_size_multiplier: u64,
    /// Size of the background compaction worker pool.
    ///
    /// The FLSM engine runs this many workers, each claiming a *disjoint
    /// guard subset* of a level as an independent compaction job (the
    /// paper's multi-threaded compaction, section 4). A dedicated flush
    /// thread exists in addition to the pool, so `imm -> L0` never waits
    /// behind a compaction regardless of this setting. The baseline LSM
    /// engine keeps one compaction thread (classic leveled compaction
    /// cannot be split into disjoint jobs) plus the same dedicated flush
    /// thread.
    pub compaction_threads: usize,

    /// Key-value separation (WiscKey/BVLSM line): values of at least this
    /// many bytes are appended to a per-column-family value-log file at
    /// commit time, and the tree stores a fixed-size pointer instead. `0`
    /// (the default) disables separation entirely — every value stays
    /// inline and no `.vlog` files are created.
    ///
    /// Only the LSM engines built on the `crates/engine` chassis honour
    /// this; the B+Tree engine ignores it.
    pub value_separation_threshold: usize,
    /// Size (bytes) at which the active value-log file is sealed and a new
    /// one started. Sealed files are the unit of value-log garbage
    /// collection.
    pub vlog_file_size: usize,

    /// Byte budget of the in-memory change-data-capture tail: the most
    /// recent committed batches kept in memory so change streams
    /// (`Db::stream`) can follow the commit order without touching the WAL.
    /// Streams that fall further behind transparently replay closed WAL
    /// segments instead. Batches in the live WAL segment are always
    /// retained regardless of this budget, so the tail can briefly exceed
    /// it by up to one segment's worth.
    pub cdc_tail_bytes: usize,
    /// Closed WAL segments kept for change streams beyond what the column
    /// families still need for recovery.
    ///
    /// `0` (the default) keeps no extra segments — but a **live** stream
    /// pins every segment its cursor still needs, without bound, so an
    /// attached follower never loses history. `N > 0` always keeps the
    /// newest `N` closed segments (so a follower can resume across a
    /// restart of this store) **and** caps stream pinning at those `N`
    /// segments: a stream lagging past the cap has its history reclaimed
    /// and gets a `SequenceTruncated` error instead of stalling GC forever.
    pub cdc_wal_retain_segments: usize,

    /// Codec for sstable data/index blocks and separated vlog values.
    ///
    /// Applies uniformly to every level unless
    /// [`StoreOptions::compression_per_level`] overrides it. Whatever the
    /// setting, blocks whose compressed form saves less than ~12.5% are
    /// stored raw (tag 0), and readers always dispatch on the per-block tag
    /// — so mixing settings across restarts of one store is safe.
    pub compression: CompressionType,
    /// RocksDB-style per-level override of [`StoreOptions::compression`]:
    /// entry `i` is the codec for sstables written to level `i`. Empty (the
    /// default) means `compression` applies everywhere; levels at or beyond
    /// the last entry use the last entry (so `[None, None, Lz]` keeps the
    /// young, hot levels raw for flush latency and compresses level 2 and
    /// deeper). Vlog values always follow `compression` — they have no
    /// level.
    pub compression_per_level: Vec<CompressionType>,
    /// Compression counters shared by every component this options value is
    /// cloned into (table builders, block readers, vlog appenders), surfaced
    /// through `StoreStats`. Cloning options shares the `Arc`, so one store
    /// aggregates across all its column families.
    pub compression_stats: Arc<CompressionStats>,

    /// FLSM: maximum sstables a guard may hold before it must be compacted.
    pub max_sstables_per_guard: usize,
    /// FLSM: number of trailing hash bits that must be set for a key to be a
    /// guard at level 1 (section 4.4 of the paper, default 27 in the paper
    /// for 100M+ keys; scaled down here for laptop-scale datasets).
    pub top_level_bits: u32,
    /// FLSM: bits of relaxation per level when testing guard membership.
    pub bit_decrement: u32,
    /// FLSM: consecutive seeks that trigger seek-based compaction.
    pub seek_compaction_threshold: usize,
    /// FLSM: compact level `i` into `i+1` when `size(i) >= ratio *
    /// size(i+1)`.
    pub aggressive_compaction_ratio: f64,
    /// FLSM: threads used for parallel last-level seeks.
    pub parallel_seek_threads: usize,
    /// FLSM: rewrite into the second-highest level instead of merging when a
    /// last-level merge would cost this many times more IO.
    pub last_level_merge_io_factor: f64,
    /// FLSM: attach a bloom filter to every sstable (PebblesDB optimization).
    pub enable_sstable_bloom: bool,
    /// FLSM: position last-level sstable iterators with a thread pool.
    pub enable_parallel_seeks: bool,
    /// FLSM: enable the consecutive-seek compaction trigger.
    pub enable_seek_compaction: bool,
    /// FLSM: enable aggressive whole-level compaction when levels are close
    /// in size.
    pub enable_aggressive_compaction: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            create_if_missing: true,
            error_if_exists: false,
            paranoid_checks: false,

            write_buffer_size: 4 << 20,
            block_size: 4096,
            block_restart_interval: 16,
            block_cache_capacity: 8 << 20,
            max_open_files: 1000,
            bloom_bits_per_key: 10,

            max_levels: 7,
            level0_compaction_trigger: 4,
            level0_slowdown_writes_trigger: 8,
            level0_stop_writes_trigger: 12,
            max_file_size: 2 << 20,
            base_level_bytes: 10 << 20,
            level_size_multiplier: 10,
            compaction_threads: 1,

            value_separation_threshold: 0,
            vlog_file_size: 64 << 20,

            cdc_tail_bytes: 2 << 20,
            cdc_wal_retain_segments: 0,

            compression: CompressionType::None,
            compression_per_level: Vec::new(),
            compression_stats: Arc::new(CompressionStats::default()),

            max_sstables_per_guard: 8,
            top_level_bits: 14,
            bit_decrement: 2,
            seek_compaction_threshold: 10,
            aggressive_compaction_ratio: 0.25,
            parallel_seek_threads: 4,
            last_level_merge_io_factor: 25.0,
            enable_sstable_bloom: true,
            enable_parallel_seeks: true,
            enable_seek_compaction: true,
            enable_aggressive_compaction: true,
        }
    }
}

impl StoreOptions {
    /// Returns the options the paper uses for the given store preset.
    pub fn with_preset(preset: StorePreset) -> Self {
        let mut opts = StoreOptions::default();
        match preset {
            StorePreset::LevelDb => {
                opts.write_buffer_size = 4 << 20;
                opts.level0_slowdown_writes_trigger = 8;
                opts.level0_stop_writes_trigger = 12;
                opts.compaction_threads = 1;
            }
            StorePreset::HyperLevelDb => {
                opts.write_buffer_size = 4 << 20;
                opts.level0_slowdown_writes_trigger = 8;
                opts.level0_stop_writes_trigger = 12;
                opts.compaction_threads = 1;
            }
            StorePreset::RocksDb => {
                opts.write_buffer_size = 64 << 20;
                opts.level0_compaction_trigger = 4;
                opts.level0_slowdown_writes_trigger = 20;
                opts.level0_stop_writes_trigger = 24;
                opts.compaction_threads = 4;
            }
            StorePreset::PebblesDb => {
                // Section 4 of the paper: guards make per-range compaction
                // jobs independent, so PebblesDB compacts with a pool.
                opts.compaction_threads = 2;
            }
            StorePreset::PebblesDb1 => {
                opts.max_sstables_per_guard = 1;
                opts.compaction_threads = 2;
            }
        }
        opts
    }

    /// Scales the size-related knobs down by `factor`, keeping their ratios.
    ///
    /// The paper runs with datasets several times larger than RAM; the bench
    /// harness uses this to exercise the same level structure with
    /// laptop-scale datasets (e.g. `scale_down(16)` turns the 4 MiB memtable
    /// into 256 KiB so a 100k-key run still produces multi-level trees).
    pub fn scale_down(mut self, factor: usize) -> Self {
        let factor = factor.max(1);
        self.write_buffer_size = (self.write_buffer_size / factor).max(32 << 10);
        self.max_file_size = (self.max_file_size / factor).max(32 << 10);
        self.base_level_bytes = (self.base_level_bytes / factor as u64).max(128 << 10);
        self.block_cache_capacity = (self.block_cache_capacity / factor).max(64 << 10);
        self.vlog_file_size = (self.vlog_file_size / factor).max(256 << 10);
        self
    }

    /// The maximum total byte budget for a level.
    ///
    /// Level 0 is governed by file count rather than bytes; levels 1 and
    /// deeper grow geometrically.
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        if level == 0 {
            return self.base_level_bytes;
        }
        let mut size = self.base_level_bytes;
        for _ in 1..level {
            size = size.saturating_mul(self.level_size_multiplier);
        }
        size
    }

    /// The codec for sstables written to `level`: the matching
    /// [`StoreOptions::compression_per_level`] entry when one is set (levels
    /// past the end use the last entry), otherwise
    /// [`StoreOptions::compression`].
    pub fn compression_for_level(&self, level: usize) -> CompressionType {
        match self.compression_per_level.as_slice() {
            [] => self.compression,
            tiers => tiers[level.min(tiers.len() - 1)],
        }
    }

    /// Number of trailing set bits a key hash needs to become a guard at
    /// `level` (levels are 1-based for guards; level 0 has no guards).
    pub fn guard_bits_for_level(&self, level: usize) -> u32 {
        let relax = self
            .bit_decrement
            .saturating_mul(level.saturating_sub(1) as u32);
        self.top_level_bits.saturating_sub(relax).max(1)
    }
}

/// Options applied to individual read operations.
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Verify block checksums on every read.
    pub verify_checksums: bool,
    /// Insert blocks read by this operation into the block cache.
    pub fill_cache: bool,
    /// Read as of this sequence number; `None` reads the latest data.
    ///
    /// The sequence must come from a live
    /// [`Snapshot`](crate::snapshot::Snapshot) handle (keep the handle alive
    /// for the duration of the read or cursor). Engines only guarantee
    /// history for *pinned* sequences: compaction garbage-collects versions
    /// below the oldest pin, and the B+Tree keeps its undo overlay only
    /// while snapshots are live — an arbitrary unpinned sequence reads
    /// whatever versions still happen to exist.
    pub snapshot: Option<SequenceNumber>,
}

impl Default for ReadOptions {
    fn default() -> Self {
        ReadOptions {
            verify_checksums: false,
            fill_cache: true,
            snapshot: None,
        }
    }
}

/// Options applied to individual write operations.
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// Force the write-ahead log to stable storage before acknowledging.
    pub sync: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let hyper = StoreOptions::with_preset(StorePreset::HyperLevelDb);
        assert_eq!(hyper.write_buffer_size, 4 << 20);
        assert_eq!(hyper.level0_slowdown_writes_trigger, 8);
        assert_eq!(hyper.level0_stop_writes_trigger, 12);

        let rocks = StoreOptions::with_preset(StorePreset::RocksDb);
        assert_eq!(rocks.write_buffer_size, 64 << 20);
        assert_eq!(rocks.level0_slowdown_writes_trigger, 20);
        assert_eq!(rocks.level0_stop_writes_trigger, 24);
        assert!(rocks.compaction_threads > 1);

        let pebbles = StoreOptions::with_preset(StorePreset::PebblesDb);
        assert!(
            pebbles.compaction_threads > 1,
            "paper: multi-threaded compaction"
        );

        let pebbles1 = StoreOptions::with_preset(StorePreset::PebblesDb1);
        assert_eq!(pebbles1.max_sstables_per_guard, 1);
    }

    #[test]
    fn level_budgets_grow_geometrically() {
        let opts = StoreOptions::default();
        assert_eq!(opts.max_bytes_for_level(1), opts.base_level_bytes);
        assert_eq!(
            opts.max_bytes_for_level(2),
            opts.base_level_bytes * opts.level_size_multiplier
        );
        assert!(opts.max_bytes_for_level(4) > opts.max_bytes_for_level(3));
    }

    #[test]
    fn guard_bits_relax_with_depth() {
        let opts = StoreOptions::default();
        let l1 = opts.guard_bits_for_level(1);
        let l2 = opts.guard_bits_for_level(2);
        let l3 = opts.guard_bits_for_level(3);
        assert_eq!(l1, opts.top_level_bits);
        assert_eq!(l1 - l2, opts.bit_decrement);
        assert_eq!(l2 - l3, opts.bit_decrement);
        // Never relaxes to zero bits.
        assert!(opts.guard_bits_for_level(100) >= 1);
    }

    #[test]
    fn scale_down_preserves_floors() {
        let opts = StoreOptions::default().scale_down(1_000_000);
        assert!(opts.write_buffer_size >= 32 << 10);
        assert!(opts.max_file_size >= 32 << 10);
        assert!(opts.base_level_bytes >= 128 << 10);
    }

    #[test]
    fn per_level_compression_tiers_resolve_with_last_entry_extension() {
        let mut opts = StoreOptions::default();
        assert_eq!(opts.compression_for_level(0), CompressionType::None);

        opts.compression = CompressionType::Lz;
        assert_eq!(opts.compression_for_level(0), CompressionType::Lz);
        assert_eq!(opts.compression_for_level(6), CompressionType::Lz);

        // Young levels raw, level 2 and deeper compressed.
        opts.compression_per_level = vec![
            CompressionType::None,
            CompressionType::None,
            CompressionType::Lz,
        ];
        assert_eq!(opts.compression_for_level(0), CompressionType::None);
        assert_eq!(opts.compression_for_level(1), CompressionType::None);
        assert_eq!(opts.compression_for_level(2), CompressionType::Lz);
        assert_eq!(opts.compression_for_level(6), CompressionType::Lz);
    }

    #[test]
    fn compression_flag_parsing_and_tags() {
        assert_eq!(CompressionType::parse("on"), Some(CompressionType::Lz));
        assert_eq!(CompressionType::parse("off"), Some(CompressionType::None));
        assert_eq!(CompressionType::parse("lz"), Some(CompressionType::Lz));
        assert_eq!(CompressionType::parse("zstd"), None);
        assert_eq!(CompressionType::None.tag(), 0);
        assert_eq!(CompressionType::Lz.tag(), 1);
    }

    #[test]
    fn preset_names_are_unique() {
        let names = [
            StorePreset::LevelDb.name(),
            StorePreset::HyperLevelDb.name(),
            StorePreset::RocksDb.name(),
            StorePreset::PebblesDb.name(),
            StorePreset::PebblesDb1.name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
