//! Column families: multiple logical namespaces over one store.
//!
//! Production LSM descendants (RocksDB foremost) multiplex many keyspaces
//! over a single WAL, sequence space and compaction scheduler; the
//! application layers in this workspace used to fake the same thing with
//! key-prefix munging. This module is the public face of the real feature:
//!
//! * [`Db`] extends [`KvStore`] with namespace management
//!   (`create_cf`/`drop_cf`/`list_cfs`) and `*_cf` conveniences,
//! * [`ColumnFamilyHandle`] names one family and itself implements
//!   [`KvStore`], so every harness (bench, YCSB, the app layers) runs
//!   unchanged against either a whole database (the default family) or a
//!   single namespace,
//! * [`CfStats`] surfaces per-family counters so one family's compaction
//!   debt cannot hide behind another's, and
//! * [`PrefixDb`] emulates the API over any plain [`KvStore`] by key
//!   prefixing — the exact trick the app layers used to hand-roll, now
//!   written once — so engines without native families (the B+Tree) still
//!   serve multi-namespace workloads.
//!
//! Batches address families per record ([`WriteBatch::put_cf`]); a mixed
//! batch commits atomically across families because every family shares the
//! WAL and sequence space. Snapshots are store-wide: a pinned sequence is
//! consistent *across* families.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::batch::{CfId, WriteBatch};
use crate::error::{Error, Result};
use crate::iterator::DbIterator;
use crate::key::{SequenceNumber, ValueType};
use crate::options::{ReadOptions, WriteOptions};
use crate::replication::ChangeStream;
use crate::snapshot::Snapshot;
use crate::store::{KvStore, StoreStats};

/// The name of the column family every store starts with (id 0).
pub const DEFAULT_CF_NAME: &str = "default";

/// Per-column-family statistics, for detecting imbalance between
/// namespaces (one family's compaction debt hiding behind another's).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CfStats {
    /// The family's id (0 = default).
    pub id: CfId,
    /// The family's name.
    pub name: String,
    /// Live data files owned by this family.
    pub num_files: u64,
    /// Bytes currently live on disk for this family.
    pub live_bytes: u64,
    /// Completed memtable flushes of this family.
    pub flushes: u64,
    /// Bytes held by this family's active and immutable memtables.
    pub memtable_bytes: u64,
}

/// The raw namespace-scoped operations an engine core exposes.
///
/// Object-safe so a [`ColumnFamilyHandle`] can hold its store behind
/// `Arc<dyn CfOps>` and be a full [`KvStore`] itself. User code should not
/// call this directly — use [`Db`] and handles.
pub trait CfOps: Send + Sync {
    /// Stores `key -> value` in family `cf`.
    fn cf_put_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()>;
    /// Reads `key` from family `cf`.
    fn cf_get_opts(&self, cf: CfId, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>>;
    /// Deletes `key` from family `cf`.
    fn cf_delete_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8]) -> Result<()>;
    /// Applies a batch whose records carry per-record family ids, atomically
    /// across families.
    fn cf_write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()>;
    /// A streaming user-key cursor over family `cf`.
    fn cf_iter(&self, cf: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>>;
    /// Pins the store-wide sequence (consistent across families).
    fn cf_snapshot(&self) -> Snapshot;
    /// Flushes the whole store and waits for urgent compactions.
    fn cf_flush(&self) -> Result<()>;
    /// Store statistics with file/memory figures scoped to family `cf`.
    fn cf_kv_stats(&self, cf: CfId) -> StoreStats;
    /// Live file sizes of family `cf`.
    fn cf_live_file_sizes(&self, cf: CfId) -> Vec<u64>;
    /// The engine name (for benchmark labels).
    fn cf_engine_name(&self) -> String;
}

/// A named column family of an open store.
///
/// Cheap to clone; holds the store alive (background threads included), so a
/// handle outliving its [`Db`] keeps working. The handle implements
/// [`KvStore`] scoped to its namespace: plain batches written through it are
/// retargeted at the family, cursors stay inside it, and `scan`'s
/// "empty end = unbounded" means "to the end of this family".
#[derive(Clone)]
pub struct ColumnFamilyHandle {
    ops: Arc<dyn CfOps>,
    id: CfId,
    name: Arc<str>,
}

impl ColumnFamilyHandle {
    /// Creates a handle for family `id` of the store behind `ops`.
    ///
    /// Engines call this from `create_cf`/`cf`; user code receives handles
    /// rather than building them.
    pub fn new(ops: Arc<dyn CfOps>, id: CfId, name: &str) -> ColumnFamilyHandle {
        ColumnFamilyHandle {
            ops,
            id,
            name: Arc::from(name),
        }
    }

    /// The family's id (0 = default).
    pub fn id(&self) -> CfId {
        self.id
    }

    /// The family's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for ColumnFamilyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnFamilyHandle")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}

impl KvStore for ColumnFamilyHandle {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.ops.cf_put_opts(self.id, opts, key, value)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.ops.cf_get_opts(self.id, opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.ops.cf_delete_opts(self.id, opts, key)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.ops
            .cf_write_opts(opts, batch.retarget_default_cf(self.id)?)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.ops.cf_iter(self.id, opts)
    }

    fn snapshot(&self) -> Snapshot {
        self.ops.cf_snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.ops.cf_flush()
    }

    fn stats(&self) -> StoreStats {
        self.ops.cf_kv_stats(self.id)
    }

    fn engine_name(&self) -> String {
        if self.id == 0 {
            self.ops.cf_engine_name()
        } else {
            format!("{}#{}", self.ops.cf_engine_name(), self.name)
        }
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.ops.cf_live_file_sizes(self.id)
    }
}

/// A store with column families.
///
/// The default family (id 0, [`DEFAULT_CF_NAME`]) always exists, and the
/// `Db` itself is a [`KvStore`] over it, so single-namespace code keeps
/// running unchanged. All families share the WAL, the group-commit queue and
/// the sequence space; a [`WriteBatch`] mixing families via
/// [`WriteBatch::put_cf`] commits atomically, and a [`Snapshot`] pins a
/// sequence that is consistent across every family.
pub trait Db: KvStore {
    /// Creates a new, empty column family.
    ///
    /// Fails if a family named `name` already exists.
    fn create_cf(&self, name: &str) -> Result<ColumnFamilyHandle>;

    /// Drops a column family, deleting its data. The default family cannot
    /// be dropped. Outstanding handles and cursors of the dropped family
    /// become invalid (operations through them fail).
    fn drop_cf(&self, name: &str) -> Result<()>;

    /// The names of all live column families, default first.
    fn list_cfs(&self) -> Vec<String>;

    /// A handle for the existing family `name`, or `None`.
    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle>;

    /// Per-family statistics, in id order.
    fn cf_stats(&self) -> Vec<CfStats>;

    /// Opens a change stream delivering every committed batch whose last
    /// sequence is at or past `from_seq`, in commit order.
    ///
    /// Fails with [`Error::SequenceTruncated`](crate::error::Error) when the
    /// requested history has already been reclaimed, and with
    /// `InvalidArgument` on stores that do not support change streams (the
    /// chassis engines do; composite stores may not).
    fn stream(&self, from_seq: SequenceNumber) -> Result<Box<dyn ChangeStream>> {
        let _ = from_seq;
        Err(Error::invalid_argument(
            "this store does not support change streams",
        ))
    }

    /// The sequence number of the last committed write, `0` when the store
    /// has never committed anything (or does not track a global sequence).
    fn committed_sequence(&self) -> SequenceNumber {
        0
    }

    /// Per-shard statistics, in shard order. Empty for unsharded stores;
    /// a sharded store returns one [`StoreStats`] per shard so surfaces can
    /// render a per-shard breakdown next to the aggregate [`KvStore::stats`].
    fn shard_stats(&self) -> Vec<StoreStats> {
        Vec::new()
    }

    /// A handle for the always-present default family.
    fn default_cf(&self) -> ColumnFamilyHandle {
        self.cf(DEFAULT_CF_NAME).expect("default family exists")
    }

    /// The existing family `name`, creating it if absent.
    fn cf_or_create(&self, name: &str) -> Result<ColumnFamilyHandle> {
        match self.cf(name) {
            Some(handle) => Ok(handle),
            None => self.create_cf(name),
        }
    }

    /// Stores `key -> value` in the family behind `cf`.
    fn put_cf(&self, cf: &ColumnFamilyHandle, key: &[u8], value: &[u8]) -> Result<()> {
        cf.put(key, value)
    }

    /// Reads `key` from the family behind `cf`.
    fn get_cf(&self, cf: &ColumnFamilyHandle, key: &[u8]) -> Result<Option<Vec<u8>>> {
        cf.get(key)
    }

    /// Deletes `key` from the family behind `cf`.
    fn delete_cf(&self, cf: &ColumnFamilyHandle, key: &[u8]) -> Result<()> {
        cf.delete(key)
    }

    /// A streaming cursor over the family behind `cf`.
    fn iter_cf(&self, cf: &ColumnFamilyHandle, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        cf.iter(opts)
    }

    /// Range query over the family behind `cf` (empty `end` = unbounded
    /// within the family).
    fn scan_cf(
        &self,
        cf: &ColumnFamilyHandle,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        cf.scan(start, end, limit)
    }
}

// ---------------------------------------------------------------------------
// Prefix emulation for engines without native column families.
// ---------------------------------------------------------------------------

/// The key prefix of family `cf` in a [`PrefixDb`].
fn cf_prefix(cf: CfId) -> Vec<u8> {
    format!("@{cf}/").into_bytes()
}

/// The smallest key strictly greater than every key with `prefix`.
fn prefix_successor(prefix: &[u8]) -> Vec<u8> {
    let mut end = prefix.to_vec();
    let last = end.last_mut().expect("prefix is never empty");
    // The prefix ends in '/', so the increment never overflows.
    *last += 1;
    end
}

/// A user-key cursor restricted to one key prefix, with the prefix stripped
/// from surfaced keys. Drives the per-family cursors of [`PrefixDb`].
pub struct PrefixIterator {
    inner: Box<dyn DbIterator>,
    prefix: Vec<u8>,
}

impl PrefixIterator {
    /// Restricts `inner` (a user-key cursor) to keys starting with `prefix`.
    pub fn new(inner: Box<dyn DbIterator>, prefix: Vec<u8>) -> PrefixIterator {
        PrefixIterator { inner, prefix }
    }
}

impl DbIterator for PrefixIterator {
    fn valid(&self) -> bool {
        self.inner.valid() && self.inner.key().starts_with(&self.prefix)
    }

    fn seek_to_first(&mut self) {
        self.inner.seek(&self.prefix);
    }

    fn seek_to_last(&mut self) {
        // Position just past the prefix range, then step back into it.
        self.inner.seek(&prefix_successor(&self.prefix));
        if self.inner.valid() {
            self.inner.prev();
        } else {
            self.inner.seek_to_last();
        }
    }

    fn seek(&mut self, target: &[u8]) {
        let mut full = self.prefix.clone();
        full.extend_from_slice(target);
        self.inner.seek(&full);
    }

    fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        self.inner.next();
    }

    fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid iterator");
        self.inner.prev();
    }

    fn key(&self) -> &[u8] {
        assert!(self.valid(), "key() on invalid iterator");
        &self.inner.key()[self.prefix.len()..]
    }

    fn value(&self) -> &[u8] {
        assert!(self.valid(), "value() on invalid iterator");
        self.inner.value()
    }

    fn status(&self) -> Result<()> {
        self.inner.status()
    }
}

struct PrefixRegistry {
    /// Live families by name.
    by_name: BTreeMap<String, CfId>,
    /// Live family names by id.
    by_id: BTreeMap<CfId, String>,
    next_id: CfId,
}

/// The shared core of a [`PrefixDb`]; handles hold it as their `CfOps`.
struct PrefixCore {
    inner: Arc<dyn KvStore>,
    registry: Mutex<PrefixRegistry>,
}

impl PrefixCore {
    fn prefixed(&self, cf: CfId, key: &[u8]) -> Vec<u8> {
        let mut out = cf_prefix(cf);
        out.extend_from_slice(key);
        out
    }
}

impl PrefixCore {
    /// Rejects operations addressed at a family the registry no longer
    /// lists, matching the native engines' dropped-handle semantics.
    fn check_live(&self, cf: CfId) -> Result<()> {
        if self.registry.lock().by_id.contains_key(&cf) {
            Ok(())
        } else {
            Err(Error::invalid_argument(format!(
                "column family {cf} does not exist (dropped?)"
            )))
        }
    }
}

impl CfOps for PrefixCore {
    fn cf_put_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_live(cf)?;
        self.inner.put_opts(opts, &self.prefixed(cf, key), value)
    }

    fn cf_get_opts(&self, cf: CfId, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.check_live(cf)?;
        self.inner.get_opts(opts, &self.prefixed(cf, key))
    }

    fn cf_delete_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.check_live(cf)?;
        self.inner.delete_opts(opts, &self.prefixed(cf, key))
    }

    fn cf_write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        // Lower the per-record family ids into key prefixes; atomicity
        // across families is inherited from the inner store's plain batch.
        let mut lowered = WriteBatch::new();
        for record in batch.iter() {
            let record = record?;
            self.check_live(record.cf)?;
            let key = self.prefixed(record.cf, record.key);
            match record.value_type {
                ValueType::Value => lowered.put(&key, record.value),
                ValueType::Deletion => lowered.delete(&key),
                ValueType::ValuePointer => {
                    return Err(Error::invalid_argument(
                        "value-pointer records are engine-internal",
                    ))
                }
            }
        }
        self.inner.write_opts(opts, lowered)
    }

    fn cf_iter(&self, cf: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.check_live(cf)?;
        Ok(Box::new(PrefixIterator::new(
            self.inner.iter(opts)?,
            cf_prefix(cf),
        )))
    }

    fn cf_snapshot(&self) -> Snapshot {
        self.inner.snapshot()
    }

    fn cf_flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn cf_kv_stats(&self, _cf: CfId) -> StoreStats {
        // The emulation cannot attribute files to one namespace; report the
        // store-wide figures.
        let mut stats = self.inner.stats();
        stats.num_column_families = self.registry.lock().by_id.len() as u64;
        stats
    }

    fn cf_live_file_sizes(&self, _cf: CfId) -> Vec<u64> {
        self.inner.live_file_sizes()
    }

    fn cf_engine_name(&self) -> String {
        self.inner.engine_name()
    }
}

/// Column families emulated by key prefixing over any plain [`KvStore`].
///
/// Every family's keys live in the inner store under an `@<id>/` prefix —
/// the exact scheme the application layers used to hand-roll per app. The
/// emulation is API-complete (cursors stay inside their family, mixed
/// batches are atomic, snapshots are shared) but per-family file statistics
/// are store-wide, and the family *registry* is in-memory: a reopened store
/// must re-create its families (their data is still there, because ids are
/// allocated deterministically in creation order).
///
/// Engines with native families ([`Db`] implemented on the store itself)
/// should be preferred; this adapter exists so the B+Tree engine and test
/// doubles can serve the same multi-namespace workloads.
pub struct PrefixDb {
    core: Arc<PrefixCore>,
}

impl PrefixDb {
    /// Wraps `inner`, exposing a [`Db`] over it.
    pub fn new(inner: Arc<dyn KvStore>) -> PrefixDb {
        let mut by_name = BTreeMap::new();
        let mut by_id = BTreeMap::new();
        by_name.insert(DEFAULT_CF_NAME.to_string(), 0);
        by_id.insert(0, DEFAULT_CF_NAME.to_string());
        PrefixDb {
            core: Arc::new(PrefixCore {
                inner,
                registry: Mutex::new(PrefixRegistry {
                    by_name,
                    by_id,
                    next_id: 1,
                }),
            }),
        }
    }

    fn handle(&self, id: CfId, name: &str) -> ColumnFamilyHandle {
        ColumnFamilyHandle::new(Arc::clone(&self.core) as Arc<dyn CfOps>, id, name)
    }
}

impl KvStore for PrefixDb {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.core.cf_put_opts(0, opts, key, value)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.cf_get_opts(0, opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.core.cf_delete_opts(0, opts, key)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.core.cf_write_opts(opts, batch)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.core.cf_iter(0, opts)
    }

    fn snapshot(&self) -> Snapshot {
        self.core.cf_snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.core.cf_flush()
    }

    fn stats(&self) -> StoreStats {
        self.core.cf_kv_stats(0)
    }

    fn engine_name(&self) -> String {
        self.core.cf_engine_name()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.core.cf_live_file_sizes(0)
    }
}

impl Db for PrefixDb {
    fn create_cf(&self, name: &str) -> Result<ColumnFamilyHandle> {
        if name.is_empty() || name.contains('/') {
            return Err(Error::invalid_argument(format!(
                "invalid column family name {name:?}"
            )));
        }
        let id = {
            let mut registry = self.core.registry.lock();
            if registry.by_name.contains_key(name) {
                return Err(Error::invalid_argument(format!(
                    "column family {name:?} already exists"
                )));
            }
            let id = registry.next_id;
            registry.next_id += 1;
            registry.by_name.insert(name.to_string(), id);
            registry.by_id.insert(id, name.to_string());
            id
        };
        Ok(self.handle(id, name))
    }

    fn drop_cf(&self, name: &str) -> Result<()> {
        let id = {
            let mut registry = self.core.registry.lock();
            if name == DEFAULT_CF_NAME {
                return Err(Error::invalid_argument(
                    "the default column family cannot be dropped",
                ));
            }
            let id = registry
                .by_name
                .remove(name)
                .ok_or_else(|| Error::invalid_argument(format!("no column family {name:?}")))?;
            registry.by_id.remove(&id);
            id
        };
        // Delete the family's key range in bounded chunks.
        let prefix = cf_prefix(id);
        let end = prefix_successor(&prefix);
        loop {
            let chunk = self.core.inner.scan(&prefix, &end, 1024)?;
            if chunk.is_empty() {
                return Ok(());
            }
            let mut batch = WriteBatch::new();
            for (key, _) in &chunk {
                batch.delete(key);
            }
            self.core.inner.write(batch)?;
        }
    }

    fn list_cfs(&self) -> Vec<String> {
        self.core.registry.lock().by_id.values().cloned().collect()
    }

    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle> {
        let id = *self.core.registry.lock().by_name.get(name)?;
        Some(self.handle(id, name))
    }

    fn cf_stats(&self) -> Vec<CfStats> {
        let registry = self.core.registry.lock();
        registry
            .by_id
            .iter()
            .map(|(id, name)| CfStats {
                id: *id,
                name: name.clone(),
                ..CfStats::default()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotList;
    use crate::user_iter::UserEntriesIterator;

    /// A sorted in-memory store with enough behaviour for the emulation.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        writes: std::sync::atomic::AtomicU64,
        snapshots: Arc<SnapshotList>,
    }

    impl KvStore for MapStore {
        fn put_opts(&self, _opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
            self.writes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get_opts(&self, _opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete_opts(&self, _opts: &WriteOptions, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
            for record in batch.iter() {
                let record = record?;
                match record.value_type {
                    ValueType::Value => self.put_opts(opts, record.key, record.value)?,
                    ValueType::Deletion => self.delete_opts(opts, record.key)?,
                    ValueType::ValuePointer => unreachable!("tests never build pointer records"),
                }
            }
            Ok(())
        }
        fn iter(&self, _opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
            let entries: Vec<_> = self
                .map
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            Ok(Box::new(UserEntriesIterator::new(entries)))
        }
        fn snapshot(&self) -> Snapshot {
            self.snapshots.acquire(0)
        }
        fn flush(&self) -> Result<()> {
            Ok(())
        }
        fn stats(&self) -> StoreStats {
            StoreStats::default()
        }
        fn engine_name(&self) -> String {
            "MapStore".to_string()
        }
    }

    fn prefix_db() -> PrefixDb {
        PrefixDb::new(Arc::new(MapStore::default()))
    }

    #[test]
    fn families_are_isolated_namespaces() {
        let db = prefix_db();
        let users = db.create_cf("users").unwrap();
        let posts = db.create_cf("posts").unwrap();
        db.put(b"k", b"default").unwrap();
        users.put(b"k", b"user").unwrap();
        posts.put(b"k", b"post").unwrap();

        assert_eq!(db.get(b"k").unwrap(), Some(b"default".to_vec()));
        assert_eq!(users.get(b"k").unwrap(), Some(b"user".to_vec()));
        assert_eq!(posts.get(b"k").unwrap(), Some(b"post".to_vec()));

        users.delete(b"k").unwrap();
        assert_eq!(users.get(b"k").unwrap(), None);
        assert_eq!(posts.get(b"k").unwrap(), Some(b"post".to_vec()));
        assert_eq!(db.get(b"k").unwrap(), Some(b"default".to_vec()));
    }

    #[test]
    fn handle_cursors_stay_inside_their_family() {
        let db = prefix_db();
        let users = db.create_cf("users").unwrap();
        for i in 0..10u8 {
            users.put(&[b'u', b'0' + i], &[i]).unwrap();
            db.put(&[b'd', b'0' + i], &[i]).unwrap();
        }
        // Unbounded scan stays inside the family and strips the prefix.
        let got = users.scan(b"", &[], 100).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"u0".to_vec());
        // Bounded scan and limit behave like any KvStore.
        assert_eq!(users.scan(b"u3", b"u6", 100).unwrap().len(), 3);
        assert_eq!(users.scan(b"", &[], 4).unwrap().len(), 4);
        // Reverse traversal lands on the family's last key.
        let mut iter = users.iter(&ReadOptions::default()).unwrap();
        iter.seek_to_last();
        assert!(iter.valid());
        assert_eq!(iter.key(), b"u9");
        iter.prev();
        assert_eq!(iter.key(), b"u8");
        // The default family does not see user keys.
        assert_eq!(db.scan(b"", &[], 100).unwrap().len(), 10);
        assert!(db.scan(b"", &[], 100).unwrap()[0].0.starts_with(b"d"));
    }

    #[test]
    fn mixed_batches_land_in_their_families() {
        let db = prefix_db();
        let index = db.create_cf("index").unwrap();
        let mut batch = WriteBatch::new();
        batch.put(b"row", b"payload");
        batch.put_cf(index.id(), b"idx", b"row");
        db.write(batch).unwrap();
        assert_eq!(db.get(b"row").unwrap(), Some(b"payload".to_vec()));
        assert_eq!(index.get(b"idx").unwrap(), Some(b"row".to_vec()));
        assert_eq!(db.get(b"idx").unwrap(), None);

        // A plain batch written through a handle targets that family.
        let mut plain = WriteBatch::new();
        plain.put(b"only-index", b"1");
        index.write(plain).unwrap();
        assert_eq!(index.get(b"only-index").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"only-index").unwrap(), None);
    }

    #[test]
    fn create_list_drop_lifecycle() {
        let db = prefix_db();
        assert_eq!(db.list_cfs(), vec![DEFAULT_CF_NAME.to_string()]);
        let cf = db.create_cf("temp").unwrap();
        assert!(db.create_cf("temp").is_err(), "duplicate create must fail");
        assert_eq!(db.list_cfs().len(), 2);
        assert_eq!(db.cf("temp").unwrap().id(), cf.id());
        assert!(db.cf("missing").is_none());

        for i in 0..50u8 {
            cf.put(&[i], b"x").unwrap();
        }
        db.drop_cf("temp").unwrap();
        assert!(db.cf("temp").is_none());
        assert!(db.drop_cf(DEFAULT_CF_NAME).is_err());
        // The dropped family's keys are gone from the inner store.
        let recreated = db.cf_or_create("temp").unwrap();
        assert_ne!(recreated.id(), cf.id(), "dropped ids are not reused");
        assert_eq!(recreated.scan(b"", &[], 100).unwrap().len(), 0);
    }
}
