//! Error and result types shared by every crate in the workspace.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by every fallible storage operation.
///
/// The variants mirror the status codes of LevelDB-family stores: IO errors
/// bubble up from the [`Env`](https://docs.rs/pebblesdb-env) layer,
/// `Corruption` indicates on-disk data failed a checksum or format check, and
/// `InvalidArgument` flags caller mistakes (for example opening a database
/// directory that does not exist with `create_if_missing = false`).
#[derive(Debug, Clone)]
pub enum Error {
    /// The requested key was not found.
    NotFound,
    /// On-disk data is malformed or failed a checksum.
    Corruption(String),
    /// The caller passed an argument the store cannot honour.
    InvalidArgument(String),
    /// An operation was attempted on a database that is shutting down.
    ShuttingDown,
    /// The underlying environment reported an IO error.
    Io(Arc<io::Error>),
    /// Any other internal error.
    Internal(String),
}

impl Error {
    /// Creates a corruption error with the given message.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Creates an invalid-argument error with the given message.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Creates an internal error with the given message.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Returns `true` if this error is [`Error::NotFound`].
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound)
    }

    /// Returns `true` if this error indicates corruption.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "not found"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::ShuttingDown => write!(f, "shutting down"),
            Error::Io(err) => write!(f, "io error: {err}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(err) => Some(err.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(err: io::Error) -> Self {
        Error::Io(Arc::new(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(Error::NotFound.to_string(), "not found");
        assert_eq!(
            Error::corruption("bad block").to_string(),
            "corruption: bad block"
        );
        assert_eq!(
            Error::invalid_argument("no such db").to_string(),
            "invalid argument: no such db"
        );
        assert_eq!(Error::internal("oops").to_string(), "internal error: oops");
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let err: Error = io::Error::other("boom").into();
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn predicates_match_variants() {
        assert!(Error::NotFound.is_not_found());
        assert!(!Error::NotFound.is_corruption());
        assert!(Error::corruption("x").is_corruption());
        assert!(!Error::corruption("x").is_not_found());
    }
}
