//! Error and result types shared by every crate in the workspace.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type returned by every fallible storage operation.
///
/// The variants mirror the status codes of LevelDB-family stores: IO errors
/// bubble up from the [`Env`](https://docs.rs/pebblesdb-env) layer,
/// `Corruption` indicates on-disk data failed a checksum or format check, and
/// `InvalidArgument` flags caller mistakes (for example opening a database
/// directory that does not exist with `create_if_missing = false`).
#[derive(Debug, Clone)]
pub enum Error {
    /// The requested key was not found.
    NotFound,
    /// On-disk data is malformed or failed a checksum.
    Corruption(String),
    /// The caller passed an argument the store cannot honour.
    InvalidArgument(String),
    /// An operation was attempted on a database that is shutting down.
    ShuttingDown,
    /// The underlying environment reported an IO error.
    Io(Arc<io::Error>),
    /// A change stream asked for history the store has already reclaimed.
    ///
    /// `requested` is the sequence the cursor wanted; every sequence at or
    /// below `floor` is gone (its WAL segments or value-log files were
    /// garbage-collected). The only recovery is to re-seed the consumer from
    /// a full copy of the store and stream from `floor + 1`.
    SequenceTruncated {
        /// The sequence number the stream tried to read from.
        requested: u64,
        /// The highest reclaimed sequence; `floor + 1` is still streamable.
        floor: u64,
    },
    /// Any other internal error.
    Internal(String),
}

impl Error {
    /// Creates a corruption error with the given message.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Creates an invalid-argument error with the given message.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Creates an internal error with the given message.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Returns `true` if this error is [`Error::NotFound`].
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound)
    }

    /// Returns `true` if this error indicates corruption.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// Creates a sequence-truncated error.
    pub fn sequence_truncated(requested: u64, floor: u64) -> Self {
        Error::SequenceTruncated { requested, floor }
    }

    /// Returns `true` if this error is [`Error::SequenceTruncated`].
    pub fn is_sequence_truncated(&self) -> bool {
        matches!(self, Error::SequenceTruncated { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound => write!(f, "not found"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::ShuttingDown => write!(f, "shutting down"),
            Error::Io(err) => write!(f, "io error: {err}"),
            Error::SequenceTruncated { requested, floor } => write!(
                f,
                "sequence truncated: requested {requested}, history reclaimed through {floor}"
            ),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(err) => Some(err.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(err: io::Error) -> Self {
        Error::Io(Arc::new(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(Error::NotFound.to_string(), "not found");
        assert_eq!(
            Error::corruption("bad block").to_string(),
            "corruption: bad block"
        );
        assert_eq!(
            Error::invalid_argument("no such db").to_string(),
            "invalid argument: no such db"
        );
        assert_eq!(Error::internal("oops").to_string(), "internal error: oops");
        assert_eq!(
            Error::sequence_truncated(7, 41).to_string(),
            "sequence truncated: requested 7, history reclaimed through 41"
        );
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let err: Error = io::Error::other("boom").into();
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn predicates_match_variants() {
        assert!(Error::NotFound.is_not_found());
        assert!(!Error::NotFound.is_corruption());
        assert!(Error::corruption("x").is_corruption());
        assert!(!Error::corruption("x").is_not_found());
        assert!(Error::sequence_truncated(1, 2).is_sequence_truncated());
        assert!(!Error::NotFound.is_sequence_truncated());
    }
}
