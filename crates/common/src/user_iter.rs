//! User-level cursors over internal-key iterators.
//!
//! Engine internals iterate over *internal* keys: every version of every
//! user key, tombstones included, ordered by (user key asc, sequence desc).
//! The public [`KvStore::iter`](crate::KvStore::iter) contract is a cursor
//! over *user* keys: one live value per key, as of a snapshot sequence.
//! [`UserIterator`] bridges the two, following the LevelDB `DBIter` design:
//! entries newer than the snapshot are skipped, tombstones hide older
//! versions, and only the newest visible version of each key is surfaced —
//! in both directions.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::iterator::DbIterator;
use crate::key::{
    encode_internal_key, parse_internal_key, SequenceNumber, ValueType, VALUE_TYPE_FOR_SEEK,
};
use crate::vlog::{ValuePointer, ValueResolver};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// `inner` is positioned at the entry that defines `key()`.
    Forward,
    /// `inner` is positioned before the entries of `key()`; the current
    /// entry is cached in `saved_key` / `saved_value`.
    Reverse,
}

/// Adapts an internal-key [`DbIterator`] into a user-key cursor bounded by a
/// snapshot sequence number.
///
/// `seek` targets are plain user keys. `key()` returns the user key and
/// `value()` the newest value visible at the snapshot; deleted and
/// superseded versions are never surfaced.
pub struct UserIterator {
    inner: Box<dyn DbIterator>,
    sequence: SequenceNumber,
    direction: Direction,
    valid: bool,
    saved_key: Vec<u8>,
    saved_value: Vec<u8>,
    /// Resolves value-pointer entries into their vlog bytes. Entries tagged
    /// [`ValueType::ValuePointer`] are resolved *eagerly* when the cursor
    /// lands on them (the `value()` contract returns a borrow, so resolution
    /// cannot be deferred to the accessor).
    resolver: Option<Arc<dyn ValueResolver>>,
    /// Holds the resolved bytes when the current Forward entry is a pointer.
    resolved_value: Vec<u8>,
    /// Whether `value()` must read `resolved_value` in Forward direction.
    forward_resolved: bool,
    /// First malformed internal key or failed pointer resolution seen; the
    /// cursor stops rather than silently skipping data.
    corruption: Option<Error>,
}

impl UserIterator {
    /// Wraps `inner`, exposing the view as of `sequence`.
    pub fn new(inner: Box<dyn DbIterator>, sequence: SequenceNumber) -> Self {
        UserIterator {
            inner,
            sequence,
            direction: Direction::Forward,
            valid: false,
            saved_key: Vec::new(),
            saved_value: Vec::new(),
            resolver: None,
            resolved_value: Vec::new(),
            forward_resolved: false,
            corruption: None,
        }
    }

    /// Attaches a resolver for value-pointer entries. Without one, landing
    /// on a pointer entry is reported as corruption (pointers in the tree
    /// are unreadable without their value log).
    pub fn with_resolver(mut self, resolver: Arc<dyn ValueResolver>) -> Self {
        self.resolver = Some(resolver);
        self
    }

    fn record_corruption(&mut self) {
        self.record_error(Error::corruption("malformed internal key during iteration"));
    }

    fn record_error(&mut self, err: Error) {
        if self.corruption.is_none() {
            self.corruption = Some(err);
        }
        self.valid = false;
        self.saved_key.clear();
        self.saved_value.clear();
    }

    /// Resolves an encoded pointer through the attached resolver.
    fn resolve(&self, encoded_pointer: &[u8]) -> Result<Vec<u8>> {
        let pointer = ValuePointer::decode(encoded_pointer)?;
        match &self.resolver {
            Some(resolver) => resolver.resolve(&pointer),
            None => Err(Error::corruption(
                "value-pointer entry but no value-log resolver attached",
            )),
        }
    }

    /// Scans forward to the newest visible, live entry of the next user key.
    ///
    /// When `skipping` is true, entries for user keys `<= saved_key` are
    /// treated as already consumed (or deleted) and passed over.
    fn find_next_user_entry(&mut self, mut skipping: bool) {
        while self.inner.valid() {
            let Some(parsed) = parse_internal_key(self.inner.key()) else {
                self.record_corruption();
                return;
            };
            if parsed.sequence <= self.sequence {
                match parsed.value_type {
                    ValueType::Deletion => {
                        // Every older version of this key is shadowed.
                        self.saved_key.clear();
                        self.saved_key.extend_from_slice(parsed.user_key);
                        skipping = true;
                    }
                    ValueType::Value | ValueType::ValuePointer => {
                        if !(skipping && parsed.user_key <= self.saved_key.as_slice()) {
                            let is_pointer = parsed.value_type == ValueType::ValuePointer;
                            if is_pointer {
                                let encoded = self.inner.value().to_vec();
                                match self.resolve(&encoded) {
                                    Ok(value) => {
                                        self.resolved_value = value;
                                        self.forward_resolved = true;
                                    }
                                    Err(err) => {
                                        self.record_error(err);
                                        return;
                                    }
                                }
                            } else {
                                self.forward_resolved = false;
                            }
                            self.valid = true;
                            self.direction = Direction::Forward;
                            self.saved_key.clear();
                            return;
                        }
                    }
                }
            }
            self.inner.next();
        }
        self.valid = false;
        self.saved_key.clear();
    }

    /// Scans backward to the newest visible entry of the previous user key,
    /// caching it in `saved_key` / `saved_value`.
    fn find_prev_user_entry(&mut self) {
        let mut value_type = ValueType::Deletion;
        if self.inner.valid() {
            loop {
                let Some(parsed) = parse_internal_key(self.inner.key()) else {
                    self.record_corruption();
                    return;
                };
                if parsed.sequence <= self.sequence {
                    if value_type != ValueType::Deletion
                        && parsed.user_key < self.saved_key.as_slice()
                    {
                        // We stepped onto an earlier user key while
                        // holding a live entry: the saved entry wins.
                        break;
                    }
                    value_type = parsed.value_type;
                    if value_type == ValueType::Deletion {
                        self.saved_key.clear();
                        self.saved_value.clear();
                    } else {
                        self.saved_key.clear();
                        self.saved_key.extend_from_slice(parsed.user_key);
                        self.saved_value.clear();
                        self.saved_value.extend_from_slice(self.inner.value());
                    }
                    if value_type == ValueType::ValuePointer {
                        let encoded = std::mem::take(&mut self.saved_value);
                        match self.resolve(&encoded) {
                            Ok(value) => self.saved_value = value,
                            Err(err) => {
                                self.record_error(err);
                                return;
                            }
                        }
                    }
                }
                self.inner.prev();
                if !self.inner.valid() {
                    break;
                }
            }
        }
        if value_type == ValueType::Deletion {
            self.valid = false;
            self.saved_key.clear();
            self.saved_value.clear();
            self.direction = Direction::Forward;
        } else {
            self.valid = true;
            self.direction = Direction::Reverse;
        }
    }
}

impl DbIterator for UserIterator {
    fn valid(&self) -> bool {
        self.valid
    }

    fn seek_to_first(&mut self) {
        self.direction = Direction::Forward;
        self.saved_value.clear();
        self.inner.seek_to_first();
        if self.inner.valid() {
            self.find_next_user_entry(false);
        } else {
            self.valid = false;
        }
    }

    fn seek_to_last(&mut self) {
        self.direction = Direction::Reverse;
        self.saved_value.clear();
        self.inner.seek_to_last();
        self.find_prev_user_entry();
    }

    fn seek(&mut self, target: &[u8]) {
        self.direction = Direction::Forward;
        self.saved_key.clear();
        self.saved_value.clear();
        self.inner.seek(&encode_internal_key(
            target,
            self.sequence,
            VALUE_TYPE_FOR_SEEK,
        ));
        if self.inner.valid() {
            self.find_next_user_entry(false);
        } else {
            self.valid = false;
        }
    }

    fn next(&mut self) {
        assert!(self.valid, "next() on invalid iterator");
        if self.direction == Direction::Reverse {
            self.direction = Direction::Forward;
            // `inner` sits before the entries of `saved_key`; step onto the
            // first of them (or the very first entry).
            if self.inner.valid() {
                self.inner.next();
            } else {
                self.inner.seek_to_first();
            }
            if !self.inner.valid() {
                self.valid = false;
                self.saved_key.clear();
                return;
            }
            // `saved_key` still names the current key; skip its versions.
        } else {
            self.saved_key.clear();
            self.saved_key
                .extend_from_slice(extract_user_key_checked(self.inner.key()));
            self.inner.next();
            if !self.inner.valid() {
                self.valid = false;
                self.saved_key.clear();
                return;
            }
        }
        self.find_next_user_entry(true);
    }

    fn prev(&mut self) {
        assert!(self.valid, "prev() on invalid iterator");
        if self.direction == Direction::Forward {
            // `inner` is at the entry defining `key()`; walk back past every
            // entry of that user key.
            debug_assert!(self.inner.valid());
            self.saved_key.clear();
            self.saved_key
                .extend_from_slice(extract_user_key_checked(self.inner.key()));
            loop {
                self.inner.prev();
                if !self.inner.valid() {
                    self.valid = false;
                    self.saved_key.clear();
                    self.saved_value.clear();
                    return;
                }
                if extract_user_key_checked(self.inner.key()) < self.saved_key.as_slice() {
                    break;
                }
            }
            self.direction = Direction::Reverse;
        }
        self.find_prev_user_entry();
    }

    fn key(&self) -> &[u8] {
        assert!(self.valid, "key() on invalid iterator");
        match self.direction {
            Direction::Forward => extract_user_key_checked(self.inner.key()),
            Direction::Reverse => &self.saved_key,
        }
    }

    fn value(&self) -> &[u8] {
        assert!(self.valid, "value() on invalid iterator");
        match self.direction {
            Direction::Forward if self.forward_resolved => &self.resolved_value,
            Direction::Forward => self.inner.value(),
            Direction::Reverse => &self.saved_value,
        }
    }

    fn status(&self) -> Result<()> {
        if let Some(err) = &self.corruption {
            return Err(err.clone());
        }
        self.inner.status()
    }
}

fn extract_user_key_checked(internal_key: &[u8]) -> &[u8] {
    crate::key::extract_user_key(internal_key)
}

/// A user-level cursor over an already-resolved, sorted entry list.
///
/// Unlike [`VecIterator`](crate::iterator::VecIterator) the keys here are
/// plain user keys compared bytewise. Useful for simple stores and tests
/// that materialise their view up front but still speak the cursor API.
#[derive(Debug, Clone, Default)]
pub struct UserEntriesIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// `entries.len()` means "not positioned / exhausted".
    index: usize,
}

impl UserEntriesIterator {
    /// Creates a cursor over `entries`, which must be sorted by key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
        let index = entries.len();
        UserEntriesIterator { entries, index }
    }
}

impl DbIterator for UserEntriesIterator {
    fn valid(&self) -> bool {
        self.index < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.index = 0;
    }

    fn seek_to_last(&mut self) {
        self.index = if self.entries.is_empty() {
            0
        } else {
            self.entries.len() - 1
        };
    }

    fn seek(&mut self, target: &[u8]) {
        self.index = self.entries.partition_point(|(k, _)| k.as_slice() < target);
    }

    fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        self.index += 1;
    }

    fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid iterator");
        if self.index == 0 {
            self.index = self.entries.len();
        } else {
            self.index -= 1;
        }
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.index].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.index].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::VecIterator;
    use crate::key::MAX_SEQUENCE_NUMBER;

    fn entry(key: &str, seq: u64, ty: ValueType, value: &str) -> (Vec<u8>, Vec<u8>) {
        (
            encode_internal_key(key.as_bytes(), seq, ty),
            value.as_bytes().to_vec(),
        )
    }

    fn sorted(mut entries: Vec<(Vec<u8>, Vec<u8>)>) -> Vec<(Vec<u8>, Vec<u8>)> {
        entries.sort_by(|a, b| crate::key::compare_internal_keys(&a.0, &b.0));
        entries
    }

    fn user_iter(entries: Vec<(Vec<u8>, Vec<u8>)>, sequence: u64) -> UserIterator {
        UserIterator::new(Box::new(VecIterator::new(sorted(entries))), sequence)
    }

    fn collect_forward(iter: &mut UserIterator) -> Vec<(String, String)> {
        let mut out = Vec::new();
        iter.seek_to_first();
        while iter.valid() {
            out.push((
                String::from_utf8_lossy(iter.key()).into_owned(),
                String::from_utf8_lossy(iter.value()).into_owned(),
            ));
            iter.next();
        }
        out
    }

    #[test]
    fn surfaces_only_newest_visible_version() {
        let mut iter = user_iter(
            vec![
                entry("a", 1, ValueType::Value, "a1"),
                entry("a", 5, ValueType::Value, "a5"),
                entry("b", 2, ValueType::Value, "b2"),
            ],
            MAX_SEQUENCE_NUMBER,
        );
        assert_eq!(
            collect_forward(&mut iter),
            vec![
                ("a".to_string(), "a5".to_string()),
                ("b".to_string(), "b2".to_string())
            ]
        );
    }

    #[test]
    fn snapshot_sequence_hides_newer_writes() {
        let entries = vec![
            entry("a", 1, ValueType::Value, "old"),
            entry("a", 9, ValueType::Value, "new"),
            entry("b", 8, ValueType::Value, "late"),
        ];
        let mut iter = user_iter(entries.clone(), 5);
        assert_eq!(
            collect_forward(&mut iter),
            vec![("a".to_string(), "old".to_string())]
        );
        let mut iter = user_iter(entries, 9);
        assert_eq!(
            collect_forward(&mut iter),
            vec![
                ("a".to_string(), "new".to_string()),
                ("b".to_string(), "late".to_string())
            ]
        );
    }

    #[test]
    fn tombstones_hide_older_versions() {
        let mut iter = user_iter(
            vec![
                entry("a", 1, ValueType::Value, "a1"),
                entry("a", 4, ValueType::Deletion, ""),
                entry("b", 2, ValueType::Value, "b2"),
            ],
            MAX_SEQUENCE_NUMBER,
        );
        assert_eq!(
            collect_forward(&mut iter),
            vec![("b".to_string(), "b2".to_string())]
        );
        // ...but a snapshot from before the delete still sees the value.
        let mut iter = user_iter(
            vec![
                entry("a", 1, ValueType::Value, "a1"),
                entry("a", 4, ValueType::Deletion, ""),
            ],
            3,
        );
        assert_eq!(
            collect_forward(&mut iter),
            vec![("a".to_string(), "a1".to_string())]
        );
    }

    #[test]
    fn seek_lands_on_user_keys() {
        let mut iter = user_iter(
            vec![
                entry("apple", 1, ValueType::Value, "1"),
                entry("cherry", 2, ValueType::Value, "2"),
                entry("plum", 3, ValueType::Value, "3"),
            ],
            MAX_SEQUENCE_NUMBER,
        );
        iter.seek(b"banana");
        assert!(iter.valid());
        assert_eq!(iter.key(), b"cherry");
        iter.seek(b"zzz");
        assert!(!iter.valid());
        iter.seek(b"");
        assert_eq!(iter.key(), b"apple");
    }

    #[test]
    fn reverse_traversal_matches_forward() {
        let entries = vec![
            entry("a", 1, ValueType::Value, "1"),
            entry("b", 2, ValueType::Value, "2"),
            entry("b", 7, ValueType::Value, "2b"),
            entry("c", 3, ValueType::Deletion, ""),
            entry("c", 1, ValueType::Value, "dead"),
            entry("d", 4, ValueType::Value, "4"),
        ];
        let mut iter = user_iter(entries, MAX_SEQUENCE_NUMBER);
        let forward = collect_forward(&mut iter);

        let mut backward = Vec::new();
        iter.seek_to_last();
        while iter.valid() {
            backward.push((
                String::from_utf8_lossy(iter.key()).into_owned(),
                String::from_utf8_lossy(iter.value()).into_owned(),
            ));
            iter.prev();
        }
        backward.reverse();
        assert_eq!(forward, backward);
        assert_eq!(forward.len(), 3, "c is deleted");
    }

    #[test]
    fn direction_switches_mid_stream() {
        let mut iter = user_iter(
            vec![
                entry("a", 1, ValueType::Value, "1"),
                entry("b", 2, ValueType::Value, "2"),
                entry("c", 3, ValueType::Value, "3"),
            ],
            MAX_SEQUENCE_NUMBER,
        );
        iter.seek_to_first();
        iter.next(); // at b
        assert_eq!(iter.key(), b"b");
        iter.prev(); // back to a
        assert!(iter.valid());
        assert_eq!(iter.key(), b"a");
        assert_eq!(iter.value(), b"1");
        iter.next(); // forward again to b
        assert_eq!(iter.key(), b"b");
        assert_eq!(iter.value(), b"2");
        iter.next();
        assert_eq!(iter.key(), b"c");
        iter.next();
        assert!(!iter.valid());
    }

    #[test]
    fn corruption_stops_the_cursor_and_surfaces_in_status() {
        // A malformed internal key: long enough to slice, but carrying an
        // invalid value-type tag in its trailer.
        let mut entries = vec![entry("a", 1, ValueType::Value, "ok")];
        let mut bad = b"zzz".to_vec();
        bad.extend_from_slice(&0x7fu64.to_le_bytes());
        entries.push((bad, b"x".to_vec()));
        let mut iter = UserIterator::new(Box::new(VecIterator::new(entries)), MAX_SEQUENCE_NUMBER);
        iter.seek_to_first();
        assert!(iter.valid());
        assert_eq!(iter.key(), b"a");
        assert!(iter.status().is_ok());
        iter.next();
        assert!(!iter.valid(), "cursor stops at the corrupt entry");
        assert!(iter.status().is_err(), "status reports the corruption");
    }

    /// A resolver backed by a map from (file, offset) to bytes.
    struct MapResolver(std::collections::HashMap<(u64, u64), Vec<u8>>);

    impl ValueResolver for MapResolver {
        fn resolve(&self, pointer: &ValuePointer) -> Result<Vec<u8>> {
            self.0
                .get(&(pointer.file_number, pointer.offset))
                .cloned()
                .ok_or_else(|| Error::corruption("dangling value pointer"))
        }
    }

    fn pointer_entry(key: &str, seq: u64, file: u64, offset: u64) -> (Vec<u8>, Vec<u8>) {
        let pointer = ValuePointer {
            file_number: file,
            offset,
            len: 64,
        };
        (
            encode_internal_key(key.as_bytes(), seq, ValueType::ValuePointer),
            pointer.encode(),
        )
    }

    #[test]
    fn pointer_entries_resolve_in_both_directions() {
        let resolver = Arc::new(MapResolver(
            [((7, 0), b"big-a".to_vec()), ((7, 100), b"big-c".to_vec())]
                .into_iter()
                .collect(),
        ));
        let entries = vec![
            pointer_entry("a", 1, 7, 0),
            entry("b", 2, ValueType::Value, "inline-b"),
            pointer_entry("c", 3, 7, 100),
        ];
        let mut iter = UserIterator::new(Box::new(VecIterator::new(sorted(entries))), 10)
            .with_resolver(resolver);
        assert_eq!(
            collect_forward(&mut iter),
            vec![
                ("a".to_string(), "big-a".to_string()),
                ("b".to_string(), "inline-b".to_string()),
                ("c".to_string(), "big-c".to_string()),
            ]
        );
        // Reverse direction resolves through saved_value.
        iter.seek_to_last();
        assert_eq!(iter.value(), b"big-c");
        iter.prev();
        assert_eq!(iter.value(), b"inline-b");
        iter.prev();
        assert_eq!(iter.value(), b"big-a");
        assert!(iter.status().is_ok());
    }

    #[test]
    fn failed_pointer_resolution_surfaces_in_status() {
        let resolver = Arc::new(MapResolver(Default::default()));
        let entries = vec![
            entry("a", 1, ValueType::Value, "fine"),
            pointer_entry("b", 2, 9, 0),
        ];
        let mut iter = UserIterator::new(Box::new(VecIterator::new(sorted(entries))), 10)
            .with_resolver(resolver);
        iter.seek_to_first();
        assert!(iter.valid());
        iter.next();
        assert!(!iter.valid(), "cursor stops at the unresolvable entry");
        assert!(iter.status().is_err());

        // Without a resolver the pointer entry itself is the error.
        let entries = vec![pointer_entry("a", 1, 9, 0)];
        let mut iter = UserIterator::new(Box::new(VecIterator::new(sorted(entries))), 10);
        iter.seek_to_first();
        assert!(!iter.valid());
        assert!(iter.status().is_err());
    }

    #[test]
    fn user_entries_iterator_is_a_plain_cursor() {
        let mut iter = UserEntriesIterator::new(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"c".to_vec(), b"3".to_vec()),
        ]);
        assert!(!iter.valid());
        iter.seek(b"b");
        assert_eq!(iter.key(), b"c");
        iter.seek_to_first();
        assert_eq!(iter.key(), b"a");
        iter.next();
        assert_eq!(iter.key(), b"c");
        iter.prev();
        assert_eq!(iter.key(), b"a");
        iter.seek_to_last();
        assert_eq!(iter.key(), b"c");
    }
}
