//! Shared plumbing for the PebblesDB workspace.
//!
//! This crate contains the pieces that every storage engine in the workspace
//! (the FLSM-based [`pebblesdb`] engine, the baseline leveled LSM engine and
//! the B+Tree engine) agrees on:
//!
//! * the internal key encoding and its ordering ([`key`]),
//! * variable-length integer and fixed-width integer coding ([`coding`]),
//! * CRC32C checksums ([`crc32c`]) and MurmurHash3 ([`hash`]),
//! * the write batch format ([`batch`]),
//! * store options and presets ([`options`]),
//! * the iterator abstraction ([`iterator`]),
//! * the [`store::KvStore`] trait that the benchmark harness and the
//!   application layers drive generically,
//! * the group-commit writer queue both LSM engines share ([`commit`]),
//! * database file naming conventions ([`filename`]),
//! * RESP2 wire framing for the network server and its clients ([`resp`]),
//! * the shared statistics field list every reporting surface renders from
//!   ([`stats_text`]), and
//! * the tiny `--flag value` parser the workspace binaries share ([`args`]).
//!
//! [`pebblesdb`]: https://www.cs.utexas.edu/~vijay/papers/sosp17-pebblesdb.pdf

pub mod args;
pub mod batch;
pub mod cf;
pub mod coding;
pub mod commit;
pub mod counters;
pub mod crc32c;
pub mod error;
pub mod filename;
pub mod hash;
pub mod iterator;
pub mod key;
pub mod options;
pub mod replication;
pub mod resp;
pub mod snapshot;
pub mod stats_text;
pub mod store;
pub mod user_iter;
pub mod vlog;

pub use args::Args;
pub use batch::{CfId, WriteBatch};
pub use cf::{CfOps, CfStats, ColumnFamilyHandle, Db, PrefixDb, DEFAULT_CF_NAME};
pub use commit::{CommitGroup, CommitQueue, Role, Ticket};
pub use counters::CompressionStats;
pub use error::{Error, Result};
pub use iterator::DbIterator;
pub use key::{InternalKey, ParsedInternalKey, SequenceNumber, ValueType, MAX_SEQUENCE_NUMBER};
pub use options::{CompressionType, ReadOptions, StoreOptions, StorePreset, WriteOptions};
pub use replication::{ChangeEvent, ChangeStream, ReplicationFrame};
pub use resp::{RespCodec, RespLimits, RespValue};
pub use snapshot::{Snapshot, SnapshotList};
pub use stats_text::{cf_stat_fields, render_info, store_stat_fields, StatField, StatUnit};
pub use store::{KvStore, StoreStats};
pub use user_iter::{UserEntriesIterator, UserIterator};
pub use vlog::{LookupValue, ValuePointer, ValueResolver};
