//! Hash functions used by bloom filters and FLSM guard selection.
//!
//! The paper's PebblesDB implementation selects guards by hashing every
//! inserted key with MurmurHash and examining trailing bits of the hash
//! (section 4.4 of the paper); the same scheme is used here.

/// MurmurHash3 x86 32-bit.
///
/// This is the algorithm the paper cites for guard selection. It is cheap,
/// well distributed and deterministic across platforms, which matters because
/// guard placement is persisted on disk.
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let chunks = data.chunks_exact(4);
    let tail = chunks.remainder();

    for chunk in chunks {
        let mut k1 = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let mut k1: u32 = 0;
    if !tail.is_empty() {
        for (i, &byte) in tail.iter().enumerate() {
            k1 |= u32::from(byte) << (8 * i);
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    h1 ^= h1 >> 16;
    h1 = h1.wrapping_mul(0x85eb_ca6b);
    h1 ^= h1 >> 13;
    h1 = h1.wrapping_mul(0xc2b2_ae35);
    h1 ^= h1 >> 16;
    h1
}

/// The LevelDB-style hash used by the bloom filter policy.
pub fn bloom_hash(data: &[u8]) -> u32 {
    hash_seeded(data, 0xbc9f_1d34)
}

/// A simple multiplicative byte hash with a caller-provided seed.
pub fn hash_seeded(data: &[u8], seed: u32) -> u32 {
    const M: u32 = 0xc6a4_a793;
    const R: u32 = 24;
    let mut h = seed ^ (data.len() as u32).wrapping_mul(M);

    let chunks = data.chunks_exact(4);
    let tail = chunks.remainder();
    for chunk in chunks {
        let w = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        h = h.wrapping_add(w);
        h = h.wrapping_mul(M);
        h ^= h >> 16;
    }
    match tail.len() {
        3 => {
            h = h.wrapping_add(u32::from(tail[2]) << 16);
            h = h.wrapping_add(u32::from(tail[1]) << 8);
            h = h.wrapping_add(u32::from(tail[0]));
            h = h.wrapping_mul(M);
            h ^= h >> R;
        }
        2 => {
            h = h.wrapping_add(u32::from(tail[1]) << 8);
            h = h.wrapping_add(u32::from(tail[0]));
            h = h.wrapping_mul(M);
            h ^= h >> R;
        }
        1 => {
            h = h.wrapping_add(u32::from(tail[0]));
            h = h.wrapping_mul(M);
            h ^= h >> R;
        }
        _ => {}
    }
    h
}

/// Counts the number of consecutive set bits starting from the least
/// significant bit of `hash`.
///
/// Guard selection asks "does this key's hash end in at least `n` set bits?";
/// exposing the trailing-ones count lets the engine derive, in one call, the
/// topmost (smallest-numbered) level at which a key becomes a guard.
pub fn trailing_ones(hash: u32) -> u32 {
    hash.trailing_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn murmur3_known_vectors() {
        // Reference vectors for MurmurHash3 x86 32-bit.
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514e_28b7);
        assert_eq!(murmur3_32(b"abc", 0), 0xb3dd_93fa);
        assert_eq!(
            murmur3_32(b"The quick brown fox jumps over the lazy dog", 0x9747b28c),
            0x2fa8_26cd
        );
    }

    #[test]
    fn murmur3_is_deterministic_and_seed_sensitive() {
        let a = murmur3_32(b"pebbles", 7);
        assert_eq!(a, murmur3_32(b"pebbles", 7));
        assert_ne!(a, murmur3_32(b"pebbles", 8));
    }

    #[test]
    fn bloom_hash_spreads_similar_keys() {
        let h1 = bloom_hash(b"key-000001");
        let h2 = bloom_hash(b"key-000002");
        assert_ne!(h1, h2);
    }

    #[test]
    fn trailing_ones_counts_lsb_runs() {
        assert_eq!(trailing_ones(0b0), 0);
        assert_eq!(trailing_ones(0b1), 1);
        assert_eq!(trailing_ones(0b0111), 3);
        assert_eq!(trailing_ones(0b1011), 2);
        assert_eq!(trailing_ones(u32::MAX), 32);
    }
}
