//! The group-commit writer queue shared by the LSM and FLSM engines.
//!
//! Concurrent writers enqueue their batches; the writer at the front of the
//! queue becomes the *leader*, merges the batches queued behind it into one
//! group, commits the group (WAL append + sync + memtable insert — performed
//! by the engine, outside its state mutex), and then completes the followers
//! so they return without ever touching the WAL themselves. This is the
//! LevelDB/HyperLevelDB write-group protocol: one `fsync` and one log append
//! amortised over every batch in the group.
//!
//! The queue deliberately knows nothing about engines. An engine calls
//! [`CommitQueue::submit`] + [`CommitQueue::wait_turn`]; when it is handed a
//! [`Role::Leader`] it performs the durable work and calls
//! [`CommitQueue::complete`], which reports the shared result to every
//! follower in the group and wakes the next leader.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::batch::WriteBatch;
use crate::error::Result;

/// Stop growing a group past this many bytes of batch payload.
const MAX_GROUP_BYTES: usize = 1 << 20;
/// When the leader's own batch is small, cap the group lower so small writes
/// keep low latency (LevelDB's heuristic).
const SMALL_BATCH_BYTES: usize = 128 << 10;

/// One queued write: the batch, its durability requirement, and the slot the
/// leader deposits the group's result into.
struct Waiter {
    /// `None` requests only a memtable rotation (used by `flush`).
    batch: Mutex<Option<WriteBatch>>,
    sync: bool,
    /// The batch already carries its sequence numbers (assigned by an
    /// external allocator, e.g. a sharded coordinator) and must not be
    /// renumbered or merged into another batch.
    pre: bool,
    /// When set, the write is a *sequence reservation*: it carries no
    /// records, commits alone, and the engine deposits the freshly claimed
    /// sequence number into the cell. Like a rotation request, it is never
    /// completed by another leader, so the submitter always leads it.
    reserve: Option<Arc<AtomicU64>>,
    /// Set (under the queue lock) once a leader has committed this write.
    done: Mutex<Option<Result<()>>>,
    cv: Condvar,
}

impl Waiter {
    fn new(batch: Option<WriteBatch>, sync: bool, pre: bool) -> Self {
        Waiter {
            batch: Mutex::new(batch),
            sync,
            pre,
            reserve: None,
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// A handle for a submitted write, redeemed with [`CommitQueue::wait_turn`].
pub struct Ticket {
    waiter: Arc<Waiter>,
}

/// What [`CommitQueue::wait_turn`] resolved a ticket into.
pub enum Role {
    /// A leader already committed this write; here is the group's result.
    Done(Result<()>),
    /// This writer is the leader and must commit the group, then call
    /// [`CommitQueue::complete`].
    Leader(CommitGroup),
}

/// The work handed to a leader: the merged batch plus the queue members the
/// commit covers (leader first).
pub struct CommitGroup {
    members: Vec<Arc<Waiter>>,
    /// Every member batch merged in queue order. Empty when the group is a
    /// pure rotation request or a pre-sequenced group.
    pub batch: WriteBatch,
    /// Pre-sequenced member batches, kept separate (never merged) because
    /// each already carries its own externally assigned base sequence. A
    /// group holds either `batch` or `pre_batches`, never both.
    pub pre_batches: Vec<WriteBatch>,
    /// Whether the WAL must be synced before the group is acknowledged.
    pub sync: bool,
    /// Whether the leader asked for a memtable rotation instead of a write.
    pub force_rotate: bool,
    /// When set, the group is a sequence reservation: the engine claims one
    /// fresh sequence slot and stores it here instead of writing anything.
    pub reserve: Option<Arc<AtomicU64>>,
}

/// A FIFO queue of pending writes with leader election and batch merging.
#[derive(Default)]
pub struct CommitQueue {
    queue: Mutex<VecDeque<Arc<Waiter>>>,
}

impl CommitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CommitQueue::default()
    }

    /// Enqueues a write (or, with `batch == None`, a rotation request).
    pub fn submit(&self, batch: Option<WriteBatch>, sync: bool) -> Ticket {
        let waiter = Arc::new(Waiter::new(batch, sync, false));
        self.queue.lock().push_back(Arc::clone(&waiter));
        Ticket { waiter }
    }

    /// Enqueues a batch whose sequence numbers were already assigned by an
    /// external allocator. The batch still rides the group-commit pipeline
    /// (shared WAL sync with other pre-sequenced writes) but is never merged
    /// into — or renumbered by — a normal group; it surfaces to the leader in
    /// [`CommitGroup::pre_batches`].
    pub fn submit_presequenced(&self, batch: WriteBatch, sync: bool) -> Ticket {
        let waiter = Arc::new(Waiter::new(Some(batch), sync, true));
        self.queue.lock().push_back(Arc::clone(&waiter));
        Ticket { waiter }
    }

    /// Enqueues a sequence-slot reservation. The request rides the queue
    /// like a rotation (it commits alone and no other leader ever completes
    /// it, so the submitter always becomes its leader); committing it makes
    /// the engine claim one fresh sequence number — which no concurrent or
    /// future write group can be assigned — and deposit it into `slot`.
    pub fn submit_reserve(&self, slot: Arc<AtomicU64>) -> Ticket {
        let mut waiter = Waiter::new(None, false, false);
        waiter.reserve = Some(slot);
        let waiter = Arc::new(waiter);
        self.queue.lock().push_back(Arc::clone(&waiter));
        Ticket { waiter }
    }

    /// Blocks until the ticket's write either was committed by another
    /// leader ([`Role::Done`]) or reached the front of the queue, in which
    /// case the caller becomes the leader of a freshly merged group.
    pub fn wait_turn(&self, ticket: &Ticket) -> Role {
        let mut queue = self.queue.lock();
        loop {
            if let Some(result) = ticket.waiter.done.lock().take() {
                return Role::Done(result);
            }
            let is_front = queue
                .front()
                .is_some_and(|front| Arc::ptr_eq(front, &ticket.waiter));
            if is_front {
                return Role::Leader(Self::build_group(&queue));
            }
            ticket.waiter.cv.wait(&mut queue);
        }
    }

    /// Merges the front of the queue into one group. Called with the queue
    /// lock held and the leader at the front.
    fn build_group(queue: &VecDeque<Arc<Waiter>>) -> CommitGroup {
        let leader = Arc::clone(queue.front().expect("leader is at the front"));
        let leader_batch = leader.batch.lock().take();
        let sync = leader.sync;
        let leader_pre = leader.pre;
        let leader_reserve = leader.reserve.clone();
        let mut members = vec![leader];

        let Some(leader_batch) = leader_batch else {
            // A rotation or reservation request commits alone.
            return CommitGroup {
                members,
                batch: WriteBatch::new(),
                pre_batches: Vec::new(),
                sync,
                force_rotate: leader_reserve.is_none(),
                reserve: leader_reserve,
            };
        };

        // Cap the group: 1 MiB normally, leader size + 128 KiB when the
        // leader batch is small, so a tiny write is never stuck behind the
        // merge cost of a huge group.
        let leader_bytes = leader_batch.approximate_size();
        let max_bytes = if leader_bytes <= SMALL_BATCH_BYTES {
            leader_bytes + SMALL_BATCH_BYTES
        } else {
            MAX_GROUP_BYTES
        };

        if leader_pre {
            // A pre-sequenced leader absorbs only other pre-sequenced
            // writes, each kept as its own batch: merging would destroy
            // their externally assigned base sequences, and a normal
            // follower cannot join because the engine would have to invent
            // sequences that interleave with the external allocator's.
            let mut pre_batches = vec![leader_batch];
            let mut total = leader_bytes;
            for follower in queue.iter().skip(1) {
                if (follower.sync && !sync) || !follower.pre {
                    break;
                }
                let mut follower_batch = follower.batch.lock();
                let Some(batch) = follower_batch.as_ref() else {
                    break;
                };
                if total + batch.approximate_size() > max_bytes {
                    break;
                }
                total += batch.approximate_size();
                pre_batches.push(follower_batch.take().expect("checked above"));
                drop(follower_batch);
                members.push(Arc::clone(follower));
            }
            return CommitGroup {
                members,
                batch: WriteBatch::new(),
                pre_batches,
                sync,
                force_rotate: false,
                reserve: None,
            };
        }

        let mut merged = leader_batch;
        for follower in queue.iter().skip(1) {
            // A non-sync leader must not absorb a sync write: the follower
            // would be acknowledged without the sync it asked for. A
            // pre-sequenced write never joins a normal group (see above).
            if (follower.sync && !sync) || follower.pre {
                break;
            }
            let mut follower_batch = follower.batch.lock();
            // Rotation requests commit alone; stop merging at one.
            let Some(batch) = follower_batch.as_ref() else {
                break;
            };
            if merged.approximate_size() + batch.approximate_size() > max_bytes {
                break;
            }
            let batch = follower_batch.take().expect("checked above");
            merged.append(&batch);
            drop(follower_batch);
            members.push(Arc::clone(follower));
        }

        CommitGroup {
            members,
            batch: merged,
            pre_batches: Vec::new(),
            sync,
            force_rotate: false,
            reserve: None,
        }
    }

    /// Reports the leader's `result` to every follower in the group, removes
    /// the group from the queue, and wakes the next leader (if any).
    ///
    /// The leader's own result is *not* deposited; the leader already has it.
    pub fn complete(&self, group: CommitGroup, result: &Result<()>) {
        let mut queue = self.queue.lock();
        for (position, member) in group.members.iter().enumerate() {
            let front = queue.pop_front().expect("group members are queued");
            debug_assert!(Arc::ptr_eq(&front, member), "queue order changed");
            if position > 0 {
                *front.done.lock() = Some(result.clone());
                front.cv.notify_one();
            }
        }
        if let Some(next_leader) = queue.front() {
            next_leader.cv.notify_one();
        }
    }

    /// Number of writes currently queued (for tests and introspection).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Returns `true` when no writes are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn batch_of(keys: &[&str]) -> WriteBatch {
        let mut batch = WriteBatch::new();
        for key in keys {
            batch.put(key.as_bytes(), b"v");
        }
        batch
    }

    #[test]
    fn sole_writer_becomes_leader_with_its_own_batch() {
        let queue = CommitQueue::new();
        let ticket = queue.submit(Some(batch_of(&["a"])), false);
        let Role::Leader(group) = queue.wait_turn(&ticket) else {
            panic!("first writer must lead");
        };
        assert_eq!(group.batch.count(), 1);
        assert!(!group.force_rotate);
        queue.complete(group, &Ok(()));
        assert!(queue.is_empty());
    }

    #[test]
    fn leader_merges_followers_and_completes_them() {
        let queue = CommitQueue::new();
        let leader_ticket = queue.submit(Some(batch_of(&["a"])), false);
        let follower_ticket = queue.submit(Some(batch_of(&["b", "c"])), false);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        assert_eq!(group.batch.count(), 3, "follower batch merged");
        assert_eq!(group.members.len(), 2);
        queue.complete(group, &Ok(()));

        // The follower finds its deposited result without leading.
        match queue.wait_turn(&follower_ticket) {
            Role::Done(result) => assert!(result.is_ok()),
            Role::Leader(_) => panic!("follower was already committed"),
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn sync_follower_is_not_merged_into_non_sync_group() {
        let queue = CommitQueue::new();
        let leader_ticket = queue.submit(Some(batch_of(&["a"])), false);
        let _sync_ticket = queue.submit(Some(batch_of(&["b"])), true);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        assert_eq!(group.batch.count(), 1, "sync write left for its own group");
        assert_eq!(group.members.len(), 1);
        queue.complete(group, &Ok(()));
        assert_eq!(queue.len(), 1, "sync write still queued");
    }

    #[test]
    fn non_sync_follower_joins_sync_group() {
        let queue = CommitQueue::new();
        let leader_ticket = queue.submit(Some(batch_of(&["a"])), true);
        let _follower = queue.submit(Some(batch_of(&["b"])), false);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        assert!(group.sync);
        assert_eq!(group.batch.count(), 2, "non-sync write rides the sync");
        queue.complete(group, &Ok(()));
    }

    #[test]
    fn rotation_request_commits_alone() {
        let queue = CommitQueue::new();
        let rotate_ticket = queue.submit(None, false);
        let _write = queue.submit(Some(batch_of(&["a"])), false);

        let Role::Leader(group) = queue.wait_turn(&rotate_ticket) else {
            panic!("first writer must lead");
        };
        assert!(group.force_rotate);
        assert!(group.batch.is_empty());
        assert_eq!(group.members.len(), 1);
        queue.complete(group, &Ok(()));
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn merge_stops_before_a_rotation_request() {
        let queue = CommitQueue::new();
        let leader_ticket = queue.submit(Some(batch_of(&["a"])), false);
        let _rotate = queue.submit(None, false);
        let _write = queue.submit(Some(batch_of(&["b"])), false);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        assert_eq!(group.batch.count(), 1);
        queue.complete(group, &Ok(()));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn reservation_request_commits_alone_and_always_leads() {
        use std::sync::atomic::Ordering;
        let queue = CommitQueue::new();
        let slot = Arc::new(AtomicU64::new(0));
        let reserve_ticket = queue.submit_reserve(Arc::clone(&slot));
        let _write = queue.submit(Some(batch_of(&["a"])), false);

        let Role::Leader(group) = queue.wait_turn(&reserve_ticket) else {
            panic!("reservation submitter must lead");
        };
        assert!(!group.force_rotate, "a reservation is not a rotation");
        assert!(group.batch.is_empty() && group.pre_batches.is_empty());
        let cell = group.reserve.clone().expect("reservation carries its slot");
        cell.store(41, Ordering::Relaxed); // as the engine's commit would
        queue.complete(group, &Ok(()));
        assert_eq!(slot.load(Ordering::Relaxed), 41);
        assert_eq!(queue.len(), 1, "the write is left for its own group");
    }

    #[test]
    fn merge_stops_before_a_reservation_request() {
        let queue = CommitQueue::new();
        let leader_ticket = queue.submit(Some(batch_of(&["a"])), false);
        let _reserve = queue.submit_reserve(Arc::new(AtomicU64::new(0)));
        let _write = queue.submit(Some(batch_of(&["b"])), false);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        assert_eq!(group.batch.count(), 1, "merge must stop at the reservation");
        queue.complete(group, &Ok(()));
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn errors_propagate_to_every_follower() {
        let queue = CommitQueue::new();
        let leader_ticket = queue.submit(Some(batch_of(&["a"])), false);
        let follower_ticket = queue.submit(Some(batch_of(&["b"])), false);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        queue.complete(group, &Err(Error::internal("disk on fire")));
        match queue.wait_turn(&follower_ticket) {
            Role::Done(result) => assert!(result.is_err()),
            Role::Leader(_) => panic!("follower shared the leader's failure"),
        }
    }

    #[test]
    fn presequenced_batches_group_together_but_never_merge() {
        let queue = CommitQueue::new();
        let mut first = batch_of(&["a"]);
        first.set_sequence(100);
        let mut second = batch_of(&["b", "c"]);
        second.set_sequence(200);
        let leader_ticket = queue.submit_presequenced(first, false);
        let follower_ticket = queue.submit_presequenced(second, false);

        let Role::Leader(group) = queue.wait_turn(&leader_ticket) else {
            panic!("first writer must lead");
        };
        assert!(group.batch.is_empty(), "pre group carries no merged batch");
        assert_eq!(group.pre_batches.len(), 2, "both batches in one group");
        assert_eq!(group.pre_batches[0].sequence(), 100);
        assert_eq!(group.pre_batches[1].sequence(), 200, "sequences intact");
        queue.complete(group, &Ok(()));
        match queue.wait_turn(&follower_ticket) {
            Role::Done(result) => assert!(result.is_ok()),
            Role::Leader(_) => panic!("pre follower was already committed"),
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn normal_and_presequenced_groups_never_mix() {
        let queue = CommitQueue::new();
        let normal_ticket = queue.submit(Some(batch_of(&["a"])), false);
        let mut pre = batch_of(&["b"]);
        pre.set_sequence(500);
        let _pre_ticket = queue.submit_presequenced(pre, false);
        let _normal2 = queue.submit(Some(batch_of(&["c"])), false);

        // A normal leader stops merging at the pre-sequenced follower.
        let Role::Leader(group) = queue.wait_turn(&normal_ticket) else {
            panic!("first writer must lead");
        };
        assert_eq!(group.batch.count(), 1);
        assert!(group.pre_batches.is_empty());
        queue.complete(group, &Ok(()));

        // The pre-sequenced write now leads and stops at the normal one.
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn concurrent_writers_all_complete() {
        let queue = Arc::new(CommitQueue::new());
        let committed = Arc::new(Mutex::new(0u64));
        std::thread::scope(|scope| {
            for i in 0..16u32 {
                let queue = Arc::clone(&queue);
                let committed = Arc::clone(&committed);
                scope.spawn(move || {
                    let ticket = queue.submit(Some(batch_of(&[&format!("k{i}")])), false);
                    match queue.wait_turn(&ticket) {
                        Role::Done(result) => result.unwrap(),
                        Role::Leader(group) => {
                            *committed.lock() += u64::from(group.batch.count());
                            queue.complete(group, &Ok(()));
                        }
                    }
                });
            }
        });
        assert_eq!(*committed.lock(), 16, "every batch committed exactly once");
        assert!(queue.is_empty());
    }
}
