//! Write batches: atomically applied groups of puts and deletes.
//!
//! The on-disk representation matches the LevelDB family so the write-ahead
//! log payload is exactly a serialized batch:
//!
//! ```text
//! sequence: fixed64          first sequence number of the batch
//! count:    fixed32          number of records
//! records:  record*
//! record := kTypeValue      varstring(key) varstring(value)
//!         | kTypeDeletion   varstring(key)
//!         | kTypeCfValue    varint32(cf) varstring(key) varstring(value)
//!         | kTypeCfDeletion varint32(cf) varstring(key)
//! ```
//!
//! Records addressed at the default column family (id 0) use the original
//! two tags, so batches written before column families existed decode
//! unchanged and single-namespace batches carry zero encoding overhead. The
//! RocksDB-style `Cf*` tags prefix the record with a varint column-family
//! id; a single batch may mix records for several families and is still
//! applied atomically (one WAL record, one sequence range).

use crate::coding::put_length_prefixed_slice;
use crate::coding::{decode_fixed32, decode_fixed64, put_fixed32, put_fixed64, Decoder};
use crate::error::{Error, Result};
use crate::key::{SequenceNumber, ValueType};

/// The fixed-size batch header: 8-byte sequence plus 4-byte count.
pub const BATCH_HEADER_SIZE: usize = 12;

/// Identifier of a column family within a store; 0 is the default family.
pub type CfId = u32;

/// Record tag: a put into a non-default column family (varint cf id follows).
const TAG_CF_VALUE: u8 = 2;
/// Record tag: a delete in a non-default column family (varint cf id follows).
const TAG_CF_DELETION: u8 = 3;
/// Record tag: a value-pointer put in the default column family. The raw
/// [`ValueType::ValuePointer`] tag (2) cannot be used on the wire because it
/// collides with [`TAG_CF_VALUE`], so pointer records get their own tags.
const TAG_VALUE_POINTER: u8 = 4;
/// Record tag: a value-pointer put in a non-default column family.
const TAG_CF_VALUE_POINTER: u8 = 5;

/// A re-orderable group of updates applied to a store atomically.
#[derive(Clone, Debug)]
pub struct WriteBatch {
    rep: Vec<u8>,
}

impl Default for WriteBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        let mut rep = Vec::with_capacity(64);
        put_fixed64(&mut rep, 0);
        put_fixed32(&mut rep, 0);
        WriteBatch { rep }
    }

    /// Reconstructs a batch from its serialized representation.
    pub fn from_contents(contents: Vec<u8>) -> Result<Self> {
        if contents.len() < BATCH_HEADER_SIZE {
            return Err(Error::corruption("write batch too small"));
        }
        Ok(WriteBatch { rep: contents })
    }

    /// Adds a `put` of `key -> value` to the batch.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.put_cf(0, key, value);
    }

    /// Adds a deletion of `key` to the batch.
    pub fn delete(&mut self, key: &[u8]) {
        self.delete_cf(0, key);
    }

    /// Adds a `put` of `key -> value` addressed at column family `cf`.
    ///
    /// Family 0 uses the legacy tag so single-namespace batches are
    /// byte-identical to the pre-column-family encoding.
    pub fn put_cf(&mut self, cf: CfId, key: &[u8], value: &[u8]) {
        self.set_count(self.count() + 1);
        if cf == 0 {
            self.rep.push(ValueType::Value as u8);
        } else {
            self.rep.push(TAG_CF_VALUE);
            crate::coding::put_varint32(&mut self.rep, cf);
        }
        put_length_prefixed_slice(&mut self.rep, key);
        put_length_prefixed_slice(&mut self.rep, value);
    }

    /// Adds a value-pointer record: `key` maps to `encoded_pointer`, the
    /// fixed-size [`crate::vlog::ValuePointer`] encoding of a value that the
    /// engine's key-value separation path appended to a value-log file.
    ///
    /// Only the engines build these (during commit-time separation and vlog
    /// garbage collection); user-facing batches never contain them.
    pub fn put_pointer_cf(&mut self, cf: CfId, key: &[u8], encoded_pointer: &[u8]) {
        debug_assert_eq!(encoded_pointer.len(), crate::vlog::VALUE_POINTER_LEN);
        self.set_count(self.count() + 1);
        if cf == 0 {
            self.rep.push(TAG_VALUE_POINTER);
        } else {
            self.rep.push(TAG_CF_VALUE_POINTER);
            crate::coding::put_varint32(&mut self.rep, cf);
        }
        put_length_prefixed_slice(&mut self.rep, key);
        put_length_prefixed_slice(&mut self.rep, encoded_pointer);
    }

    /// Adds a deletion of `key` addressed at column family `cf`.
    pub fn delete_cf(&mut self, cf: CfId, key: &[u8]) {
        self.set_count(self.count() + 1);
        if cf == 0 {
            self.rep.push(ValueType::Deletion as u8);
        } else {
            self.rep.push(TAG_CF_DELETION);
            crate::coding::put_varint32(&mut self.rep, cf);
        }
        put_length_prefixed_slice(&mut self.rep, key);
    }

    /// Re-addresses every default-family record at `cf`, leaving records
    /// with an explicit family untouched.
    ///
    /// This is how a [`ColumnFamilyHandle`](crate::cf::ColumnFamilyHandle)
    /// applies a plain batch to its own namespace: code written against the
    /// single-namespace `KvStore` API keeps building batches with
    /// [`WriteBatch::put`]/[`WriteBatch::delete`] and the handle retargets
    /// them on write.
    pub fn retarget_default_cf(&self, cf: CfId) -> Result<WriteBatch> {
        if cf == 0 {
            return Ok(self.clone());
        }
        let mut out = WriteBatch::new();
        out.set_sequence(self.sequence());
        for record in self.iter() {
            let record = record?;
            let target = if record.cf == 0 { cf } else { record.cf };
            match record.value_type {
                ValueType::Value => out.put_cf(target, record.key, record.value),
                ValueType::Deletion => out.delete_cf(target, record.key),
                ValueType::ValuePointer => out.put_pointer_cf(target, record.key, record.value),
            }
        }
        Ok(out)
    }

    /// Removes every record, returning the batch to its freshly-created state.
    pub fn clear(&mut self) {
        self.rep.truncate(0);
        put_fixed64(&mut self.rep, 0);
        put_fixed32(&mut self.rep, 0);
    }

    /// Number of records in the batch.
    pub fn count(&self) -> u32 {
        decode_fixed32(&self.rep[8..12])
    }

    /// Returns `true` if the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The sequence number assigned to the first record of the batch.
    pub fn sequence(&self) -> SequenceNumber {
        decode_fixed64(&self.rep[..8])
    }

    /// Sets the sequence number of the first record.
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// The serialized representation (also the WAL payload).
    pub fn contents(&self) -> &[u8] {
        &self.rep
    }

    /// Approximate in-memory/on-log size of the batch in bytes.
    pub fn approximate_size(&self) -> usize {
        self.rep.len()
    }

    /// Appends all records of `other` to this batch.
    pub fn append(&mut self, other: &WriteBatch) {
        self.set_count(self.count() + other.count());
        self.rep.extend_from_slice(&other.rep[BATCH_HEADER_SIZE..]);
    }

    /// Iterates over the records of the batch in insertion order.
    ///
    /// Each record is reported with the sequence number it will carry once
    /// the batch's starting sequence is applied.
    pub fn iter(&self) -> WriteBatchIter<'_> {
        WriteBatchIter {
            decoder: Decoder::new(&self.rep[BATCH_HEADER_SIZE..]),
            next_sequence: self.sequence(),
            remaining: self.count(),
        }
    }

    /// Verifies the batch decodes cleanly, returning the record count.
    pub fn verify(&self) -> Result<u32> {
        let mut n = 0;
        for record in self.iter() {
            record?;
            n += 1;
        }
        if n != self.count() {
            return Err(Error::corruption(format!(
                "write batch count mismatch: header says {}, found {}",
                self.count(),
                n
            )));
        }
        Ok(n)
    }

    fn set_count(&mut self, count: u32) {
        self.rep[8..12].copy_from_slice(&count.to_le_bytes());
    }
}

/// A single decoded record within a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord<'a> {
    /// The sequence number this record is applied at.
    pub sequence: SequenceNumber,
    /// The column family this record is addressed at (0 = default).
    pub cf: CfId,
    /// Whether this is a put or a delete.
    pub value_type: ValueType,
    /// The user key.
    pub key: &'a [u8],
    /// The value (empty for deletions).
    pub value: &'a [u8],
}

/// Iterator over the records of a [`WriteBatch`].
pub struct WriteBatchIter<'a> {
    decoder: Decoder<'a>,
    next_sequence: SequenceNumber,
    remaining: u32,
}

impl<'a> Iterator for WriteBatchIter<'a> {
    type Item = Result<BatchRecord<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return if self.decoder.is_empty() {
                None
            } else {
                Some(Err(Error::corruption("trailing bytes in write batch")))
            };
        }
        if self.decoder.is_empty() {
            self.remaining = 0;
            return Some(Err(Error::corruption("write batch ended early")));
        }
        self.remaining -= 1;
        let seq = self.next_sequence;
        self.next_sequence += 1;
        Some(self.decode_one(seq))
    }
}

impl<'a> WriteBatchIter<'a> {
    fn decode_one(&mut self, sequence: SequenceNumber) -> Result<BatchRecord<'a>> {
        let tag = self.decoder.read_bytes(1)?[0];
        let (value_type, cf) = match tag {
            TAG_CF_VALUE => (ValueType::Value, self.decoder.read_varint32()?),
            TAG_CF_DELETION => (ValueType::Deletion, self.decoder.read_varint32()?),
            TAG_VALUE_POINTER => (ValueType::ValuePointer, 0),
            TAG_CF_VALUE_POINTER => (ValueType::ValuePointer, self.decoder.read_varint32()?),
            // The raw `ValueType` tags 0 and 1 (legacy default-family put and
            // delete). Tag 2 never reaches this arm: it is TAG_CF_VALUE above.
            _ => (
                ValueType::from_u8(tag)
                    .filter(|vt| *vt != ValueType::ValuePointer)
                    .ok_or_else(|| Error::corruption(format!("unknown write batch tag {tag}")))?,
                0,
            ),
        };
        let key = self.decoder.read_length_prefixed_slice()?;
        let value = match value_type {
            ValueType::Value | ValueType::ValuePointer => {
                self.decoder.read_length_prefixed_slice()?
            }
            ValueType::Deletion => &[],
        };
        Ok(BatchRecord {
            sequence,
            cf,
            value_type,
            key,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_has_no_records() {
        let batch = WriteBatch::new();
        assert_eq!(batch.count(), 0);
        assert!(batch.is_empty());
        assert_eq!(batch.iter().count(), 0);
        assert_eq!(batch.verify().unwrap(), 0);
    }

    #[test]
    fn puts_and_deletes_roundtrip() {
        let mut batch = WriteBatch::new();
        batch.put(b"alpha", b"1");
        batch.delete(b"beta");
        batch.put(b"gamma", b"3");
        batch.set_sequence(100);

        let records: Vec<_> = batch.iter().map(|r| r.unwrap()).collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].key, b"alpha");
        assert_eq!(records[0].value, b"1");
        assert_eq!(records[0].sequence, 100);
        assert_eq!(records[0].value_type, ValueType::Value);
        assert_eq!(records[1].key, b"beta");
        assert_eq!(records[1].value_type, ValueType::Deletion);
        assert_eq!(records[1].sequence, 101);
        assert_eq!(records[2].sequence, 102);
    }

    #[test]
    fn serialization_roundtrips_through_contents() {
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v");
        batch.set_sequence(9);
        let restored = WriteBatch::from_contents(batch.contents().to_vec()).unwrap();
        assert_eq!(restored.count(), 1);
        assert_eq!(restored.sequence(), 9);
        let rec = restored.iter().next().unwrap().unwrap();
        assert_eq!(rec.key, b"k");
        assert_eq!(rec.value, b"v");
    }

    #[test]
    fn append_merges_batches() {
        let mut a = WriteBatch::new();
        a.put(b"one", b"1");
        let mut b = WriteBatch::new();
        b.put(b"two", b"2");
        b.delete(b"three");
        a.append(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.verify().unwrap(), 3);
    }

    /// `append` bookkeeping: the merged count is the exact sum and the
    /// merged size is both batches' payloads behind a single header, for
    /// empty, plain and column-family-tagged operands alike.
    #[test]
    fn append_keeps_count_and_size_bookkeeping_exact() {
        let mut a = WriteBatch::new();
        a.put(b"one", b"1");
        a.put_cf(7, b"seven", b"77");
        let mut b = WriteBatch::new();
        b.delete_cf(300, b"big-id");
        b.put(b"plain", b"p");
        let (a_size, b_size) = (a.approximate_size(), b.approximate_size());

        a.append(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.verify().unwrap(), 4);
        // One header was dropped in the merge; every payload byte survives.
        assert_eq!(a.approximate_size(), a_size + b_size - BATCH_HEADER_SIZE);
        // Records keep their family and order across the merge.
        let cfs: Vec<u32> = a.iter().map(|r| r.unwrap().cf).collect();
        assert_eq!(cfs, vec![0, 7, 300, 0]);

        // Appending an empty batch is a no-op for both count and size.
        let before = (a.count(), a.approximate_size());
        a.append(&WriteBatch::new());
        assert_eq!((a.count(), a.approximate_size()), before);
    }

    #[test]
    fn cf_records_roundtrip_and_default_cf_encoding_is_legacy() {
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v");
        // The default family uses the original tag bytes: the encoding is
        // identical to a pre-column-family batch.
        let mut legacy = WriteBatch::new();
        legacy.put(b"k", b"v");
        assert_eq!(batch.contents(), legacy.contents());

        batch.put_cf(3, b"ck", b"cv");
        batch.delete_cf(3, b"ck2");
        batch.delete(b"k2");
        batch.set_sequence(10);
        let restored = WriteBatch::from_contents(batch.contents().to_vec()).unwrap();
        let records: Vec<_> = restored.iter().map(|r| r.unwrap()).collect();
        assert_eq!(records.len(), 4);
        assert_eq!((records[0].cf, records[0].key), (0, &b"k"[..]));
        assert_eq!((records[1].cf, records[1].key), (3, &b"ck"[..]));
        assert_eq!(records[1].value, b"cv");
        assert_eq!(records[2].cf, 3);
        assert_eq!(records[2].value_type, ValueType::Deletion);
        assert_eq!((records[3].cf, records[3].sequence), (0, 13));
    }

    #[test]
    fn retarget_default_cf_moves_only_untagged_records() {
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put_cf(5, b"b", b"2");
        batch.delete(b"c");
        batch.set_sequence(99);
        let retargeted = batch.retarget_default_cf(2).unwrap();
        assert_eq!(retargeted.count(), 3);
        assert_eq!(retargeted.sequence(), 99);
        let cfs: Vec<u32> = retargeted.iter().map(|r| r.unwrap().cf).collect();
        assert_eq!(cfs, vec![2, 5, 2]);
        // Retargeting at the default family is the identity.
        assert_eq!(
            batch.retarget_default_cf(0).unwrap().contents(),
            batch.contents()
        );
    }

    #[test]
    fn pointer_records_roundtrip_in_both_families() {
        let pointer = crate::vlog::ValuePointer {
            file_number: 12,
            offset: 4096,
            len: 1044,
        }
        .encode();
        let mut batch = WriteBatch::new();
        batch.put_pointer_cf(0, b"big0", &pointer);
        batch.put_pointer_cf(9, b"big9", &pointer);
        batch.put(b"small", b"inline");
        batch.set_sequence(40);

        let restored = WriteBatch::from_contents(batch.contents().to_vec()).unwrap();
        let records: Vec<_> = restored.iter().map(|r| r.unwrap()).collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].value_type, ValueType::ValuePointer);
        assert_eq!((records[0].cf, records[0].key), (0, &b"big0"[..]));
        assert_eq!(records[0].value, pointer.as_slice());
        assert_eq!(records[1].value_type, ValueType::ValuePointer);
        assert_eq!(records[1].cf, 9);
        assert_eq!(records[2].value_type, ValueType::Value);

        // Retargeting preserves pointer records.
        let retargeted = batch.retarget_default_cf(5).unwrap();
        let recs: Vec<_> = retargeted.iter().map(|r| r.unwrap()).collect();
        assert_eq!(recs[0].cf, 5);
        assert_eq!(recs[0].value_type, ValueType::ValuePointer);
        assert_eq!(recs[0].value, pointer.as_slice());

        // Merging via append keeps pointer records byte-identical.
        let mut merged = WriteBatch::new();
        merged.put(b"x", b"y");
        merged.append(&batch);
        assert_eq!(merged.verify().unwrap(), 4);
    }

    #[test]
    fn clear_resets_batch() {
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v");
        batch.set_sequence(55);
        batch.clear();
        assert_eq!(batch.count(), 0);
        assert_eq!(batch.sequence(), 0);
        assert_eq!(batch.contents().len(), BATCH_HEADER_SIZE);
    }

    #[test]
    fn corrupt_count_is_detected() {
        let mut batch = WriteBatch::new();
        batch.put(b"k", b"v");
        let mut contents = batch.contents().to_vec();
        contents[8..12].copy_from_slice(&5u32.to_le_bytes());
        let corrupt = WriteBatch::from_contents(contents).unwrap();
        assert!(corrupt.verify().is_err());
    }

    #[test]
    fn too_small_contents_rejected() {
        assert!(WriteBatch::from_contents(vec![0u8; 4]).is_err());
    }
}
