//! One shared rendering of [`StoreStats`]/[`CfStats`] counters.
//!
//! Three surfaces show the same counters: the `db_bench` report tables, the
//! network server's `INFO` command, and its Prometheus metrics endpoint.
//! Each used to be free to hand-pick and hand-name fields, which is how
//! counter lists drift apart. This module is the single source of truth:
//! every surface iterates [`store_stat_fields`] / [`cf_stat_fields`] and
//! only decides *presentation* (table cell, `name:value` line, or
//! `pebblesdb_store_name` gauge) — never *which* counters exist.

use crate::cf::CfStats;
use crate::store::StoreStats;

/// What a counter measures, so surfaces can format it appropriately
/// (e.g. bytes as MiB in human output, raw in Prometheus output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatUnit {
    /// A plain count (operations, files, ...).
    Count,
    /// A byte quantity.
    Bytes,
    /// A duration in microseconds.
    Micros,
}

/// One named counter with its unit.
#[derive(Debug, Clone)]
pub struct StatField {
    /// Snake-case field name, stable across surfaces.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
    /// What the value measures.
    pub unit: StatUnit,
}

impl StatField {
    fn new(name: &'static str, value: u64, unit: StatUnit) -> StatField {
        StatField { name, value, unit }
    }

    /// Renders the value for human output: bytes as MiB, durations as
    /// milliseconds, counts as-is.
    pub fn human_value(&self) -> String {
        match self.unit {
            StatUnit::Count => self.value.to_string(),
            StatUnit::Bytes => format_mib(self.value),
            StatUnit::Micros => format!("{:.1} ms", self.value as f64 / 1000.0),
        }
    }
}

/// Every counter of a [`StoreStats`], in declaration order.
pub fn store_stat_fields(stats: &StoreStats) -> Vec<StatField> {
    use StatUnit::*;
    vec![
        StatField::new("user_bytes_written", stats.user_bytes_written, Bytes),
        StatField::new("bytes_written", stats.bytes_written, Bytes),
        StatField::new("bytes_read", stats.bytes_read, Bytes),
        StatField::new("disk_bytes_live", stats.disk_bytes_live, Bytes),
        StatField::new("num_files", stats.num_files, Count),
        StatField::new("compactions", stats.compactions, Count),
        StatField::new("flushes", stats.flushes, Count),
        StatField::new(
            "max_concurrent_compactions",
            stats.max_concurrent_compactions,
            Count,
        ),
        StatField::new("compaction_micros", stats.compaction_micros, Micros),
        StatField::new("compaction_bytes_read", stats.compaction_bytes_read, Bytes),
        StatField::new(
            "compaction_bytes_written",
            stats.compaction_bytes_written,
            Bytes,
        ),
        StatField::new("memory_usage_bytes", stats.memory_usage_bytes, Bytes),
        StatField::new("gets", stats.gets, Count),
        StatField::new("seeks", stats.seeks, Count),
        StatField::new("write_stalls", stats.write_stalls, Count),
        StatField::new("write_stall_micros", stats.write_stall_micros, Micros),
        StatField::new("memtable_clones", stats.memtable_clones, Count),
        StatField::new("block_cache_hits", stats.block_cache_hits, Count),
        StatField::new("block_cache_misses", stats.block_cache_misses, Count),
        StatField::new("table_cache_hits", stats.table_cache_hits, Count),
        StatField::new("table_cache_misses", stats.table_cache_misses, Count),
        StatField::new("num_column_families", stats.num_column_families, Count),
        StatField::new("num_shards", stats.num_shards, Count),
        StatField::new("vlog_bytes_written", stats.vlog_bytes_written, Bytes),
        StatField::new("vlog_cache_hits", stats.vlog_cache_hits, Count),
        StatField::new("vlog_cache_misses", stats.vlog_cache_misses, Count),
        StatField::new("vlog_gc_relocations", stats.vlog_gc_relocations, Count),
        StatField::new("cleanup_failures", stats.cleanup_failures, Count),
        StatField::new("compress_input_bytes", stats.compress_input_bytes, Bytes),
        StatField::new("compress_output_bytes", stats.compress_output_bytes, Bytes),
        StatField::new(
            "compress_skipped_blocks",
            stats.compress_skipped_blocks,
            Count,
        ),
        StatField::new("decompress_micros", stats.decompress_micros, Micros),
        StatField::new("replica_applied_seq", stats.replica_applied_seq, Count),
        StatField::new("replica_lag_batches", stats.replica_lag_batches, Count),
        StatField::new("cdc_streams_active", stats.cdc_streams_active, Count),
        StatField::new("wal_bytes_shipped", stats.wal_bytes_shipped, Bytes),
    ]
}

/// Every per-family counter of a [`CfStats`] (id and name are rendered by
/// the surface, as a label or a section header).
pub fn cf_stat_fields(stats: &CfStats) -> Vec<StatField> {
    use StatUnit::*;
    vec![
        StatField::new("num_files", stats.num_files, Count),
        StatField::new("live_bytes", stats.live_bytes, Bytes),
        StatField::new("flushes", stats.flushes, Count),
        StatField::new("memtable_bytes", stats.memtable_bytes, Bytes),
    ]
}

/// Renders `INFO`-style sections: `# <section>` headers followed by
/// `name:value` lines (raw values, machine-parseable).
pub fn render_info(sections: &[(&str, &[StatField])]) -> String {
    let mut out = String::new();
    for (title, fields) in sections {
        out.push_str(&format!("# {title}\r\n"));
        for field in *fields {
            out.push_str(&format!("{}:{}\r\n", field.name, field.value));
        }
        out.push_str("\r\n");
    }
    out
}

/// Formats a byte count as mebibytes with two decimals.
pub fn format_mib(bytes: u64) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_fields_cover_every_stats_member() {
        // Guard against drift: a new StoreStats field must be added to
        // store_stat_fields (this count is the complete member count).
        let stats = StoreStats {
            user_bytes_written: 1,
            bytes_written: 2,
            bytes_read: 3,
            disk_bytes_live: 4,
            num_files: 5,
            compactions: 6,
            flushes: 7,
            max_concurrent_compactions: 8,
            compaction_micros: 9,
            compaction_bytes_read: 10,
            compaction_bytes_written: 11,
            memory_usage_bytes: 12,
            gets: 13,
            seeks: 14,
            write_stalls: 15,
            write_stall_micros: 16,
            memtable_clones: 17,
            block_cache_hits: 18,
            block_cache_misses: 19,
            table_cache_hits: 20,
            table_cache_misses: 21,
            num_column_families: 22,
            num_shards: 23,
            vlog_bytes_written: 24,
            vlog_cache_hits: 25,
            vlog_cache_misses: 26,
            vlog_gc_relocations: 27,
            cleanup_failures: 28,
            compress_input_bytes: 29,
            compress_output_bytes: 30,
            compress_skipped_blocks: 31,
            decompress_micros: 32,
            replica_applied_seq: 33,
            replica_lag_batches: 34,
            cdc_streams_active: 35,
            wal_bytes_shipped: 36,
        };
        let fields = store_stat_fields(&stats);
        assert_eq!(fields.len(), 36);
        // Every distinct value appears exactly once — no field forgotten or
        // double-mapped.
        let mut values: Vec<u64> = fields.iter().map(|f| f.value).collect();
        values.sort_unstable();
        assert_eq!(values, (1..=36).collect::<Vec<u64>>());
    }

    #[test]
    fn cf_fields_and_info_render() {
        let cf = CfStats {
            id: 1,
            name: "users".to_string(),
            num_files: 3,
            live_bytes: 1024,
            flushes: 2,
            memtable_bytes: 512,
        };
        let fields = cf_stat_fields(&cf);
        assert_eq!(fields.len(), 4);
        let info = render_info(&[("cf:users", &fields)]);
        assert!(info.contains("# cf:users\r\n"));
        assert!(info.contains("num_files:3\r\n"));
        assert!(info.contains("live_bytes:1024\r\n"));
    }

    #[test]
    fn human_values_follow_units() {
        assert_eq!(
            StatField::new("x", 3 << 20, StatUnit::Bytes).human_value(),
            "3.00 MiB"
        );
        assert_eq!(
            StatField::new("x", 2500, StatUnit::Micros).human_value(),
            "2.5 ms"
        );
        assert_eq!(StatField::new("x", 7, StatUnit::Count).human_value(), "7");
    }
}
