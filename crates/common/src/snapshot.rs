//! Snapshot handles: pinned sequence numbers with RAII release.
//!
//! Every engine in the workspace versions its data with sequence numbers, so
//! a consistent point-in-time view is simply "read as of sequence S". A
//! [`Snapshot`] pins such a sequence in the engine's [`SnapshotList`]; while
//! any snapshot at or below a version's sequence is live, compaction must not
//! garbage-collect that version (the engines consult
//! [`SnapshotList::oldest`] when deciding which superseded entries to drop).
//! Dropping the handle releases the pin, letting compaction reclaim the
//! obsolete versions eventually.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::key::SequenceNumber;
use crate::options::ReadOptions;

/// The set of sequence numbers currently pinned by live [`Snapshot`]s.
///
/// Engines own one list each (behind an `Arc` so snapshot handles can
/// unregister themselves on drop) and consult [`SnapshotList::oldest`] during
/// compaction: a superseded version may only be dropped once no live snapshot
/// can still observe it.
#[derive(Debug, Default)]
pub struct SnapshotList {
    /// Pinned sequence number -> number of live handles at that sequence.
    pinned: Mutex<BTreeMap<SequenceNumber, usize>>,
}

impl SnapshotList {
    /// Creates an empty list.
    pub fn new() -> Arc<SnapshotList> {
        Arc::new(SnapshotList::default())
    }

    /// Pins `sequence` and returns the RAII handle that releases it.
    pub fn acquire(self: &Arc<Self>, sequence: SequenceNumber) -> Snapshot {
        let mut pinned = self.pinned.lock().unwrap_or_else(PoisonError::into_inner);
        *pinned.entry(sequence).or_insert(0) += 1;
        Snapshot {
            sequence,
            list: Arc::clone(self),
            children: Vec::new(),
        }
    }

    /// The smallest pinned sequence number, if any snapshot is live.
    pub fn oldest(&self) -> Option<SequenceNumber> {
        let pinned = self.pinned.lock().unwrap_or_else(PoisonError::into_inner);
        pinned.keys().next().copied()
    }

    /// The sequence number compaction may garbage-collect up to: versions
    /// superseded at or below this floor are invisible to every reader.
    ///
    /// `last_sequence` is the store's current sequence, used as the floor
    /// when no snapshot is live (then every committed write is visible and
    /// only the newest version of each key needs to be kept). Engines must
    /// not substitute [`MAX_SEQUENCE_NUMBER`] here: compaction compares the
    /// previous version's sequence — initialised to the MAX sentinel at each
    /// new user key — against this floor, and a MAX floor would drop the
    /// newest version itself.
    pub fn compaction_floor(&self, last_sequence: SequenceNumber) -> SequenceNumber {
        self.oldest().unwrap_or(last_sequence)
    }

    /// Returns `true` while at least one snapshot handle is live.
    pub fn has_active(&self) -> bool {
        let pinned = self.pinned.lock().unwrap_or_else(PoisonError::into_inner);
        !pinned.is_empty()
    }

    /// Number of live snapshot handles.
    pub fn len(&self) -> usize {
        let pinned = self.pinned.lock().unwrap_or_else(PoisonError::into_inner);
        pinned.values().sum()
    }

    /// Returns `true` if no snapshot handle is live.
    pub fn is_empty(&self) -> bool {
        !self.has_active()
    }

    fn release(&self, sequence: SequenceNumber) {
        let mut pinned = self.pinned.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(count) = pinned.get_mut(&sequence) {
            *count -= 1;
            if *count == 0 {
                pinned.remove(&sequence);
            }
        }
    }
}

/// A consistent point-in-time view of a store.
///
/// Obtained from [`KvStore::snapshot`](crate::KvStore::snapshot); reads
/// issued with [`Snapshot::read_options`] (or any [`ReadOptions`] carrying
/// [`Snapshot::sequence`]) observe exactly the writes that were acknowledged
/// before the snapshot was taken. Dropping the handle unpins the sequence.
#[derive(Debug)]
pub struct Snapshot {
    sequence: SequenceNumber,
    list: Arc<SnapshotList>,
    /// Pins this handle keeps alive alongside its own (a sharded store pins
    /// the same global sequence in every shard's list). Released when this
    /// handle drops, like any other snapshot.
    children: Vec<Snapshot>,
}

impl Snapshot {
    /// The pinned sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        self.sequence
    }

    /// Attaches `children` whose pins live exactly as long as this handle.
    ///
    /// Used by stores composed of several engines: the composite snapshot is
    /// one pin per engine, surfaced as a single RAII handle.
    pub fn with_children(mut self, children: Vec<Snapshot>) -> Snapshot {
        self.children = children;
        self
    }

    /// Read options that read as of this snapshot.
    pub fn read_options(&self) -> ReadOptions {
        ReadOptions {
            snapshot: Some(self.sequence),
            ..ReadOptions::default()
        }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.list.release(self.sequence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_drop_tracks_the_oldest_pin() {
        let list = SnapshotList::new();
        assert_eq!(list.oldest(), None);
        assert_eq!(list.compaction_floor(42), 42);

        let s10 = list.acquire(10);
        let s5 = list.acquire(5);
        let s5b = list.acquire(5);
        assert_eq!(list.oldest(), Some(5));
        assert_eq!(list.compaction_floor(42), 5);
        assert_eq!(list.len(), 3);

        drop(s5);
        assert_eq!(list.oldest(), Some(5), "second handle still pins 5");
        drop(s5b);
        assert_eq!(list.oldest(), Some(10));
        drop(s10);
        assert_eq!(list.oldest(), None);
        assert!(list.is_empty());
    }

    #[test]
    fn children_pins_live_and_die_with_the_parent() {
        let parents = SnapshotList::new();
        let shard_a = SnapshotList::new();
        let shard_b = SnapshotList::new();
        let composite = parents
            .acquire(9)
            .with_children(vec![shard_a.acquire(9), shard_b.acquire(9)]);
        assert_eq!(shard_a.oldest(), Some(9));
        assert_eq!(shard_b.oldest(), Some(9));
        drop(composite);
        assert!(parents.is_empty());
        assert!(shard_a.is_empty());
        assert!(shard_b.is_empty());
    }

    #[test]
    fn read_options_carry_the_sequence() {
        let list = SnapshotList::new();
        let snap = list.acquire(77);
        assert_eq!(snap.sequence(), 77);
        assert_eq!(snap.read_options().snapshot, Some(77));
    }
}
