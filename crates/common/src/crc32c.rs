//! Software CRC32C (Castagnoli) implementation.
//!
//! The write-ahead log and sstable block trailers checksum their payloads
//! with CRC32C, masked the same way LevelDB masks stored checksums so that a
//! CRC of data that itself embeds CRCs does not degrade.

/// The Castagnoli polynomial in reversed bit order.
const POLY: u32 = 0x82f6_3b78;

/// Lookup table for byte-at-a-time CRC computation, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                if crc & 1 != 0 {
                    crc = (crc >> 1) ^ POLY;
                } else {
                    crc >>= 1;
                }
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a CRC computed over some data with additional bytes.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let table = table();
    let mut crc = !crc;
    for &byte in data {
        crc = table[((crc ^ u32::from(byte)) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Masks a CRC before storing it on disk.
///
/// Storing raw CRCs of data that contains embedded CRCs reduces their
/// error-detection power; the rotation-plus-constant mask avoids that.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Reverses [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32C test vectors (RFC 3720 appendix B.4).
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_matches_full_computation() {
        let data = b"hello world, this is pebblesdb";
        let split = 11;
        let partial = crc32c(&data[..split]);
        assert_eq!(extend(partial, &data[split..]), crc32c(data));
    }

    #[test]
    fn mask_roundtrip_and_differs() {
        let crc = crc32c(b"foo");
        assert_ne!(mask(crc), crc);
        assert_eq!(unmask(mask(crc)), crc);
    }

    #[test]
    fn different_inputs_have_different_crcs() {
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
        assert_ne!(crc32c(b"foo"), crc32c(b"foo\0"));
    }
}
