//! The iterator abstraction shared by memtables, sstables and engines.
//!
//! Engines compose small iterators (a block, an sstable, a guard, a level)
//! into larger ones; [`MergingIterator`] implements the k-way merge both the
//! LSM baseline and the FLSM engine use for range queries.

use std::cmp::Ordering;

use crate::error::Result;
use crate::key::compare_internal_keys;

/// A cursor over a sorted sequence of internal key/value pairs.
///
/// The contract follows LevelDB's iterator: after construction the iterator
/// is *not* positioned; callers must call one of the seek methods first.
/// `key()`/`value()` may only be called while `valid()` returns `true`.
pub trait DbIterator {
    /// Returns `true` if the iterator is positioned at an entry.
    fn valid(&self) -> bool;
    /// Positions at the first entry.
    fn seek_to_first(&mut self);
    /// Positions at the last entry.
    fn seek_to_last(&mut self);
    /// Positions at the first entry with key `>= target` (internal key).
    fn seek(&mut self, target: &[u8]);
    /// Advances to the next entry.
    ///
    /// # Panics
    ///
    /// May panic if the iterator is not valid.
    fn next(&mut self);
    /// Moves to the previous entry.
    ///
    /// # Panics
    ///
    /// May panic if the iterator is not valid.
    fn prev(&mut self);
    /// The current internal key.
    ///
    /// # Panics
    ///
    /// May panic if the iterator is not valid.
    fn key(&self) -> &[u8];
    /// The current value.
    ///
    /// # Panics
    ///
    /// May panic if the iterator is not valid.
    fn value(&self) -> &[u8];
    /// Any IO or corruption error the cursor hit while iterating.
    ///
    /// A cursor that encounters an error stops (becomes invalid) rather
    /// than silently skipping data; callers draining a cursor should check
    /// `status` once the cursor is exhausted, as the provided
    /// [`KvStore::scan`](crate::KvStore::scan) does.
    fn status(&self) -> Result<()> {
        Ok(())
    }
}

/// An iterator over nothing, useful as a placeholder.
#[derive(Debug, Default)]
pub struct EmptyIterator;

impl DbIterator for EmptyIterator {
    fn valid(&self) -> bool {
        false
    }
    fn seek_to_first(&mut self) {}
    fn seek_to_last(&mut self) {}
    fn seek(&mut self, _target: &[u8]) {}
    fn next(&mut self) {}
    fn prev(&mut self) {}
    fn key(&self) -> &[u8] {
        panic!("key() called on empty iterator")
    }
    fn value(&self) -> &[u8] {
        panic!("value() called on empty iterator")
    }
}

/// An iterator over an in-memory, already-sorted list of entries.
///
/// Used by tests and by small metadata structures (for example the list of
/// level files fed into a concatenating iterator).
#[derive(Debug, Clone)]
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// `entries.len()` means "not positioned / exhausted".
    index: usize,
}

impl VecIterator {
    /// Creates an iterator over `entries`, which must already be sorted by
    /// internal key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| compare_internal_keys(&w[0].0, &w[1].0) != Ordering::Greater));
        let index = entries.len();
        VecIterator { entries, index }
    }
}

impl DbIterator for VecIterator {
    fn valid(&self) -> bool {
        self.index < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.index = 0;
    }

    fn seek_to_last(&mut self) {
        self.index = self.entries.len().saturating_sub(1);
        if self.entries.is_empty() {
            self.index = 0;
        }
    }

    fn seek(&mut self, target: &[u8]) {
        self.index = self
            .entries
            .partition_point(|(k, _)| compare_internal_keys(k, target) == Ordering::Less);
    }

    fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        self.index += 1;
    }

    fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid iterator");
        if self.index == 0 {
            self.index = self.entries.len();
        } else {
            self.index -= 1;
        }
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.index].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.index].1
    }
}

/// Merges several child iterators into one sorted stream.
///
/// Children may contain overlapping keys; ties are broken by child order so
/// callers should pass newer sources first when that matters (both engines
/// instead rely on sequence numbers embedded in internal keys).
pub struct MergingIterator {
    children: Vec<Box<dyn DbIterator>>,
    current: Option<usize>,
    direction: Direction,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Direction {
    Forward,
    Reverse,
}

impl MergingIterator {
    /// Creates a merging iterator over `children`.
    pub fn new(children: Vec<Box<dyn DbIterator>>) -> Self {
        MergingIterator {
            children,
            current: None,
            direction: Direction::Forward,
        }
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (idx, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            smallest = match smallest {
                None => Some(idx),
                Some(best) => {
                    if compare_internal_keys(child.key(), self.children[best].key())
                        == Ordering::Less
                    {
                        Some(idx)
                    } else {
                        Some(best)
                    }
                }
            };
        }
        self.current = smallest;
    }

    fn find_largest(&mut self) {
        let mut largest: Option<usize> = None;
        for (idx, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            largest = match largest {
                None => Some(idx),
                Some(best) => {
                    if compare_internal_keys(child.key(), self.children[best].key())
                        == Ordering::Greater
                    {
                        Some(idx)
                    } else {
                        Some(best)
                    }
                }
            };
        }
        self.current = largest;
    }
}

impl DbIterator for MergingIterator {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for child in &mut self.children {
            child.seek_to_first();
        }
        self.direction = Direction::Forward;
        self.find_smallest();
    }

    fn seek_to_last(&mut self) {
        for child in &mut self.children {
            child.seek_to_last();
        }
        self.direction = Direction::Reverse;
        self.find_largest();
    }

    fn seek(&mut self, target: &[u8]) {
        for child in &mut self.children {
            child.seek(target);
        }
        self.direction = Direction::Forward;
        self.find_smallest();
    }

    fn next(&mut self) {
        let current = self.current.expect("next() on invalid merging iterator");
        // If we were previously moving backwards every non-current child is
        // positioned before `key()`; re-seek them past the current key first.
        if self.direction == Direction::Reverse {
            let key = self.children[current].key().to_vec();
            for (idx, child) in self.children.iter_mut().enumerate() {
                if idx == current {
                    continue;
                }
                child.seek(&key);
                if child.valid() && child.key() == key.as_slice() {
                    child.next();
                }
            }
            self.direction = Direction::Forward;
        }
        self.children[current].next();
        self.find_smallest();
    }

    fn prev(&mut self) {
        let current = self.current.expect("prev() on invalid merging iterator");
        if self.direction == Direction::Forward {
            let key = self.children[current].key().to_vec();
            for (idx, child) in self.children.iter_mut().enumerate() {
                if idx == current {
                    continue;
                }
                child.seek(&key);
                if child.valid() {
                    child.prev();
                } else {
                    child.seek_to_last();
                }
            }
            self.direction = Direction::Reverse;
        }
        self.children[current].prev();
        self.find_largest();
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("key() on invalid iterator")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("value() on invalid iterator")].value()
    }

    fn status(&self) -> Result<()> {
        for child in &self.children {
            child.status()?;
        }
        Ok(())
    }
}

/// Forwards to an inner iterator while keeping an arbitrary pin alive.
///
/// The engines use this to tie the lifetime of a cursor to the version (file
/// set) it reads: as long as the cursor exists, the pinned `Arc` keeps the
/// version live and the obsolete-file collector will not delete its
/// sstables.
pub struct PinnedIterator<P> {
    inner: Box<dyn DbIterator>,
    _pin: P,
}

impl<P> PinnedIterator<P> {
    /// Wraps `inner`, holding `pin` until the iterator is dropped.
    pub fn new(inner: Box<dyn DbIterator>, pin: P) -> Self {
        PinnedIterator { inner, _pin: pin }
    }
}

impl<P> DbIterator for PinnedIterator<P> {
    fn valid(&self) -> bool {
        self.inner.valid()
    }
    fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }
    fn seek_to_last(&mut self) {
        self.inner.seek_to_last();
    }
    fn seek(&mut self, target: &[u8]) {
        self.inner.seek(target);
    }
    fn next(&mut self) {
        self.inner.next();
    }
    fn prev(&mut self) {
        self.inner.prev();
    }
    fn key(&self) -> &[u8] {
        self.inner.key()
    }
    fn value(&self) -> &[u8] {
        self.inner.value()
    }
    fn status(&self) -> Result<()> {
        self.inner.status()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{encode_internal_key, ValueType};

    fn entry(key: &str, seq: u64, value: &str) -> (Vec<u8>, Vec<u8>) {
        (
            encode_internal_key(key.as_bytes(), seq, ValueType::Value),
            value.as_bytes().to_vec(),
        )
    }

    fn collect_forward(iter: &mut dyn DbIterator) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        iter.seek_to_first();
        while iter.valid() {
            out.push((iter.key().to_vec(), iter.value().to_vec()));
            iter.next();
        }
        out
    }

    #[test]
    fn empty_iterator_is_never_valid() {
        let mut iter = EmptyIterator;
        iter.seek_to_first();
        assert!(!iter.valid());
        iter.seek(b"anything");
        assert!(!iter.valid());
    }

    #[test]
    fn vec_iterator_walks_entries_in_order() {
        let entries = vec![entry("a", 1, "1"), entry("b", 2, "2"), entry("c", 3, "3")];
        let mut iter = VecIterator::new(entries.clone());
        assert!(!iter.valid());
        let walked = collect_forward(&mut iter);
        assert_eq!(walked, entries);
    }

    #[test]
    fn vec_iterator_seek_finds_lower_bound() {
        let entries = vec![entry("a", 1, "1"), entry("c", 2, "2"), entry("e", 3, "3")];
        let mut iter = VecIterator::new(entries);
        iter.seek(&encode_internal_key(b"b", u64::MAX >> 8, ValueType::Value));
        assert!(iter.valid());
        assert_eq!(crate::key::extract_user_key(iter.key()), b"c");
        iter.seek(&encode_internal_key(b"f", u64::MAX >> 8, ValueType::Value));
        assert!(!iter.valid());
    }

    #[test]
    fn merging_iterator_interleaves_children() {
        let left = VecIterator::new(vec![entry("a", 1, "la"), entry("c", 1, "lc")]);
        let right = VecIterator::new(vec![entry("b", 1, "rb"), entry("d", 1, "rd")]);
        let mut merged = MergingIterator::new(vec![Box::new(left), Box::new(right)]);
        let keys: Vec<Vec<u8>> = collect_forward(&mut merged)
            .into_iter()
            .map(|(k, _)| crate::key::extract_user_key(&k).to_vec())
            .collect();
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn merging_iterator_orders_same_user_key_by_sequence() {
        let newer = VecIterator::new(vec![entry("k", 9, "new")]);
        let older = VecIterator::new(vec![entry("k", 3, "old")]);
        let mut merged = MergingIterator::new(vec![Box::new(older), Box::new(newer)]);
        merged.seek_to_first();
        assert!(merged.valid());
        assert_eq!(merged.value(), b"new");
        merged.next();
        assert!(merged.valid());
        assert_eq!(merged.value(), b"old");
        merged.next();
        assert!(!merged.valid());
    }

    #[test]
    fn merging_iterator_seek_and_reverse() {
        let left = VecIterator::new(vec![entry("a", 1, "1"), entry("c", 1, "3")]);
        let right = VecIterator::new(vec![entry("b", 1, "2"), entry("d", 1, "4")]);
        let mut merged = MergingIterator::new(vec![Box::new(left), Box::new(right)]);
        merged.seek(&encode_internal_key(b"b", u64::MAX >> 8, ValueType::Value));
        assert!(merged.valid());
        assert_eq!(crate::key::extract_user_key(merged.key()), b"b");

        merged.seek_to_last();
        assert!(merged.valid());
        assert_eq!(crate::key::extract_user_key(merged.key()), b"d");
        merged.prev();
        assert_eq!(crate::key::extract_user_key(merged.key()), b"c");
        merged.prev();
        assert_eq!(crate::key::extract_user_key(merged.key()), b"b");
    }

    #[test]
    fn merging_iterator_direction_switch_forward_then_back() {
        let left = VecIterator::new(vec![entry("a", 1, "1"), entry("c", 1, "3")]);
        let right = VecIterator::new(vec![entry("b", 1, "2")]);
        let mut merged = MergingIterator::new(vec![Box::new(left), Box::new(right)]);
        merged.seek_to_first();
        merged.next(); // at "b"
        assert_eq!(crate::key::extract_user_key(merged.key()), b"b");
        merged.prev(); // back to "a"
        assert!(merged.valid());
        assert_eq!(crate::key::extract_user_key(merged.key()), b"a");
        merged.next();
        assert_eq!(crate::key::extract_user_key(merged.key()), b"b");
    }
}
