//! Database file naming conventions.
//!
//! Both engines lay out their directories the LevelDB way: numbered `.log`
//! write-ahead logs, numbered `.sst` tables, `MANIFEST-NNNNNN` descriptor
//! logs and a `CURRENT` pointer file.

use std::path::{Path, PathBuf};

/// The kind of file a database directory entry represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Write-ahead log (`NNNNNN.log`).
    WriteAheadLog,
    /// Sorted string table (`NNNNNN.sst`).
    Table,
    /// Version descriptor log (`MANIFEST-NNNNNN`).
    Descriptor,
    /// The `CURRENT` file pointing at the live manifest.
    Current,
    /// The advisory `LOCK` file.
    Lock,
    /// A temporary file produced during atomic renames (`NNNNNN.dbtmp`).
    Temp,
    /// B+Tree page file (`NNNNNN.btp`).
    BtreePages,
    /// Value-log file holding separated large values (`NNNNNN.vlog`).
    ValueLog,
}

/// Returns the path of write-ahead log number `number` inside `db`.
pub fn log_file_name(db: &Path, number: u64) -> PathBuf {
    db.join(format!("{number:06}.log"))
}

/// Returns the path of sstable number `number` inside `db`.
pub fn table_file_name(db: &Path, number: u64) -> PathBuf {
    db.join(format!("{number:06}.sst"))
}

/// Returns the path of manifest number `number` inside `db`.
pub fn descriptor_file_name(db: &Path, number: u64) -> PathBuf {
    db.join(format!("MANIFEST-{number:06}"))
}

/// Returns the path of the `CURRENT` file inside `db`.
pub fn current_file_name(db: &Path) -> PathBuf {
    db.join("CURRENT")
}

/// Returns the path of the `LOCK` file inside `db`.
pub fn lock_file_name(db: &Path) -> PathBuf {
    db.join("LOCK")
}

/// Returns the path of temporary file number `number` inside `db`.
pub fn temp_file_name(db: &Path, number: u64) -> PathBuf {
    db.join(format!("{number:06}.dbtmp"))
}

/// Returns the path of the B+Tree page file number `number` inside `db`.
pub fn btree_pages_file_name(db: &Path, number: u64) -> PathBuf {
    db.join(format!("{number:06}.btp"))
}

/// Returns the path of value-log file number `number` inside `db`.
pub fn vlog_file_name(db: &Path, number: u64) -> PathBuf {
    db.join(format!("{number:06}.vlog"))
}

/// Parses a directory entry name into its type and number.
///
/// Returns `None` for files that do not belong to a database directory.
pub fn parse_file_name(name: &str) -> Option<(FileType, u64)> {
    if name == "CURRENT" {
        return Some((FileType::Current, 0));
    }
    if name == "LOCK" {
        return Some((FileType::Lock, 0));
    }
    if let Some(rest) = name.strip_prefix("MANIFEST-") {
        let number: u64 = rest.parse().ok()?;
        return Some((FileType::Descriptor, number));
    }
    let (stem, ext) = name.rsplit_once('.')?;
    let number: u64 = stem.parse().ok()?;
    match ext {
        "log" => Some((FileType::WriteAheadLog, number)),
        "sst" => Some((FileType::Table, number)),
        "dbtmp" => Some((FileType::Temp, number)),
        "btp" => Some((FileType::BtreePages, number)),
        "vlog" => Some((FileType::ValueLog, number)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_names_parse_back() {
        let db = Path::new("/db");
        let cases = vec![
            (log_file_name(db, 7), FileType::WriteAheadLog, 7),
            (table_file_name(db, 42), FileType::Table, 42),
            (descriptor_file_name(db, 3), FileType::Descriptor, 3),
            (temp_file_name(db, 9), FileType::Temp, 9),
            (btree_pages_file_name(db, 1), FileType::BtreePages, 1),
            (vlog_file_name(db, 18), FileType::ValueLog, 18),
        ];
        for (path, ty, number) in cases {
            let name = path.file_name().unwrap().to_str().unwrap();
            assert_eq!(parse_file_name(name), Some((ty, number)));
        }
        assert_eq!(parse_file_name("CURRENT"), Some((FileType::Current, 0)));
        assert_eq!(parse_file_name("LOCK"), Some((FileType::Lock, 0)));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert_eq!(parse_file_name("random.txt"), None);
        assert_eq!(parse_file_name("notanumber.sst"), None);
        assert_eq!(parse_file_name("MANIFEST-abc"), None);
        assert_eq!(parse_file_name(""), None);
    }

    #[test]
    fn numbers_are_zero_padded() {
        let db = Path::new("/db");
        assert!(table_file_name(db, 5)
            .to_str()
            .unwrap()
            .ends_with("000005.sst"));
        assert!(log_file_name(db, 123456)
            .to_str()
            .unwrap()
            .ends_with("123456.log"));
    }
}
