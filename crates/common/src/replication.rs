//! Change-data-capture and WAL-shipping replication primitives.
//!
//! The chassis commits every write through one WAL and one sequence space,
//! so the committed batches already form a total order. This module defines
//! the two ways that order leaves the process:
//!
//! * [`ChangeStream`] — a cursor over committed [`WriteBatch`]es, handed out
//!   by [`Db::stream`](crate::cf::Db::stream). Events arrive in **commit
//!   order**, which is sequence order for engine-sequenced writes; a
//!   pre-sequenced batch (a vlog-GC relocation, a sharded coordinator) may
//!   carry an older sequence and is delivered where it committed.
//! * [`ReplicationFrame`] — the wire encoding of a stream over the RESP
//!   protocol (the server's `SYNC` verb ships these; a follower parses
//!   them). Frames reuse [`RespValue`] so both sides share the existing
//!   codec and its limits.
//!
//! ## Resume contract
//!
//! A consumer resumes by asking for `applied + 1`, where `applied` is the
//! highest `last_seq` it has durably applied. The stream delivers every
//! batch whose `last_seq >= cursor` — so a batch interrupted mid-ship is
//! re-delivered (the consumer skips batches with `last_seq <= applied`),
//! and no committed batch is ever skipped. When the requested history has
//! been reclaimed the stream fails with
//! [`Error::SequenceTruncated`](crate::error::Error), which is fatal for
//! the cursor: the consumer must re-seed from a full copy.

use std::time::Duration;

use crate::batch::{CfId, WriteBatch};
use crate::error::{Error, Result};
use crate::key::SequenceNumber;
use crate::resp::RespValue;

/// One committed write group delivered by a [`ChangeStream`].
#[derive(Debug, Clone)]
pub struct ChangeEvent {
    /// Sequence number of the batch's first record.
    pub first_seq: SequenceNumber,
    /// Sequence number of the batch's last record.
    pub last_seq: SequenceNumber,
    /// The committed batch, with column-family routing intact and any
    /// separated values resolved back inline (a follower re-separates into
    /// its own value log).
    pub batch: WriteBatch,
}

impl ChangeEvent {
    /// Wraps a committed batch, deriving the sequence range from its header.
    pub fn from_batch(batch: WriteBatch) -> ChangeEvent {
        let first_seq = batch.sequence();
        let last_seq = first_seq + u64::from(batch.count()).saturating_sub(1);
        ChangeEvent {
            first_seq,
            last_seq,
            batch,
        }
    }
}

/// A cursor over a store's committed batches.
///
/// Obtained from [`Db::stream`](crate::cf::Db::stream). The stream tails the
/// in-memory commit log when the cursor is near the frontier and replays
/// closed WAL segments when it is behind; the switch is transparent.
pub trait ChangeStream: Send {
    /// Returns the next committed batch at or past the cursor, waiting up
    /// to `timeout` for one to commit. `Ok(None)` means the timeout passed
    /// with the cursor at the frontier — poll again.
    fn next_event(&mut self, timeout: Duration) -> Result<Option<ChangeEvent>>;

    /// The next sequence number this stream will deliver from.
    fn cursor(&self) -> SequenceNumber;

    /// Committed batches the store retains that this cursor has not yet
    /// delivered — the consumer's lag, in batches. Batches already migrated
    /// out of the retained tail (WAL-replay territory) are not counted, so
    /// this is a lower bound while catching up from far behind.
    fn backlog(&self) -> u64;
}

/// One frame of the `SYNC` wire protocol, leader to follower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationFrame {
    /// The leader's column-family catalog: `(id, name)` pairs. Sent when a
    /// stream starts and again before any batch that references a family
    /// the follower has not been told about (create/drop do not ride the
    /// WAL). The follower mirrors the catalog exactly — ids included.
    Catalog(Vec<(CfId, String)>),
    /// One committed batch (its serialized [`WriteBatch`] contents, header
    /// included) plus the leader's current backlog estimate for this cursor.
    Batch {
        /// Sequence number of the batch's last record.
        last_seq: SequenceNumber,
        /// Leader-side batches committed but not yet shipped on this stream.
        backlog: u64,
        /// `WriteBatch::contents()` — parse with `WriteBatch::from_contents`.
        contents: Vec<u8>,
    },
    /// Keep-alive when no batch committed within the ship interval; carries
    /// the leader's frontier so the follower can track its lag while idle.
    Ping {
        /// The leader's last committed sequence number.
        last_seq: SequenceNumber,
        /// Leader-side batches committed but not yet shipped on this stream.
        backlog: u64,
    },
    /// The cursor's history was reclaimed; the stream is dead. Sequences at
    /// or below `floor` are gone — the follower must re-seed.
    Truncated {
        /// The highest reclaimed sequence number.
        floor: SequenceNumber,
    },
}

const FRAME_CATALOG: &[u8] = b"CFS";
const FRAME_BATCH: &[u8] = b"BATCH";
const FRAME_PING: &[u8] = b"PING";
const FRAME_TRUNCATED: &[u8] = b"TRUNCATED";

fn frame_error(msg: impl std::fmt::Display) -> Error {
    Error::invalid_argument(format!("replication frame: {msg}"))
}

fn as_integer(value: &RespValue, what: &str) -> Result<u64> {
    match value {
        RespValue::Integer(i) if *i >= 0 => Ok(*i as u64),
        other => Err(frame_error(format!(
            "{what} must be a non-negative integer, got {}",
            other.type_name()
        ))),
    }
}

impl ReplicationFrame {
    /// Encodes the frame as a RESP array for the wire.
    pub fn encode(&self) -> RespValue {
        match self {
            ReplicationFrame::Catalog(cfs) => {
                let mut items = vec![RespValue::bulk(FRAME_CATALOG.to_vec())];
                for (id, name) in cfs {
                    items.push(RespValue::Integer(*id as i64));
                    items.push(RespValue::bulk(name.as_bytes().to_vec()));
                }
                RespValue::Array(items)
            }
            ReplicationFrame::Batch {
                last_seq,
                backlog,
                contents,
            } => RespValue::Array(vec![
                RespValue::bulk(FRAME_BATCH.to_vec()),
                RespValue::Integer(*last_seq as i64),
                RespValue::Integer(*backlog as i64),
                RespValue::bulk(contents.clone()),
            ]),
            ReplicationFrame::Ping { last_seq, backlog } => RespValue::Array(vec![
                RespValue::bulk(FRAME_PING.to_vec()),
                RespValue::Integer(*last_seq as i64),
                RespValue::Integer(*backlog as i64),
            ]),
            ReplicationFrame::Truncated { floor } => RespValue::Array(vec![
                RespValue::bulk(FRAME_TRUNCATED.to_vec()),
                RespValue::Integer(*floor as i64),
            ]),
        }
    }

    /// Parses a frame off the wire. Server `-ERR` replies arrive as
    /// [`RespValue::Error`] and must be handled by the caller before this.
    pub fn parse(value: RespValue) -> Result<ReplicationFrame> {
        let items = match value {
            RespValue::Array(items) if !items.is_empty() => items,
            other => {
                return Err(frame_error(format!(
                    "expected a non-empty array, got {}",
                    other.type_name()
                )))
            }
        };
        let tag = match &items[0] {
            RespValue::Bulk(bytes) => bytes.as_slice(),
            RespValue::Simple(s) => s.as_bytes(),
            other => {
                return Err(frame_error(format!(
                    "frame tag must be a string, got {}",
                    other.type_name()
                )))
            }
        };
        match tag {
            t if t == FRAME_CATALOG => {
                let pairs = &items[1..];
                if pairs.len() % 2 != 0 {
                    return Err(frame_error("catalog frame has a dangling id"));
                }
                let mut cfs = Vec::with_capacity(pairs.len() / 2);
                for pair in pairs.chunks_exact(2) {
                    let id = as_integer(&pair[0], "catalog cf id")?;
                    let id = CfId::try_from(id)
                        .map_err(|_| frame_error("catalog cf id out of range"))?;
                    let name = match &pair[1] {
                        RespValue::Bulk(bytes) => String::from_utf8(bytes.clone())
                            .map_err(|_| frame_error("catalog cf name is not UTF-8"))?,
                        other => {
                            return Err(frame_error(format!(
                                "catalog cf name must be a bulk string, got {}",
                                other.type_name()
                            )))
                        }
                    };
                    cfs.push((id, name));
                }
                Ok(ReplicationFrame::Catalog(cfs))
            }
            t if t == FRAME_BATCH => {
                if items.len() != 4 {
                    return Err(frame_error("batch frame must have 4 elements"));
                }
                let last_seq = as_integer(&items[1], "batch last_seq")?;
                let backlog = as_integer(&items[2], "batch backlog")?;
                let contents = match &items[3] {
                    RespValue::Bulk(bytes) => bytes.clone(),
                    other => {
                        return Err(frame_error(format!(
                            "batch contents must be a bulk string, got {}",
                            other.type_name()
                        )))
                    }
                };
                Ok(ReplicationFrame::Batch {
                    last_seq,
                    backlog,
                    contents,
                })
            }
            t if t == FRAME_PING => {
                if items.len() != 3 {
                    return Err(frame_error("ping frame must have 3 elements"));
                }
                Ok(ReplicationFrame::Ping {
                    last_seq: as_integer(&items[1], "ping last_seq")?,
                    backlog: as_integer(&items[2], "ping backlog")?,
                })
            }
            t if t == FRAME_TRUNCATED => {
                if items.len() != 2 {
                    return Err(frame_error("truncated frame must have 2 elements"));
                }
                Ok(ReplicationFrame::Truncated {
                    floor: as_integer(&items[1], "truncated floor")?,
                })
            }
            other => Err(frame_error(format!(
                "unknown frame tag {:?}",
                String::from_utf8_lossy(other)
            ))),
        }
    }
}

/// A [`ChangeStream`] consumer loop helper: waits until `deadline` work is
/// done. Kept minimal on purpose — see `pebblesdb-replica` for the full
/// follower.
pub fn poll_interval() -> Duration {
    Duration::from_millis(100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_resp() {
        let frames = vec![
            ReplicationFrame::Catalog(vec![(0, "default".to_string()), (3, "users".to_string())]),
            ReplicationFrame::Catalog(Vec::new()),
            ReplicationFrame::Batch {
                last_seq: 42,
                backlog: 7,
                contents: vec![1, 2, 3, 0, 255],
            },
            ReplicationFrame::Ping {
                last_seq: 99,
                backlog: 0,
            },
            ReplicationFrame::Truncated { floor: 12 },
        ];
        for frame in frames {
            let encoded = frame.encode();
            // Survive an actual wire trip through the shared codec.
            let bytes = encoded.encode();
            let (decoded, used) = crate::resp::decode(&bytes, &crate::resp::RespLimits::default())
                .expect("decode")
                .expect("complete frame");
            assert_eq!(used, bytes.len());
            assert_eq!(ReplicationFrame::parse(decoded).expect("parse"), frame);
        }
    }

    #[test]
    fn parse_rejects_malformed_frames() {
        assert!(ReplicationFrame::parse(RespValue::Integer(1)).is_err());
        assert!(ReplicationFrame::parse(RespValue::Array(vec![])).is_err());
        assert!(
            ReplicationFrame::parse(RespValue::Array(vec![RespValue::bulk(b"WHAT".to_vec())]))
                .is_err()
        );
        // Dangling catalog id.
        assert!(ReplicationFrame::parse(RespValue::Array(vec![
            RespValue::bulk(b"CFS".to_vec()),
            RespValue::Integer(1),
        ]))
        .is_err());
        // Negative sequence.
        assert!(ReplicationFrame::parse(RespValue::Array(vec![
            RespValue::bulk(b"PING".to_vec()),
            RespValue::Integer(-1),
            RespValue::Integer(0),
        ]))
        .is_err());
        // Batch with the wrong arity.
        assert!(ReplicationFrame::parse(RespValue::Array(vec![
            RespValue::bulk(b"BATCH".to_vec()),
            RespValue::Integer(1),
        ]))
        .is_err());
    }

    #[test]
    fn change_event_derives_its_sequence_range() {
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put(b"b", b"2");
        batch.set_sequence(10);
        let event = ChangeEvent::from_batch(batch);
        assert_eq!(event.first_seq, 10);
        assert_eq!(event.last_seq, 11);

        let empty = ChangeEvent::from_batch(WriteBatch::new());
        assert_eq!(empty.first_seq, 0);
        assert_eq!(empty.last_seq, 0);
    }
}
