//! A tiny `--flag [value]` command-line parser for the workspace binaries
//! (the benchmark drivers and `pebblesdb-server`), so none of them needs an
//! external CLI dependency.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Args {
        Args::parse_from(std::env::args().collect())
    }

    /// Parses an explicit argument vector (first element is skipped).
    pub fn parse_from(argv: Vec<String>) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = argv.into_iter().skip(1).peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(name.to_string(), iter.next().expect("peeked"));
                }
                _ => flags.push(name.to_string()),
            }
        }
        Args { values, flags }
    }

    /// Returns the integer value of `name`, or `default`.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Returns the floating-point value of `name`, or `default`.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.values
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Returns the string value of `name`, or `default`.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Returns `true` if `--name` was passed without a value.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}
