//! Value-log primitives for key-value separation (the WiscKey/BVLSM line).
//!
//! Values at or above [`StoreOptions::value_separation_threshold`]
//! (crate::options::StoreOptions) are appended to per-column-family
//! value-log files at commit time; the LSM itself (memtables and sstables)
//! stores a fixed-size [`ValuePointer`] in their place, tagged
//! [`ValueType::ValuePointer`](crate::key::ValueType). This module defines
//! the two on-disk encodings the engines share:
//!
//! * the 20-byte pointer stored in the tree, and
//! * the checksummed `[crc][key_len][val_len][key][value]` record stored in
//!   the `.vlog` file. The record repeats the user key so a garbage-collection
//!   pass can decide liveness (and a human can salvage a vlog) without
//!   consulting the tree.

use crate::coding::{decode_fixed32, decode_fixed64, put_fixed32, put_fixed64};
use crate::crc32c;
use crate::error::{Error, Result};

/// Encoded size of a [`ValuePointer`]: two fixed64s and a fixed32.
pub const VALUE_POINTER_LEN: usize = 20;

/// Size of the `[crc][key_len][val_len]` header that precedes every vlog
/// record's payload.
pub const VLOG_RECORD_HEADER: usize = 12;

/// The fixed-size tree-resident locator of a separated value.
///
/// `len` covers the *whole* record (header + key + value) so a reader can
/// fetch and verify a record with a single ranged read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValuePointer {
    /// Number of the `.vlog` file holding the record.
    pub file_number: u64,
    /// Byte offset of the record header within the file.
    pub offset: u64,
    /// Total record length in bytes (header included).
    pub len: u32,
}

impl ValuePointer {
    /// Encodes the pointer into its fixed 20-byte little-endian form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(VALUE_POINTER_LEN);
        put_fixed64(&mut out, self.file_number);
        put_fixed64(&mut out, self.offset);
        put_fixed32(&mut out, self.len);
        out
    }

    /// Decodes a pointer, rejecting payloads of the wrong size.
    pub fn decode(data: &[u8]) -> Result<ValuePointer> {
        if data.len() != VALUE_POINTER_LEN {
            return Err(Error::corruption(format!(
                "value pointer must be {VALUE_POINTER_LEN} bytes, got {}",
                data.len()
            )));
        }
        Ok(ValuePointer {
            file_number: decode_fixed64(&data[0..8]),
            offset: decode_fixed64(&data[8..16]),
            len: decode_fixed32(&data[16..20]),
        })
    }
}

/// High bit of the `val_len` header word: set when the stored value bytes
/// are compressed with the `pebblesdb-compress` codec. Records written
/// before compression existed always have it clear (their lengths never
/// reach 2 GiB), so old vlog files parse unchanged.
pub const VLOG_VALUE_COMPRESSED: u32 = 1 << 31;

/// Encodes one vlog record: `[crc32c u32][key_len u32][val_len u32][key][value]`.
///
/// The checksum covers the two length words and both payloads, so a torn or
/// misdirected read fails verification rather than returning garbage bytes.
pub fn encode_vlog_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    encode_vlog_record_with(key, value, false)
}

/// [`encode_vlog_record`] with an explicit compressed-value flag;
/// `stored_value` is the bytes as stored (already compressed when
/// `compressed` is set). The flag lives in the `val_len` word's high bit,
/// under the checksum.
pub fn encode_vlog_record_with(key: &[u8], stored_value: &[u8], compressed: bool) -> Vec<u8> {
    debug_assert!(stored_value.len() < VLOG_VALUE_COMPRESSED as usize);
    let mut body = Vec::with_capacity(8 + key.len() + stored_value.len());
    put_fixed32(&mut body, key.len() as u32);
    let mut val_len = stored_value.len() as u32;
    if compressed {
        val_len |= VLOG_VALUE_COMPRESSED;
    }
    put_fixed32(&mut body, val_len);
    body.extend_from_slice(key);
    body.extend_from_slice(stored_value);
    let mut out = Vec::with_capacity(4 + body.len());
    put_fixed32(&mut out, crc32c::mask(crc32c::crc32c(&body)));
    out.extend_from_slice(&body);
    out
}

/// Total encoded size of a record for a `(key, value)` pair.
pub fn vlog_record_len(key_len: usize, value_len: usize) -> usize {
    VLOG_RECORD_HEADER + key_len + value_len
}

/// One decoded vlog record, borrowing its payloads from the file image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlogRecord<'a> {
    /// The user key the record repeats for GC liveness checks.
    pub key: &'a [u8],
    /// The stored value bytes — compressed when [`VlogRecord::compressed`]
    /// is set; the reader must decompress before handing them out.
    pub value: &'a [u8],
    /// Whether `value` is compressed with the workspace codec.
    pub compressed: bool,
}

/// Decodes and checksum-verifies one record that starts at `data[0]`.
pub fn parse_vlog_record(data: &[u8]) -> Result<VlogRecord<'_>> {
    if data.len() < VLOG_RECORD_HEADER {
        return Err(Error::corruption("vlog record shorter than its header"));
    }
    let stored_crc = decode_fixed32(&data[0..4]);
    let key_len = decode_fixed32(&data[4..8]) as usize;
    let val_word = decode_fixed32(&data[8..12]);
    let compressed = val_word & VLOG_VALUE_COMPRESSED != 0;
    let val_len = (val_word & !VLOG_VALUE_COMPRESSED) as usize;
    let total = vlog_record_len(key_len, val_len);
    if data.len() < total {
        return Err(Error::corruption(format!(
            "vlog record truncated: need {total} bytes, have {}",
            data.len()
        )));
    }
    let body = &data[4..total];
    if crc32c::unmask(stored_crc) != crc32c::crc32c(body) {
        return Err(Error::corruption("vlog record checksum mismatch"));
    }
    let key = &data[VLOG_RECORD_HEADER..VLOG_RECORD_HEADER + key_len];
    let value = &data[VLOG_RECORD_HEADER + key_len..total];
    Ok(VlogRecord {
        key,
        value,
        compressed,
    })
}

/// Iterates the records of a whole vlog file image, yielding
/// `(offset, record, record_len)` per record.
///
/// A torn tail (the bytes a crash left behind after the last complete
/// record) ends the iteration silently — exactly like WAL replay — while a
/// checksum mismatch in the middle of the file surfaces as an `Err`.
pub fn iter_vlog_records(data: &[u8]) -> VlogRecordIter<'_> {
    VlogRecordIter { data, offset: 0 }
}

/// Iterator state for [`iter_vlog_records`].
pub struct VlogRecordIter<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> Iterator for VlogRecordIter<'a> {
    type Item = Result<(u64, VlogRecord<'a>, u32)>;

    fn next(&mut self) -> Option<Self::Item> {
        let rest = &self.data[self.offset.min(self.data.len())..];
        if rest.len() < VLOG_RECORD_HEADER {
            return None;
        }
        let key_len = decode_fixed32(&rest[4..8]) as usize;
        let val_len = (decode_fixed32(&rest[8..12]) & !VLOG_VALUE_COMPRESSED) as usize;
        let total = vlog_record_len(key_len, val_len);
        if rest.len() < total {
            // Torn tail: the record's header landed but its payload did not.
            return None;
        }
        let offset = self.offset as u64;
        self.offset += total;
        match parse_vlog_record(rest) {
            Ok(record) => Some(Ok((offset, record, total as u32))),
            Err(err) => Some(Err(err)),
        }
    }
}

/// What a tree lookup found for a key: either the bytes themselves or a
/// pointer that still needs a vlog read to materialise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupValue {
    /// The value bytes were stored inline in the tree.
    Inline(Vec<u8>),
    /// The tree stored a pointer; resolve it through a [`ValueResolver`].
    Pointer(ValuePointer),
}

/// Resolves [`ValuePointer`]s into value bytes (implemented by the engine's
/// vlog reader; handed to iterators so cursors can surface separated values).
pub trait ValueResolver: Send + Sync {
    /// Reads, verifies and returns the value a pointer refers to.
    fn resolve(&self, pointer: &ValuePointer) -> Result<Vec<u8>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_roundtrips_and_rejects_bad_sizes() {
        let pointer = ValuePointer {
            file_number: 42,
            offset: 1 << 33,
            len: 12345,
        };
        let encoded = pointer.encode();
        assert_eq!(encoded.len(), VALUE_POINTER_LEN);
        assert_eq!(ValuePointer::decode(&encoded).unwrap(), pointer);
        assert!(ValuePointer::decode(&encoded[..19]).is_err());
        assert!(ValuePointer::decode(&[0u8; 21]).is_err());
    }

    #[test]
    fn record_roundtrips() {
        let record = encode_vlog_record(b"key", b"some large value");
        assert_eq!(record.len(), vlog_record_len(3, 16));
        let parsed = parse_vlog_record(&record).unwrap();
        assert_eq!(parsed.key, b"key");
        assert_eq!(parsed.value, b"some large value");
        assert!(!parsed.compressed);
    }

    #[test]
    fn compressed_flag_roundtrips_under_the_checksum() {
        let record = encode_vlog_record_with(b"key", b"compressed-bytes", true);
        let parsed = parse_vlog_record(&record).unwrap();
        assert_eq!(parsed.key, b"key");
        assert_eq!(parsed.value, b"compressed-bytes");
        assert!(parsed.compressed);

        // Clearing the flag bit after encoding breaks the CRC: the flag is
        // an integrity-protected part of the record, not advisory.
        let mut tampered = record.clone();
        tampered[11] &= 0x7f; // high byte of the little-endian val_len word
        assert!(parse_vlog_record(&tampered).is_err());
    }

    #[test]
    fn corrupt_record_fails_checksum() {
        let mut record = encode_vlog_record(b"key", b"value-bytes");
        let last = record.len() - 1;
        record[last] ^= 0xff;
        assert!(parse_vlog_record(&record).is_err());
        assert!(parse_vlog_record(&record[..VLOG_RECORD_HEADER - 1]).is_err());
    }

    #[test]
    fn file_iteration_stops_at_torn_tail() {
        let mut file = encode_vlog_record(b"a", b"first");
        let second_offset = file.len() as u64;
        file.extend_from_slice(&encode_vlog_record(b"b", b"second"));
        // A torn third record: header promises more bytes than exist.
        let torn = encode_vlog_record(b"c", b"third-value");
        file.extend_from_slice(&torn[..torn.len() - 4]);

        let records: Vec<_> = iter_vlog_records(&file)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 0);
        assert_eq!(records[0].1.key, b"a");
        assert_eq!(records[1].0, second_offset);
        assert_eq!(records[1].1.value, b"second");
    }

    #[test]
    fn file_iteration_surfaces_mid_file_corruption() {
        let mut file = encode_vlog_record(b"a", b"first");
        file[VLOG_RECORD_HEADER] ^= 0xff; // flip a key byte of record 0
        file.extend_from_slice(&encode_vlog_record(b"b", b"second"));
        let first = iter_vlog_records(&file).next().unwrap();
        assert!(first.is_err());
    }
}
