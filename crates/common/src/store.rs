//! The engine-agnostic key-value store interface.
//!
//! The benchmark harness, the YCSB runner and the application layers operate
//! on `dyn KvStore` so the same workload can be pointed at PebblesDB, the
//! baseline LSM presets or the B+Tree engine — mirroring how the paper runs
//! identical workloads against different stores.

use crate::batch::WriteBatch;
use crate::error::Result;

/// Aggregate statistics a store exposes for the evaluation harness.
///
/// `write_amplification()` is the paper's headline metric: total bytes the
/// store wrote to the device divided by the bytes of user data handed to it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Bytes of user data (keys + values) accepted through the write path.
    pub user_bytes_written: u64,
    /// Total bytes written to storage (WAL + sstables/pages + metadata).
    pub bytes_written: u64,
    /// Total bytes read from storage.
    pub bytes_read: u64,
    /// Bytes currently live on disk (space amplification numerator).
    pub disk_bytes_live: u64,
    /// Number of live data files (sstables or b-tree page files).
    pub num_files: u64,
    /// Number of completed compactions (or checkpoints for the B+Tree).
    pub compactions: u64,
    /// Total wall-clock time spent in compaction, in microseconds.
    pub compaction_micros: u64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: u64,
    /// Bytes written by compactions.
    pub compaction_bytes_written: u64,
    /// Approximate resident memory the store controls (memtables, bloom
    /// filters, block cache), in bytes.
    pub memory_usage_bytes: u64,
    /// Number of get operations served.
    pub gets: u64,
    /// Number of seek operations served.
    pub seeks: u64,
    /// Number of write stalls caused by level-0 back-pressure.
    pub write_stalls: u64,
}

impl StoreStats {
    /// Total write IO divided by user data written.
    ///
    /// Returns 0.0 when no user data has been written yet.
    pub fn write_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            0.0
        } else {
            self.bytes_written as f64 / self.user_bytes_written as f64
        }
    }

    /// Live on-disk bytes divided by user data written.
    pub fn space_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            0.0
        } else {
            self.disk_bytes_live as f64 / self.user_bytes_written as f64
        }
    }
}

/// A key-value store, as defined in section 2.1 of the paper: `put`, `get`,
/// deletion, and iterator-style range queries.
pub trait KvStore: Send + Sync {
    /// Stores `key -> value`, overwriting any previous value.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the latest value for `key`, or `None` if absent or deleted.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Removes `key` from the store.
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Applies every operation in `batch` atomically.
    fn write(&self, batch: WriteBatch) -> Result<()>;

    /// Returns up to `limit` key/value pairs with `start <= key < end`
    /// (an empty `end` means "no upper bound"), in ascending key order.
    ///
    /// This is the paper's `range_query(key1, key2)`, implemented by the
    /// engines as a seek followed by next calls.
    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Flushes in-memory writes to storage and waits for any resulting
    /// urgent compaction to finish. Used between benchmark phases.
    fn flush(&self) -> Result<()>;

    /// Current statistics snapshot.
    fn stats(&self) -> StoreStats;

    /// A short engine name used in benchmark output (for example
    /// `"PebblesDB"` or `"LevelDB"`).
    fn engine_name(&self) -> String;

    /// Sizes (bytes) of the live data files, for the sstable-size
    /// distribution experiment (Table 5.1 of the paper).
    ///
    /// Engines without a file-per-run layout may return an empty vector.
    fn live_file_sizes(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_amplification_is_ratio_of_device_to_user_bytes() {
        let stats = StoreStats {
            user_bytes_written: 100,
            bytes_written: 420,
            ..Default::default()
        };
        assert!((stats.write_amplification() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn amplification_of_empty_store_is_zero() {
        let stats = StoreStats::default();
        assert_eq!(stats.write_amplification(), 0.0);
        assert_eq!(stats.space_amplification(), 0.0);
    }

    #[test]
    fn space_amplification_uses_live_bytes() {
        let stats = StoreStats {
            user_bytes_written: 200,
            disk_bytes_live: 300,
            ..Default::default()
        };
        assert!((stats.space_amplification() - 1.5).abs() < 1e-9);
    }
}
