//! The engine-agnostic key-value store interface.
//!
//! The benchmark harness, the YCSB runner and the application layers operate
//! on `dyn KvStore` so the same workload can be pointed at PebblesDB, the
//! baseline LSM presets or the B+Tree engine — mirroring how the paper runs
//! identical workloads against different stores.
//!
//! The interface is snapshot-aware and cursor-based:
//!
//! * [`KvStore::snapshot`] pins a consistent point-in-time view (a sequence
//!   number, released RAII-style when the handle drops),
//! * every read and write has an options-taking form ([`KvStore::get_opts`],
//!   [`KvStore::put_opts`], [`KvStore::write_opts`], ...) with the plain
//!   methods provided as default-option wrappers, and
//! * [`KvStore::iter`] returns a streaming [`DbIterator`] cursor over user
//!   keys, which the provided [`KvStore::scan`] drives — so range-query
//!   semantics (notably "empty `end` means unbounded") are defined once,
//!   here, and not re-decided per engine.

use crate::batch::WriteBatch;
use crate::error::Result;
use crate::iterator::DbIterator;
use crate::options::{ReadOptions, WriteOptions};
use crate::snapshot::Snapshot;

/// Aggregate statistics a store exposes for the evaluation harness.
///
/// `write_amplification()` is the paper's headline metric: total bytes the
/// store wrote to the device divided by the bytes of user data handed to it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Bytes of user data (keys + values) accepted through the write path.
    pub user_bytes_written: u64,
    /// Total bytes written to storage (WAL + sstables/pages + metadata).
    pub bytes_written: u64,
    /// Total bytes read from storage.
    pub bytes_read: u64,
    /// Bytes currently live on disk (space amplification numerator).
    pub disk_bytes_live: u64,
    /// Number of live data files (sstables or b-tree page files).
    pub num_files: u64,
    /// Number of completed compactions (or checkpoints for the B+Tree).
    pub compactions: u64,
    /// Number of completed memtable flushes (imm -> level 0). Engines
    /// without a flush path report 0.
    pub flushes: u64,
    /// Largest number of compaction jobs ever running at the same instant.
    /// With the per-guard compaction pool this exceeds 1 whenever two
    /// disjoint guard subsets were compacted concurrently.
    pub max_concurrent_compactions: u64,
    /// Total wall-clock time spent in compaction, in microseconds.
    pub compaction_micros: u64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: u64,
    /// Bytes written by compactions.
    pub compaction_bytes_written: u64,
    /// Approximate resident memory the store controls (memtables, bloom
    /// filters, block cache), in bytes.
    pub memory_usage_bytes: u64,
    /// Number of get operations served.
    pub gets: u64,
    /// Number of seek operations served.
    pub seeks: u64,
    /// Number of write stalls caused by level-0 back-pressure.
    pub write_stalls: u64,
    /// Total microseconds writers spent stalled (the duration companion to
    /// `write_stalls`; what the group-commit pipeline is meant to shrink).
    pub write_stall_micros: u64,
    /// Memtable deep copies taken to preserve a live cursor's view. The
    /// concurrent arena memtable makes this structurally zero; the field is
    /// kept so tests can assert the copy-on-write path never returns.
    pub memtable_clones: u64,
    /// Block-cache lookups that were served from memory (sstable data
    /// blocks). Engines without a block cache report 0.
    pub block_cache_hits: u64,
    /// Block-cache lookups that had to read the device.
    pub block_cache_misses: u64,
    /// Table-cache lookups that found the sstable reader already open.
    pub table_cache_hits: u64,
    /// Table-cache lookups that had to open (and parse the footer of) the
    /// sstable.
    pub table_cache_misses: u64,
    /// Number of live column families (1 for single-namespace stores; see
    /// [`Db::cf_stats`](crate::cf::Db::cf_stats) for the per-family
    /// breakdown).
    pub num_column_families: u64,
    /// Number of independent shards serving this store (1 for plain
    /// engines; see [`Db::shard_stats`](crate::cf::Db::shard_stats) for the
    /// per-shard breakdown).
    pub num_shards: u64,
    /// Bytes appended to value-log files by key-value separation (0 when
    /// [`StoreOptions::value_separation_threshold`](crate::options::StoreOptions)
    /// is 0 or the engine has no value log).
    pub vlog_bytes_written: u64,
    /// Value-pointer resolutions served by an already-open vlog reader.
    pub vlog_cache_hits: u64,
    /// Value-pointer resolutions that had to open a vlog reader.
    pub vlog_cache_misses: u64,
    /// Live values relocated out of retiring vlog files by garbage
    /// collection.
    pub vlog_gc_relocations: u64,
    /// Background cleanup operations (obsolete-file deletes, dropped-family
    /// directory removal) that failed and were deferred to a later GC pass.
    pub cleanup_failures: u64,
    /// Uncompressed bytes that ended up stored compressed (sstable
    /// data/index blocks plus separated vlog values; blocks kept raw for
    /// insufficient savings are excluded).
    pub compress_input_bytes: u64,
    /// Compressed bytes stored for those inputs; `output / input` is the
    /// achieved compression ratio.
    pub compress_output_bytes: u64,
    /// Blocks/values attempted but stored raw because compressing them
    /// saved less than the ~12.5% threshold.
    pub compress_skipped_blocks: u64,
    /// Total microseconds read paths spent decompressing blocks and values.
    pub decompress_micros: u64,
    /// Replica stores: the sequence number of the last batch applied from
    /// the leader's change stream (0 on a primary).
    pub replica_applied_seq: u64,
    /// Replica stores: committed leader batches the replica had not yet
    /// applied, as last reported by the leader alongside a shipped batch.
    pub replica_lag_batches: u64,
    /// Change streams (`Db::stream` cursors) currently open on this store.
    pub cdc_streams_active: u64,
    /// Bytes of committed batches handed to change streams (the WAL-shipping
    /// volume, counted once per stream that consumed each batch).
    pub wal_bytes_shipped: u64,
}

impl StoreStats {
    /// Total write IO divided by user data written.
    ///
    /// Returns 0.0 when no user data has been written yet.
    pub fn write_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            0.0
        } else {
            self.bytes_written as f64 / self.user_bytes_written as f64
        }
    }

    /// Live on-disk bytes divided by user data written.
    pub fn space_amplification(&self) -> f64 {
        if self.user_bytes_written == 0 {
            0.0
        } else {
            self.disk_bytes_live as f64 / self.user_bytes_written as f64
        }
    }
}

/// A key-value store, as defined in section 2.1 of the paper: `put`, `get`,
/// deletion, and iterator-style range queries — extended with snapshots and
/// per-operation options.
///
/// # Cursors
///
/// [`KvStore::iter`] returns a [`DbIterator`] over **user** keys: `seek`
/// takes a user key, `key()`/`value()` surface the newest visible version of
/// each live key, and tombstones are never surfaced. The cursor is a
/// consistent view as of its creation (or as of
/// [`ReadOptions::snapshot`] when set); writes issued afterwards are not
/// observed.
///
/// # Snapshots
///
/// [`KvStore::snapshot`] pins the store's current sequence number. Reads
/// issued with that sequence in [`ReadOptions::snapshot`] — most conveniently
/// via [`Snapshot::read_options`] — see exactly the data that was committed
/// when the snapshot was taken, regardless of later writes, flushes or
/// compactions. Dropping the handle releases the pin so compaction can
/// eventually drop the obsolete versions.
pub trait KvStore: Send + Sync {
    /// Stores `key -> value` with explicit write options.
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the value for `key` visible under `opts` (honouring
    /// [`ReadOptions::snapshot`]), or `None` if absent or deleted.
    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Removes `key` from the store with explicit write options.
    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()>;

    /// Applies every operation in `batch` atomically with explicit write
    /// options.
    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()>;

    /// Returns a streaming cursor over the store's user keys.
    ///
    /// The cursor observes the state as of its creation, or as of
    /// [`ReadOptions::snapshot`] when set. Callers drive it lazily with
    /// `seek` / `next` / `prev` instead of receiving a materialised vector.
    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>>;

    /// Pins the current state of the store as a [`Snapshot`].
    fn snapshot(&self) -> Snapshot;

    /// Flushes in-memory writes to storage and waits for any resulting
    /// urgent compaction to finish. Used between benchmark phases.
    fn flush(&self) -> Result<()>;

    /// Current statistics snapshot.
    fn stats(&self) -> StoreStats;

    /// A short engine name used in benchmark output (for example
    /// `"PebblesDB"` or `"LevelDB"`).
    fn engine_name(&self) -> String;

    /// Stores `key -> value`, overwriting any previous value.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.put_opts(&WriteOptions::default(), key, value)
    }

    /// Returns the latest value for `key`, or `None` if absent or deleted.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_opts(&ReadOptions::default(), key)
    }

    /// Removes `key` from the store.
    fn delete(&self, key: &[u8]) -> Result<()> {
        self.delete_opts(&WriteOptions::default(), key)
    }

    /// Applies every operation in `batch` atomically.
    fn write(&self, batch: WriteBatch) -> Result<()> {
        self.write_opts(&WriteOptions::default(), batch)
    }

    /// Returns up to `limit` key/value pairs with `start <= key < end`, in
    /// ascending key order. An empty `end` means "no upper bound" — this is
    /// the one place that convention is defined; engines do not override
    /// `scan`.
    ///
    /// This is the paper's `range_query(key1, key2)`, implemented as a seek
    /// followed by next calls on the [`KvStore::iter`] cursor.
    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_opts(&ReadOptions::default(), start, end, limit)
    }

    /// [`KvStore::scan`] with explicit read options (e.g. a snapshot).
    fn scan_opts(
        &self,
        opts: &ReadOptions,
        start: &[u8],
        end: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut iter = self.iter(opts)?;
        iter.seek(start);
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        // One key buffer serves each entry: `iter.key()` — a virtual call
        // through the pin/user/merge iterator stack — is read exactly once
        // per entry into the buffer, which serves the bound check and is
        // then *moved* into the result, so the key bytes are copied once
        // and never re-copied on acceptance.
        let mut key_buf: Vec<u8> = Vec::new();
        while iter.valid() && out.len() < limit {
            key_buf.clear();
            key_buf.extend_from_slice(iter.key());
            if !end.is_empty() && key_buf.as_slice() >= end {
                break;
            }
            out.push((std::mem::take(&mut key_buf), iter.value().to_vec()));
            iter.next();
        }
        // A cursor that hit corruption or an IO error stops early; surface
        // that instead of returning a silently truncated result.
        iter.status()?;
        Ok(out)
    }

    /// Sizes (bytes) of the live data files, for the sstable-size
    /// distribution experiment (Table 5.1 of the paper).
    ///
    /// Engines without a file-per-run layout may return an empty vector.
    fn live_file_sizes(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotList;
    use crate::user_iter::UserEntriesIterator;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    #[test]
    fn write_amplification_is_ratio_of_device_to_user_bytes() {
        let stats = StoreStats {
            user_bytes_written: 100,
            bytes_written: 420,
            ..Default::default()
        };
        assert!((stats.write_amplification() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn amplification_of_empty_store_is_zero() {
        let stats = StoreStats::default();
        assert_eq!(stats.write_amplification(), 0.0);
        assert_eq!(stats.space_amplification(), 0.0);
    }

    #[test]
    fn space_amplification_uses_live_bytes() {
        let stats = StoreStats {
            user_bytes_written: 200,
            disk_bytes_live: 300,
            ..Default::default()
        };
        assert!((stats.space_amplification() - 1.5).abs() < 1e-9);
    }

    /// A minimal store exercising the provided-method defaults.
    #[derive(Default)]
    struct TinyStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        snapshots: Arc<SnapshotList>,
    }

    impl KvStore for TinyStore {
        fn put_opts(&self, _opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
            self.map
                .lock()
                .unwrap()
                .insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get_opts(&self, _opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().unwrap().get(key).cloned())
        }
        fn delete_opts(&self, _opts: &WriteOptions, key: &[u8]) -> Result<()> {
            self.map.lock().unwrap().remove(key);
            Ok(())
        }
        fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
            for record in batch.iter() {
                let record = record?;
                match record.value_type {
                    crate::ValueType::Value => self.put_opts(opts, record.key, record.value)?,
                    crate::ValueType::Deletion => self.delete_opts(opts, record.key)?,
                    crate::ValueType::ValuePointer => {
                        return Err(crate::Error::invalid_argument(
                            "value-pointer records are engine-internal",
                        ))
                    }
                }
            }
            Ok(())
        }
        fn iter(&self, _opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
            let entries: Vec<_> = self
                .map
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            Ok(Box::new(UserEntriesIterator::new(entries)))
        }
        fn snapshot(&self) -> Snapshot {
            self.snapshots.acquire(0)
        }
        fn flush(&self) -> Result<()> {
            Ok(())
        }
        fn stats(&self) -> StoreStats {
            StoreStats::default()
        }
        fn engine_name(&self) -> String {
            "TinyStore".to_string()
        }
    }

    #[test]
    fn provided_methods_wrap_the_opts_forms() {
        let store = TinyStore::default();
        store.put(b"a", b"1").unwrap();
        store.put(b"b", b"2").unwrap();
        store.put(b"c", b"3").unwrap();
        assert_eq!(store.get(b"b").unwrap(), Some(b"2".to_vec()));
        store.delete(b"b").unwrap();
        assert_eq!(store.get(b"b").unwrap(), None);

        let mut batch = WriteBatch::new();
        batch.put(b"d", b"4");
        batch.delete(b"a");
        store.write(batch).unwrap();
        assert_eq!(store.get(b"d").unwrap(), Some(b"4".to_vec()));
        assert_eq!(store.get(b"a").unwrap(), None);
    }

    #[test]
    fn default_scan_enforces_empty_end_is_unbounded() {
        let store = TinyStore::default();
        for i in 0..10u8 {
            store.put(&[b'k', b'0' + i], &[i]).unwrap();
        }
        // Bounded scan: [k2, k5).
        let got = store.scan(b"k2", b"k5", 100).unwrap();
        assert_eq!(
            got.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![b"k2".to_vec(), b"k3".to_vec(), b"k4".to_vec()]
        );
        // Empty end: unbounded.
        let got = store.scan(b"k7", &[], 100).unwrap();
        assert_eq!(got.len(), 3);
        // Limit is respected.
        let got = store.scan(b"", &[], 4).unwrap();
        assert_eq!(got.len(), 4);
        // Zero limit yields nothing.
        assert!(store.scan(b"", &[], 0).unwrap().is_empty());
    }
}
