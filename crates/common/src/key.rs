//! Internal key encoding and ordering.
//!
//! Every engine in the workspace stores *internal keys*: the user key
//! followed by an eight-byte trailer packing a 56-bit sequence number and an
//! 8-bit value type. Internal keys order by user key ascending, then sequence
//! number descending (newest first), then value type descending — exactly the
//! LevelDB ordering the paper's implementation inherits.

use std::cmp::Ordering;
use std::fmt;

use crate::coding::{decode_fixed64, put_fixed64};

/// Monotonically increasing version number assigned to every write.
pub type SequenceNumber = u64;

/// The largest sequence number that can be packed into the trailer.
pub const MAX_SEQUENCE_NUMBER: SequenceNumber = (1 << 56) - 1;

/// The kind of record an internal key refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// A tombstone: the key was deleted at this sequence number.
    Deletion = 0,
    /// A regular value.
    Value = 1,
    /// An indirect value: the record's payload is an encoded
    /// [`ValuePointer`](crate::vlog::ValuePointer) into a value-log file,
    /// not the user's bytes. Written by the engines' key-value separation
    /// path; never constructed by user batches.
    ValuePointer = 2,
}

impl ValueType {
    /// Decodes a value type from its on-disk tag.
    pub fn from_u8(tag: u8) -> Option<ValueType> {
        match tag {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            2 => Some(ValueType::ValuePointer),
            _ => None,
        }
    }
}

/// The value type used when constructing seek targets.
///
/// Because sequence numbers sort in decreasing order inside the trailer, the
/// highest-tag value type is used so a lookup key positions *before* any
/// entry with the same user key and sequence number.
pub const VALUE_TYPE_FOR_SEEK: ValueType = ValueType::ValuePointer;

/// Packs a sequence number and a value type into the 8-byte trailer.
pub fn pack_sequence_and_type(seq: SequenceNumber, value_type: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE_NUMBER, "sequence number overflow");
    (seq << 8) | value_type as u64
}

/// Appends the encoded internal key for `(user_key, seq, value_type)` to `dst`.
pub fn append_internal_key(
    dst: &mut Vec<u8>,
    user_key: &[u8],
    seq: SequenceNumber,
    value_type: ValueType,
) {
    dst.extend_from_slice(user_key);
    put_fixed64(dst, pack_sequence_and_type(seq, value_type));
}

/// Builds the encoded internal key for `(user_key, seq, value_type)`.
pub fn encode_internal_key(user_key: &[u8], seq: SequenceNumber, value_type: ValueType) -> Vec<u8> {
    let mut out = Vec::with_capacity(user_key.len() + 8);
    append_internal_key(&mut out, user_key, seq, value_type);
    out
}

/// Extracts the user-key portion of an encoded internal key.
///
/// # Panics
///
/// Panics if `internal_key` is shorter than the 8-byte trailer.
pub fn extract_user_key(internal_key: &[u8]) -> &[u8] {
    assert!(internal_key.len() >= 8, "internal key too short");
    &internal_key[..internal_key.len() - 8]
}

/// A borrowed, decoded view of an internal key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedInternalKey<'a> {
    /// The user-supplied key bytes.
    pub user_key: &'a [u8],
    /// The sequence number of the write.
    pub sequence: SequenceNumber,
    /// Whether the record is a value or a tombstone.
    pub value_type: ValueType,
}

/// Parses an encoded internal key, returning `None` if it is malformed.
pub fn parse_internal_key(internal_key: &[u8]) -> Option<ParsedInternalKey<'_>> {
    if internal_key.len() < 8 {
        return None;
    }
    let split = internal_key.len() - 8;
    let trailer = decode_fixed64(&internal_key[split..]);
    let value_type = ValueType::from_u8((trailer & 0xff) as u8)?;
    Some(ParsedInternalKey {
        user_key: &internal_key[..split],
        sequence: trailer >> 8,
        value_type,
    })
}

/// Compares two encoded internal keys.
///
/// Ordering: user key ascending, then trailer (sequence, type) descending, so
/// that for equal user keys the newest record comes first.
pub fn compare_internal_keys(a: &[u8], b: &[u8]) -> Ordering {
    let ua = extract_user_key(a);
    let ub = extract_user_key(b);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = decode_fixed64(&a[a.len() - 8..]);
            let tb = decode_fixed64(&b[b.len() - 8..]);
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// An owned encoded internal key.
///
/// The engines store these in file metadata (smallest/largest key per
/// sstable) and in guard metadata; ordering follows
/// [`compare_internal_keys`].
#[derive(Clone, PartialEq, Eq, Default)]
pub struct InternalKey {
    encoded: Vec<u8>,
}

impl InternalKey {
    /// Builds an internal key from its parts.
    pub fn new(user_key: &[u8], seq: SequenceNumber, value_type: ValueType) -> Self {
        InternalKey {
            encoded: encode_internal_key(user_key, seq, value_type),
        }
    }

    /// Wraps an already-encoded internal key.
    pub fn from_encoded(encoded: Vec<u8>) -> Self {
        debug_assert!(encoded.is_empty() || encoded.len() >= 8);
        InternalKey { encoded }
    }

    /// Builds the smallest possible internal key for `user_key`
    /// (useful as an upper bound when partitioning by user key).
    pub fn min_possible_for_user_key(user_key: &[u8]) -> Self {
        InternalKey::new(user_key, MAX_SEQUENCE_NUMBER, VALUE_TYPE_FOR_SEEK)
    }

    /// Returns the encoded representation.
    pub fn encoded(&self) -> &[u8] {
        &self.encoded
    }

    /// Consumes the key, returning its encoded representation.
    pub fn into_encoded(self) -> Vec<u8> {
        self.encoded
    }

    /// Returns the user-key portion.
    pub fn user_key(&self) -> &[u8] {
        extract_user_key(&self.encoded)
    }

    /// Returns `true` if no key has been set.
    pub fn is_empty(&self) -> bool {
        self.encoded.is_empty()
    }

    /// Returns the decoded sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        parse_internal_key(&self.encoded)
            .map(|parsed| parsed.sequence)
            .unwrap_or(0)
    }
}

impl fmt::Debug for InternalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match parse_internal_key(&self.encoded) {
            Some(parsed) => write!(
                f,
                "InternalKey({:?} @ {} : {:?})",
                String::from_utf8_lossy(parsed.user_key),
                parsed.sequence,
                parsed.value_type
            ),
            None => write!(f, "InternalKey(<empty or malformed>)"),
        }
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> Ordering {
        compare_internal_keys(&self.encoded, &other.encoded)
    }
}

/// A lookup key: the internal key used as a seek target for a `get()`.
///
/// Positions at or before every record for `user_key` visible at `snapshot`.
#[derive(Debug, Clone)]
pub struct LookupKey {
    internal_key: Vec<u8>,
    user_key_len: usize,
}

impl LookupKey {
    /// Creates a lookup key for `user_key` at `snapshot`.
    pub fn new(user_key: &[u8], snapshot: SequenceNumber) -> Self {
        LookupKey {
            internal_key: encode_internal_key(user_key, snapshot, VALUE_TYPE_FOR_SEEK),
            user_key_len: user_key.len(),
        }
    }

    /// The encoded internal key to seek with.
    pub fn internal_key(&self) -> &[u8] {
        &self.internal_key
    }

    /// The raw user key.
    pub fn user_key(&self) -> &[u8] {
        &self.internal_key[..self.user_key_len]
    }

    /// The snapshot sequence number of this lookup.
    pub fn sequence(&self) -> SequenceNumber {
        decode_fixed64(&self.internal_key[self.user_key_len..]) >> 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_and_parse_roundtrip() {
        let key = encode_internal_key(b"user", 99, ValueType::Value);
        let parsed = parse_internal_key(&key).unwrap();
        assert_eq!(parsed.user_key, b"user");
        assert_eq!(parsed.sequence, 99);
        assert_eq!(parsed.value_type, ValueType::Value);
    }

    #[test]
    fn tombstones_parse() {
        let key = encode_internal_key(b"gone", 7, ValueType::Deletion);
        let parsed = parse_internal_key(&key).unwrap();
        assert_eq!(parsed.value_type, ValueType::Deletion);
    }

    #[test]
    fn malformed_keys_are_rejected() {
        assert!(parse_internal_key(b"short").is_none());
        let mut key = encode_internal_key(b"k", 1, ValueType::Value);
        let last = key.len() - 8;
        key[last] = 99; // Invalid value-type tag.
        assert!(parse_internal_key(&key).is_none());
    }

    #[test]
    fn ordering_is_user_key_then_descending_sequence() {
        let a = encode_internal_key(b"aaa", 5, ValueType::Value);
        let b = encode_internal_key(b"bbb", 1, ValueType::Value);
        assert_eq!(compare_internal_keys(&a, &b), Ordering::Less);

        let newer = encode_internal_key(b"same", 10, ValueType::Value);
        let older = encode_internal_key(b"same", 2, ValueType::Value);
        assert_eq!(compare_internal_keys(&newer, &older), Ordering::Less);
        assert_eq!(compare_internal_keys(&older, &newer), Ordering::Greater);
    }

    #[test]
    fn deletion_sorts_after_value_at_same_sequence() {
        // Trailer orders descending; Value (1) > Deletion (0), so Value first.
        let value = encode_internal_key(b"k", 5, ValueType::Value);
        let deletion = encode_internal_key(b"k", 5, ValueType::Deletion);
        assert_eq!(compare_internal_keys(&value, &deletion), Ordering::Less);
    }

    #[test]
    fn lookup_key_exposes_parts() {
        let lk = LookupKey::new(b"needle", 1234);
        assert_eq!(lk.user_key(), b"needle");
        assert_eq!(lk.sequence(), 1234);
        let parsed = parse_internal_key(lk.internal_key()).unwrap();
        assert_eq!(parsed.user_key, b"needle");
        assert_eq!(parsed.sequence, 1234);
    }

    #[test]
    fn internal_key_debug_is_readable() {
        let key = InternalKey::new(b"abc", 3, ValueType::Value);
        let dbg = format!("{key:?}");
        assert!(dbg.contains("abc"));
        assert!(dbg.contains('3'));
    }

    #[test]
    fn min_possible_sorts_before_all_records_of_key() {
        let probe = InternalKey::min_possible_for_user_key(b"k");
        let record = InternalKey::new(b"k", 500, ValueType::Value);
        assert!(probe < record);
    }

    #[test]
    fn seek_type_is_the_highest_tag() {
        // A lookup key at sequence `s` must position at-or-before every
        // record with sequence <= s, including pointer records; that only
        // holds if the seek type is the numerically largest tag.
        let lookup = LookupKey::new(b"k", 5);
        for value_type in [
            ValueType::Deletion,
            ValueType::Value,
            ValueType::ValuePointer,
        ] {
            let record = encode_internal_key(b"k", 5, value_type);
            assert_ne!(
                compare_internal_keys(lookup.internal_key(), &record),
                Ordering::Greater,
                "lookup must not sort after a same-sequence {value_type:?} record"
            );
        }
    }

    #[test]
    fn pointer_records_roundtrip() {
        let key = encode_internal_key(b"big", 42, ValueType::ValuePointer);
        let parsed = parse_internal_key(&key).unwrap();
        assert_eq!(parsed.value_type, ValueType::ValuePointer);
        assert_eq!(ValueType::from_u8(2), Some(ValueType::ValuePointer));
    }
}
