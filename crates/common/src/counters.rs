//! Atomic operation counters shared by the storage engines.
//!
//! Both the baseline LSM engine and the FLSM engine update these counters on
//! their hot paths; [`StoreStats`](crate::StoreStats) snapshots are assembled
//! from them plus the environment's IO statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative engine-side counters (user bytes, compaction effort, stalls).
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Bytes of user data (keys + values) accepted by the write path.
    pub user_bytes_written: AtomicU64,
    /// Number of get operations.
    pub gets: AtomicU64,
    /// Number of seek / range-query operations.
    pub seeks: AtomicU64,
    /// Number of write stalls (level-0 slowdown or stop).
    pub write_stalls: AtomicU64,
    /// Total microseconds writers spent stalled (slowdown sleeps plus waits
    /// for memtable flushes and level-0 back-pressure).
    pub write_stall_micros: AtomicU64,
    /// Memtable deep copies taken to preserve a live cursor's view.
    ///
    /// The concurrent arena memtable removed the only code path that cloned
    /// a memtable (`Arc::make_mut` copy-on-write); this counter exists so
    /// tests can assert the count stays at zero. Any future code path that
    /// reintroduces a clone must increment it via
    /// [`EngineCounters::record_memtable_clone`].
    pub memtable_clones: AtomicU64,
    /// Number of completed compactions (including memtable flushes).
    pub compactions: AtomicU64,
    /// Total microseconds spent compacting.
    pub compaction_micros: AtomicU64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: AtomicU64,
    /// Bytes written by compactions.
    pub compaction_bytes_written: AtomicU64,
}

impl EngineCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EngineCounters::default()
    }

    /// Adds to the user-byte counter.
    pub fn add_user_bytes(&self, n: u64) {
        self.user_bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one get.
    pub fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one seek.
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write stall that lasted `micros` microseconds.
    pub fn record_stall(&self, micros: u64) {
        self.write_stalls.fetch_add(1, Ordering::Relaxed);
        self.write_stall_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one memtable deep copy.
    pub fn record_memtable_clone(&self) {
        self.memtable_clones.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished compaction.
    pub fn record_compaction(&self, micros: u64, bytes_read: u64, bytes_written: u64) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compaction_micros.fetch_add(micros, Ordering::Relaxed);
        self.compaction_bytes_read
            .fetch_add(bytes_read, Ordering::Relaxed);
        self.compaction_bytes_written
            .fetch_add(bytes_written, Ordering::Relaxed);
    }

    /// Loads a counter with relaxed ordering.
    pub fn load(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let counters = EngineCounters::new();
        counters.add_user_bytes(100);
        counters.add_user_bytes(20);
        counters.record_get();
        counters.record_seek();
        counters.record_stall(40);
        counters.record_stall(2);
        counters.record_compaction(500, 1000, 2000);
        counters.record_compaction(250, 10, 20);

        assert_eq!(EngineCounters::load(&counters.user_bytes_written), 120);
        assert_eq!(EngineCounters::load(&counters.gets), 1);
        assert_eq!(EngineCounters::load(&counters.seeks), 1);
        assert_eq!(EngineCounters::load(&counters.write_stalls), 2);
        assert_eq!(EngineCounters::load(&counters.write_stall_micros), 42);
        assert_eq!(EngineCounters::load(&counters.memtable_clones), 0);
        assert_eq!(EngineCounters::load(&counters.compactions), 2);
        assert_eq!(EngineCounters::load(&counters.compaction_micros), 750);
        assert_eq!(EngineCounters::load(&counters.compaction_bytes_read), 1010);
        assert_eq!(
            EngineCounters::load(&counters.compaction_bytes_written),
            2020
        );
    }

    #[test]
    fn memtable_clone_counter_increments() {
        let counters = EngineCounters::new();
        counters.record_memtable_clone();
        assert_eq!(EngineCounters::load(&counters.memtable_clones), 1);
    }
}
