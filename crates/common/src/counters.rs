//! Atomic operation counters shared by the storage engines.
//!
//! Both the baseline LSM engine and the FLSM engine update these counters on
//! their hot paths; [`StoreStats`](crate::StoreStats) snapshots are assembled
//! from them plus the environment's IO statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative engine-side counters (user bytes, compaction effort, stalls).
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Bytes of user data (keys + values) accepted by the write path.
    pub user_bytes_written: AtomicU64,
    /// Number of get operations.
    pub gets: AtomicU64,
    /// Number of seek / range-query operations.
    pub seeks: AtomicU64,
    /// Number of write stalls (level-0 slowdown or stop).
    pub write_stalls: AtomicU64,
    /// Total microseconds writers spent stalled (slowdown sleeps plus waits
    /// for memtable flushes and level-0 back-pressure).
    pub write_stall_micros: AtomicU64,
    /// Memtable deep copies taken to preserve a live cursor's view.
    ///
    /// The concurrent arena memtable removed the only code path that cloned
    /// a memtable (`Arc::make_mut` copy-on-write); this counter exists so
    /// tests can assert the count stays at zero. Any future code path that
    /// reintroduces a clone must increment it via
    /// [`EngineCounters::record_memtable_clone`].
    pub memtable_clones: AtomicU64,
    /// Number of completed compactions (including memtable flushes).
    pub compactions: AtomicU64,
    /// Number of completed memtable flushes (imm -> level 0).
    pub flushes: AtomicU64,
    /// Total microseconds spent compacting.
    pub compaction_micros: AtomicU64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: AtomicU64,
    /// Bytes written by compactions.
    pub compaction_bytes_written: AtomicU64,
    /// Level-compaction jobs currently running (claimed but not committed).
    pub active_compactions: AtomicU64,
    /// High-water mark of `active_compactions`: the largest number of
    /// compaction jobs ever observed running at the same instant. The
    /// multi-threaded per-guard compaction pool must drive this above 1.
    pub max_concurrent_compactions: AtomicU64,
    /// Bytes appended to value-log files by key-value separation.
    pub vlog_bytes_written: AtomicU64,
    /// Value-pointer resolutions served by a cached vlog reader.
    pub vlog_cache_hits: AtomicU64,
    /// Value-pointer resolutions that had to open a vlog reader.
    pub vlog_cache_misses: AtomicU64,
    /// Live values relocated by value-log garbage collection.
    pub vlog_gc_relocations: AtomicU64,
    /// Background cleanup operations (obsolete-file deletes, dropped-family
    /// directory removal) that failed; the work is deferred, not lost, so
    /// this counter is how the failures stay observable.
    pub cleanup_failures: AtomicU64,
}

/// Block/value compression counters, shared through
/// [`StoreOptions::compression_stats`](crate::StoreOptions) by every
/// component that compresses or decompresses on behalf of one store (table
/// builders, block readers, vlog appenders and resolvers).
#[derive(Debug, Default)]
pub struct CompressionStats {
    /// Bytes handed to the compressor that ended up stored compressed
    /// (blocks kept raw for insufficient savings are not counted here).
    pub input_bytes: AtomicU64,
    /// Compressed bytes actually stored for those inputs.
    pub output_bytes: AtomicU64,
    /// Blocks / values attempted but stored raw because compression saved
    /// less than the ~12.5% threshold.
    pub skipped_blocks: AtomicU64,
    /// Total microseconds spent decompressing on read paths.
    pub decompress_micros: AtomicU64,
}

impl CompressionStats {
    /// Records one block stored compressed: `input` bytes in, `output`
    /// bytes stored.
    pub fn record_compressed(&self, input: u64, output: u64) {
        self.input_bytes.fetch_add(input, Ordering::Relaxed);
        self.output_bytes.fetch_add(output, Ordering::Relaxed);
    }

    /// Records one block attempted but stored raw.
    pub fn record_skipped(&self) {
        self.skipped_blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records time spent decompressing on a read path.
    pub fn add_decompress_micros(&self, micros: u64) {
        self.decompress_micros.fetch_add(micros, Ordering::Relaxed);
    }
}

impl EngineCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EngineCounters::default()
    }

    /// Adds to the user-byte counter.
    pub fn add_user_bytes(&self, n: u64) {
        self.user_bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one get.
    pub fn record_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one seek.
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write stall that lasted `micros` microseconds.
    pub fn record_stall(&self, micros: u64) {
        self.write_stalls.fetch_add(1, Ordering::Relaxed);
        self.write_stall_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one memtable deep copy.
    pub fn record_memtable_clone(&self) {
        self.memtable_clones.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed memtable flush.
    pub fn record_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a compaction job as running and returns how many are now
    /// in flight, updating the concurrency high-water mark.
    pub fn record_compaction_start(&self) -> u64 {
        let now = self.active_compactions.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_concurrent_compactions
            .fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Marks a compaction job as finished (committed or failed).
    pub fn record_compaction_end(&self) {
        self.active_compactions.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records bytes appended to a value-log file.
    pub fn add_vlog_bytes(&self, n: u64) {
        self.vlog_bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one value-pointer resolution (`hit` = reader already open).
    pub fn record_vlog_resolution(&self, hit: bool) {
        if hit {
            self.vlog_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.vlog_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one live value relocated by vlog garbage collection.
    pub fn record_vlog_relocation(&self) {
        self.vlog_gc_relocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one failed (deferred) background cleanup operation.
    pub fn record_cleanup_failure(&self) {
        self.cleanup_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished compaction.
    pub fn record_compaction(&self, micros: u64, bytes_read: u64, bytes_written: u64) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compaction_micros.fetch_add(micros, Ordering::Relaxed);
        self.compaction_bytes_read
            .fetch_add(bytes_read, Ordering::Relaxed);
        self.compaction_bytes_written
            .fetch_add(bytes_written, Ordering::Relaxed);
    }

    /// Loads a counter with relaxed ordering.
    pub fn load(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let counters = EngineCounters::new();
        counters.add_user_bytes(100);
        counters.add_user_bytes(20);
        counters.record_get();
        counters.record_seek();
        counters.record_stall(40);
        counters.record_stall(2);
        counters.record_compaction(500, 1000, 2000);
        counters.record_compaction(250, 10, 20);

        assert_eq!(EngineCounters::load(&counters.user_bytes_written), 120);
        assert_eq!(EngineCounters::load(&counters.gets), 1);
        assert_eq!(EngineCounters::load(&counters.seeks), 1);
        assert_eq!(EngineCounters::load(&counters.write_stalls), 2);
        assert_eq!(EngineCounters::load(&counters.write_stall_micros), 42);
        assert_eq!(EngineCounters::load(&counters.memtable_clones), 0);
        assert_eq!(EngineCounters::load(&counters.compactions), 2);
        assert_eq!(EngineCounters::load(&counters.compaction_micros), 750);
        counters.record_flush();
        assert_eq!(EngineCounters::load(&counters.flushes), 1);
        assert_eq!(EngineCounters::load(&counters.compaction_bytes_read), 1010);
        assert_eq!(
            EngineCounters::load(&counters.compaction_bytes_written),
            2020
        );
    }

    #[test]
    fn compaction_concurrency_high_water_mark_sticks() {
        let counters = EngineCounters::new();
        assert_eq!(counters.record_compaction_start(), 1);
        assert_eq!(counters.record_compaction_start(), 2);
        assert_eq!(counters.record_compaction_start(), 3);
        counters.record_compaction_end();
        counters.record_compaction_end();
        // A later lone job does not lower the recorded maximum.
        assert_eq!(counters.record_compaction_start(), 2);
        counters.record_compaction_end();
        counters.record_compaction_end();
        assert_eq!(EngineCounters::load(&counters.active_compactions), 0);
        assert_eq!(
            EngineCounters::load(&counters.max_concurrent_compactions),
            3
        );
    }

    #[test]
    fn memtable_clone_counter_increments() {
        let counters = EngineCounters::new();
        counters.record_memtable_clone();
        assert_eq!(EngineCounters::load(&counters.memtable_clones), 1);
    }
}
