//! Yahoo Cloud Serving Benchmark (YCSB) workload generator and runner.
//!
//! The paper evaluates PebblesDB with the six core YCSB workloads (Table 5.3
//! and Figure 5.5) and through the HyperDex / MongoDB application layers
//! (Figure 5.6). This crate reimplements the parts of YCSB those experiments
//! need:
//!
//! * the request-distribution generators (uniform, zipfian, scrambled
//!   zipfian, latest),
//! * the core workload definitions Load A, A–D, Load E, E and F with the
//!   paper's operation mixes, and
//! * a multi-threaded runner that drives any [`KvStore`] and reports
//!   throughput and latency percentiles.

pub mod generators;
pub mod histogram;
pub mod runner;
pub mod workload;

pub use generators::{
    Generator, LatestGenerator, ScrambledZipfianGenerator, UniformGenerator, ZipfianGenerator,
};
pub use histogram::Histogram;
pub use runner::{run_workload, RunReport};
pub use workload::{CoreWorkload, Operation, WorkloadKind};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_presets_match_the_paper_table() {
        // Table 5.3: A = 50/50 read/update, B = 95/5, C = 100% reads,
        // D = 95/5 with latest distribution, E = 95% scans / 5% inserts,
        // F = 50% reads / 50% read-modify-writes.
        let a = CoreWorkload::preset(WorkloadKind::A, 1000);
        assert!((a.read_proportion - 0.5).abs() < 1e-9);
        assert!((a.update_proportion - 0.5).abs() < 1e-9);

        let b = CoreWorkload::preset(WorkloadKind::B, 1000);
        assert!((b.read_proportion - 0.95).abs() < 1e-9);

        let c = CoreWorkload::preset(WorkloadKind::C, 1000);
        assert!((c.read_proportion - 1.0).abs() < 1e-9);

        let d = CoreWorkload::preset(WorkloadKind::D, 1000);
        assert!((d.read_proportion - 0.95).abs() < 1e-9);
        assert!((d.insert_proportion - 0.05).abs() < 1e-9);

        let e = CoreWorkload::preset(WorkloadKind::E, 1000);
        assert!((e.scan_proportion - 0.95).abs() < 1e-9);
        assert!((e.insert_proportion - 0.05).abs() < 1e-9);

        let f = CoreWorkload::preset(WorkloadKind::F, 1000);
        assert!((f.read_proportion - 0.5).abs() < 1e-9);
        assert!((f.read_modify_write_proportion - 0.5).abs() < 1e-9);

        let load_a = CoreWorkload::preset(WorkloadKind::LoadA, 1000);
        assert!((load_a.insert_proportion - 1.0).abs() < 1e-9);
        let load_e = CoreWorkload::preset(WorkloadKind::LoadE, 1000);
        assert!((load_e.insert_proportion - 1.0).abs() < 1e-9);
    }

    #[test]
    fn operations_are_generated_in_roughly_the_requested_mix() {
        let mut workload = CoreWorkload::preset(WorkloadKind::B, 10_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut reads = 0usize;
        let mut writes = 0usize;
        let n = 20_000;
        for _ in 0..n {
            match workload.next_operation(&mut rng) {
                Operation::Read(_) => reads += 1,
                Operation::Update(_, _) | Operation::Insert(_, _) => writes += 1,
                _ => {}
            }
        }
        let read_fraction = reads as f64 / n as f64;
        assert!(
            (read_fraction - 0.95).abs() < 0.02,
            "read fraction {read_fraction}"
        );
        assert!(writes > 0);
    }

    use rand::SeedableRng;
}
