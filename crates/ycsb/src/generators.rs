//! Request-distribution generators used by the YCSB core workloads.

use rand::Rng;

use pebblesdb_common::hash::hash_seeded;

/// A generator of item indices in `[0, item_count)`.
pub trait Generator: Send {
    /// Draws the next item index.
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64;
    /// Informs the generator that the item space grew (after inserts).
    fn set_item_count(&mut self, item_count: u64);
}

/// Uniformly random item selection.
#[derive(Debug, Clone)]
pub struct UniformGenerator {
    item_count: u64,
}

impl UniformGenerator {
    /// Creates a generator over `item_count` items.
    pub fn new(item_count: u64) -> Self {
        UniformGenerator {
            item_count: item_count.max(1),
        }
    }
}

impl Generator for UniformGenerator {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        rng.gen_range(0..self.item_count)
    }

    fn set_item_count(&mut self, item_count: u64) {
        self.item_count = item_count.max(1);
    }
}

/// Zipfian-distributed item selection (popular items are requested often).
///
/// Implements the Gray et al. "quick" zipfian algorithm used by the original
/// YCSB, with incremental recomputation of the zeta constant when the item
/// count grows.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    item_count: u64,
    theta: f64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfianGenerator {
    /// The YCSB default skew constant.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a zipfian generator over `item_count` items.
    pub fn new(item_count: u64) -> Self {
        Self::with_theta(item_count, Self::DEFAULT_THETA)
    }

    /// Creates a zipfian generator with an explicit skew constant.
    pub fn with_theta(item_count: u64, theta: f64) -> Self {
        let item_count = item_count.max(1);
        let zeta_n = Self::zeta(item_count, theta);
        let zeta2 = Self::zeta(2, theta);
        let mut gen = ZipfianGenerator {
            item_count,
            theta,
            zeta_n,
            zeta2,
            alpha: 0.0,
            eta: 0.0,
        };
        gen.recompute();
        gen
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        let mut sum = 0.0;
        for i in 0..n {
            sum += 1.0 / ((i + 1) as f64).powf(theta);
        }
        sum
    }

    fn recompute(&mut self) {
        self.alpha = 1.0 / (1.0 - self.theta);
        self.eta = (1.0 - (2.0 / self.item_count as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2 / self.zeta_n);
    }
}

impl Generator for ZipfianGenerator {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let index =
            (self.item_count as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        index.min(self.item_count - 1)
    }

    fn set_item_count(&mut self, item_count: u64) {
        let item_count = item_count.max(1);
        if item_count > self.item_count {
            // Extend the zeta sum incrementally.
            for i in self.item_count..item_count {
                self.zeta_n += 1.0 / ((i + 1) as f64).powf(self.theta);
            }
            self.item_count = item_count;
            self.recompute();
        }
    }
}

/// Zipfian popularity scattered across the whole key space.
///
/// YCSB hashes the zipfian rank so that the hot keys are spread over the
/// table instead of being clustered at the low end.
#[derive(Debug, Clone)]
pub struct ScrambledZipfianGenerator {
    inner: ZipfianGenerator,
    item_count: u64,
}

impl ScrambledZipfianGenerator {
    /// Creates a scrambled zipfian generator over `item_count` items.
    pub fn new(item_count: u64) -> Self {
        ScrambledZipfianGenerator {
            inner: ZipfianGenerator::new(item_count),
            item_count: item_count.max(1),
        }
    }
}

impl Generator for ScrambledZipfianGenerator {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let rank = self.inner.next(rng);
        u64::from(hash_seeded(&rank.to_le_bytes(), 0x5bd1_e995)) % self.item_count
    }

    fn set_item_count(&mut self, item_count: u64) {
        self.item_count = item_count.max(1);
        self.inner.set_item_count(item_count);
    }
}

/// Skewed towards the most recently inserted items (news-feed pattern,
/// workload D).
#[derive(Debug, Clone)]
pub struct LatestGenerator {
    zipfian: ZipfianGenerator,
    item_count: u64,
}

impl LatestGenerator {
    /// Creates a latest-skewed generator over `item_count` items.
    pub fn new(item_count: u64) -> Self {
        LatestGenerator {
            zipfian: ZipfianGenerator::new(item_count),
            item_count: item_count.max(1),
        }
    }
}

impl Generator for LatestGenerator {
    fn next(&mut self, rng: &mut dyn rand::RngCore) -> u64 {
        let offset = self.zipfian.next(rng);
        self.item_count.saturating_sub(1).saturating_sub(offset)
    }

    fn set_item_count(&mut self, item_count: u64) {
        self.item_count = item_count.max(1);
        self.zipfian.set_item_count(item_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(gen: &mut dyn Generator, n: usize) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..n).map(|_| gen.next(&mut rng)).collect()
    }

    #[test]
    fn uniform_stays_in_range_and_covers_space() {
        let mut gen = UniformGenerator::new(100);
        let samples = draw(&mut gen, 5000);
        assert!(samples.iter().all(|&s| s < 100));
        let distinct: std::collections::HashSet<_> = samples.iter().collect();
        assert!(distinct.len() > 90);
    }

    #[test]
    fn zipfian_is_skewed_towards_low_ranks() {
        let mut gen = ZipfianGenerator::new(10_000);
        let samples = draw(&mut gen, 20_000);
        assert!(samples.iter().all(|&s| s < 10_000));
        let hot = samples.iter().filter(|&&s| s < 100).count();
        // With theta=0.99 the first 1% of items gets far more than 1% of
        // requests.
        assert!(hot > samples.len() / 10, "hot count {hot}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let mut gen = ScrambledZipfianGenerator::new(10_000);
        let samples = draw(&mut gen, 20_000);
        assert!(samples.iter().all(|&s| s < 10_000));
        // Hot keys exist (some item drawn many times) ...
        let mut counts = std::collections::HashMap::new();
        for s in &samples {
            *counts.entry(*s).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 100, "expected a hot key, max draw count {max}");
        // ... but they are not clustered at the low end of the key space.
        let low = samples.iter().filter(|&&s| s < 100).count();
        assert!(low < samples.len() / 10, "low-end count {low}");
    }

    #[test]
    fn latest_prefers_recent_items_and_tracks_growth() {
        let mut gen = LatestGenerator::new(1000);
        let samples = draw(&mut gen, 5000);
        let recent = samples.iter().filter(|&&s| s >= 900).count();
        assert!(recent > samples.len() / 2, "recent count {recent}");

        gen.set_item_count(2000);
        let samples = draw(&mut gen, 5000);
        assert!(samples.iter().any(|&s| s >= 1500));
        assert!(samples.iter().all(|&s| s < 2000));
    }

    #[test]
    fn zipfian_item_count_growth_is_monotonic() {
        let mut gen = ZipfianGenerator::new(10);
        gen.set_item_count(1000);
        let samples = draw(&mut gen, 1000);
        assert!(samples.iter().all(|&s| s < 1000));
    }
}
