//! A simple latency histogram with logarithmic buckets.

/// Records microsecond-scale latencies and reports percentiles.
///
/// Buckets grow geometrically (~25 % per bucket) so the histogram covers
/// nanoseconds to minutes in a fixed, small amount of memory.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

const NUM_BUCKETS: usize = 200;

fn bucket_for(value: u64) -> usize {
    // log_1.25(value) compressed into NUM_BUCKETS buckets.
    let value = value.max(1) as f64;
    let bucket = (value.ln() / 1.25f64.ln()) as usize;
    bucket.min(NUM_BUCKETS - 1)
}

fn bucket_upper_bound(bucket: usize) -> u64 {
    1.25f64.powi(bucket as i32 + 1) as u64
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation (typically microseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_for(value)] += 1;
        self.count += 1;
        self.sum += value as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded observations.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded observation.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded observation.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate value at the given percentile (0.0–100.0).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (self.count as f64 * (p / 100.0)).ceil() as u64;
        let mut seen = 0u64;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= threshold {
                return bucket_upper_bound(bucket).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 3000 && p50 < 7500, "p50={p50}");
        assert!(p99 >= 9000, "p99={p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
    }
}
