//! A multi-threaded YCSB runner over any [`KvStore`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pebblesdb_common::{KvStore, ReadOptions, Result};

use crate::histogram::Histogram;
use crate::workload::{CoreWorkload, Operation, WorkloadKind};

/// The result of one workload run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which workload was run.
    pub workload: &'static str,
    /// The engine name the store reported.
    pub engine: String,
    /// Number of operations executed.
    pub operations: u64,
    /// Wall-clock duration of the run in seconds.
    pub seconds: f64,
    /// Operation latency histogram (microseconds).
    pub latency: Histogram,
    /// Bytes written to the device during the run.
    pub bytes_written: u64,
    /// Bytes read from the device during the run.
    pub bytes_read: u64,
}

impl RunReport {
    /// Throughput in thousands of operations per second (the unit the paper
    /// reports).
    pub fn kops_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.operations as f64 / self.seconds / 1000.0
        }
    }
}

/// Loads `record_count` records and is a no-op if the workload is not a load
/// phase; exposed separately so benchmarks can time load and run phases
/// independently.
pub fn load_phase(store: &Arc<dyn KvStore>, workload: &CoreWorkload, threads: usize) -> Result<()> {
    let record_count = workload.record_count;
    let value_size = workload.value_size;
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for _ in 0..threads.max(1) {
            let store = Arc::clone(store);
            let next = &next;
            handles.push(scope.spawn(move || -> Result<()> {
                let mut rng = StdRng::seed_from_u64(0x1234_5678);
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= record_count {
                        return Ok(());
                    }
                    let key = CoreWorkload::key_for(index);
                    let value = CoreWorkload::make_value(value_size, index, &mut rng);
                    store.put(&key, &value)?;
                }
            }));
        }
        for handle in handles {
            handle.join().expect("load thread panicked")?;
        }
        Ok(())
    })
}

/// Runs `operations` operations of `kind` against `store` using `threads`
/// worker threads, mirroring the paper's four-thread YCSB runs.
pub fn run_workload(
    store: Arc<dyn KvStore>,
    kind: WorkloadKind,
    record_count: u64,
    operations: u64,
    threads: usize,
    value_size: usize,
) -> Result<RunReport> {
    let threads = threads.max(1);
    let stats_before = store.stats();
    let start = Instant::now();
    let histogram = Mutex::new(Histogram::new());
    let executed = AtomicU64::new(0);

    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for thread_id in 0..threads {
            let store = Arc::clone(&store);
            let histogram = &histogram;
            let executed = &executed;
            handles.push(scope.spawn(move || -> Result<()> {
                let per_thread = operations / threads as u64
                    + u64::from((thread_id as u64).is_multiple_of(threads as u64));
                let mut workload =
                    CoreWorkload::preset(kind, record_count).with_value_size(value_size);
                let mut rng = StdRng::seed_from_u64(0xabcd_0000 + thread_id as u64);
                let mut local = Histogram::new();
                for _ in 0..per_thread {
                    let op = workload.next_operation(&mut rng);
                    let op_start = Instant::now();
                    execute(&store, op)?;
                    local.record(op_start.elapsed().as_micros() as u64);
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                histogram.lock().merge(&local);
                Ok(())
            }));
        }
        for handle in handles {
            handle.join().expect("worker thread panicked")?;
        }
        Ok(())
    })?;

    let seconds = start.elapsed().as_secs_f64();
    let stats_after = store.stats();
    Ok(RunReport {
        workload: kind.name(),
        engine: store.engine_name(),
        operations: executed.load(Ordering::Relaxed),
        seconds,
        latency: histogram.into_inner(),
        bytes_written: stats_after
            .bytes_written
            .saturating_sub(stats_before.bytes_written),
        bytes_read: stats_after
            .bytes_read
            .saturating_sub(stats_before.bytes_read),
    })
}

fn execute(store: &Arc<dyn KvStore>, op: Operation) -> Result<()> {
    match op {
        Operation::Read(key) => {
            let _ = store.get(&key)?;
        }
        Operation::Update(key, value) | Operation::Insert(key, value) => {
            store.put(&key, &value)?;
        }
        Operation::Scan(key, len) => {
            // YCSB-E drives the engine exactly like the paper: position a
            // cursor, then stream `len` entries off it.
            let mut iter = store.iter(&ReadOptions::default())?;
            iter.seek(&key);
            let mut read = 0usize;
            while iter.valid() && read < len {
                std::hint::black_box((iter.key(), iter.value()));
                read += 1;
                iter.next();
            }
        }
        Operation::ReadModifyWrite(key, value) => {
            let _ = store.get(&key)?;
            store.put(&key, &value)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
    use pebblesdb_common::user_iter::UserEntriesIterator;
    use pebblesdb_common::{DbIterator, Error, StoreStats, WriteBatch, WriteOptions};
    use std::collections::BTreeMap;

    /// A trivial in-memory store used to test the runner itself.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        writes: AtomicU64,
        snapshots: Arc<SnapshotList>,
    }

    impl KvStore for MapStore {
        fn put_opts(&self, _opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
            self.map.lock().insert(key.to_vec(), value.to_vec());
            self.writes.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn get_opts(&self, _opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete_opts(&self, _opts: &WriteOptions, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
            for record in batch.iter() {
                let record = record.map_err(|_| Error::internal("bad batch"))?;
                self.put_opts(opts, record.key, record.value)?;
            }
            Ok(())
        }
        fn iter(&self, _opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
            let entries: Vec<(Vec<u8>, Vec<u8>)> = self
                .map
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            Ok(Box::new(UserEntriesIterator::new(entries)))
        }
        fn snapshot(&self) -> Snapshot {
            self.snapshots.acquire(self.writes.load(Ordering::Relaxed))
        }
        fn flush(&self) -> Result<()> {
            Ok(())
        }
        fn stats(&self) -> StoreStats {
            StoreStats::default()
        }
        fn engine_name(&self) -> String {
            "MapStore".to_string()
        }
    }

    #[test]
    fn load_phase_inserts_every_record() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        let workload = CoreWorkload::preset(WorkloadKind::LoadA, 500).with_value_size(32);
        load_phase(&store, &workload, 4).unwrap();
        assert_eq!(store.scan(b"", &[], 10_000).unwrap().len(), 500);
    }

    #[test]
    fn run_workload_executes_requested_operations() {
        let store: Arc<dyn KvStore> = Arc::new(MapStore::default());
        let workload = CoreWorkload::preset(WorkloadKind::LoadA, 200).with_value_size(32);
        load_phase(&store, &workload, 2).unwrap();

        let report = run_workload(Arc::clone(&store), WorkloadKind::A, 200, 1000, 4, 32).unwrap();
        assert!(report.operations >= 1000);
        assert!(report.kops_per_second() > 0.0);
        assert_eq!(report.engine, "MapStore");
        assert!(report.latency.count() >= 1000);

        let report_e = run_workload(Arc::clone(&store), WorkloadKind::E, 200, 500, 2, 32).unwrap();
        assert!(report_e.operations >= 500);
    }
}
