//! The YCSB core workloads (Table 5.3 of the paper).

use rand::Rng;

use pebblesdb_common::hash::hash_seeded;

use crate::generators::{Generator, LatestGenerator, ScrambledZipfianGenerator, UniformGenerator};

/// Which of the paper's YCSB workloads to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// 100 % inserts: loads the data set for workloads A–D and F.
    LoadA,
    /// 50 % reads, 50 % updates (session store).
    A,
    /// 95 % reads, 5 % updates (photo tagging).
    B,
    /// 100 % reads (caches).
    C,
    /// 95 % reads of latest values, 5 % inserts (news feed).
    D,
    /// 100 % inserts: loads the data set for workload E.
    LoadE,
    /// 95 % range queries, 5 % inserts (threaded conversations).
    E,
    /// 50 % reads, 50 % read-modify-writes (database workload).
    F,
}

impl WorkloadKind {
    /// All workloads in the order the paper reports them.
    pub fn all() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::LoadA,
            WorkloadKind::A,
            WorkloadKind::B,
            WorkloadKind::C,
            WorkloadKind::D,
            WorkloadKind::LoadE,
            WorkloadKind::E,
            WorkloadKind::F,
        ]
    }

    /// The name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::LoadA => "Load A",
            WorkloadKind::A => "A",
            WorkloadKind::B => "B",
            WorkloadKind::C => "C",
            WorkloadKind::D => "D",
            WorkloadKind::LoadE => "Load E",
            WorkloadKind::E => "E",
            WorkloadKind::F => "F",
        }
    }

    /// Returns `true` for the two pure-load phases.
    pub fn is_load(self) -> bool {
        matches!(self, WorkloadKind::LoadA | WorkloadKind::LoadE)
    }
}

/// A single operation produced by the workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read one key.
    Read(Vec<u8>),
    /// Overwrite the value of an existing key.
    Update(Vec<u8>, Vec<u8>),
    /// Insert a new key.
    Insert(Vec<u8>, Vec<u8>),
    /// Range query: start key and number of records.
    Scan(Vec<u8>, usize),
    /// Read a key, then write back a modified value.
    ReadModifyWrite(Vec<u8>, Vec<u8>),
}

/// Request distribution used for choosing which existing key to touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian over hashed keys (YCSB default).
    Zipfian,
    /// Skewed towards the most recent inserts.
    Latest,
}

/// A configured YCSB workload.
pub struct CoreWorkload {
    /// Fraction of operations that are reads.
    pub read_proportion: f64,
    /// Fraction of operations that are updates.
    pub update_proportion: f64,
    /// Fraction of operations that are inserts.
    pub insert_proportion: f64,
    /// Fraction of operations that are scans.
    pub scan_proportion: f64,
    /// Fraction of operations that are read-modify-writes.
    pub read_modify_write_proportion: f64,
    /// The request distribution for choosing existing keys.
    pub request_distribution: RequestDistribution,
    /// Value size in bytes (the YCSB default is 10 fields x 100 bytes; the
    /// paper uses 1 KiB values).
    pub value_size: usize,
    /// Maximum scan length (records per scan).
    pub max_scan_length: usize,
    /// Number of records loaded before the run.
    pub record_count: u64,

    insert_sequence: u64,
    chooser: Box<dyn Generator>,
}

impl CoreWorkload {
    /// Creates the paper's configuration of the given workload over
    /// `record_count` pre-loaded records.
    pub fn preset(kind: WorkloadKind, record_count: u64) -> CoreWorkload {
        let mut workload = CoreWorkload {
            read_proportion: 0.0,
            update_proportion: 0.0,
            insert_proportion: 0.0,
            scan_proportion: 0.0,
            read_modify_write_proportion: 0.0,
            request_distribution: RequestDistribution::Zipfian,
            value_size: 1024,
            max_scan_length: 100,
            record_count: record_count.max(1),
            insert_sequence: record_count.max(1),
            chooser: Box::new(ScrambledZipfianGenerator::new(record_count.max(1))),
        };
        match kind {
            WorkloadKind::LoadA | WorkloadKind::LoadE => {
                workload.insert_proportion = 1.0;
            }
            WorkloadKind::A => {
                workload.read_proportion = 0.5;
                workload.update_proportion = 0.5;
            }
            WorkloadKind::B => {
                workload.read_proportion = 0.95;
                workload.update_proportion = 0.05;
            }
            WorkloadKind::C => {
                workload.read_proportion = 1.0;
            }
            WorkloadKind::D => {
                workload.read_proportion = 0.95;
                workload.insert_proportion = 0.05;
                workload.request_distribution = RequestDistribution::Latest;
                workload.chooser = Box::new(LatestGenerator::new(record_count.max(1)));
            }
            WorkloadKind::E => {
                workload.scan_proportion = 0.95;
                workload.insert_proportion = 0.05;
            }
            WorkloadKind::F => {
                workload.read_proportion = 0.5;
                workload.read_modify_write_proportion = 0.5;
            }
        }
        workload
    }

    /// Switches the request distribution (used by ablation benchmarks).
    pub fn with_distribution(mut self, distribution: RequestDistribution) -> Self {
        self.request_distribution = distribution;
        self.chooser = match distribution {
            RequestDistribution::Uniform => Box::new(UniformGenerator::new(self.record_count)),
            RequestDistribution::Zipfian => {
                Box::new(ScrambledZipfianGenerator::new(self.record_count))
            }
            RequestDistribution::Latest => Box::new(LatestGenerator::new(self.record_count)),
        };
        self
    }

    /// Overrides the value size.
    pub fn with_value_size(mut self, value_size: usize) -> Self {
        self.value_size = value_size;
        self
    }

    /// The YCSB key for a record index (`user` + hashed, zero-padded id).
    pub fn key_for(index: u64) -> Vec<u8> {
        let hashed = u64::from(hash_seeded(&index.to_le_bytes(), 0xadc8_3b19)) << 20 | index;
        format!("user{hashed:020}").into_bytes()
    }

    /// A deterministic-but-incompressible value of the configured size.
    pub fn value_for(&self, index: u64, rng: &mut impl Rng) -> Vec<u8> {
        Self::make_value(self.value_size, index, rng)
    }

    /// Builds a value of `value_size` bytes for record `index`.
    pub fn make_value(value_size: usize, index: u64, rng: &mut impl Rng) -> Vec<u8> {
        let mut value = Vec::with_capacity(value_size);
        value.extend_from_slice(&index.to_le_bytes());
        while value.len() < value_size {
            value.push(rng.gen());
        }
        value.truncate(value_size);
        value
    }

    /// Keys for the load phase, in insertion order.
    pub fn load_keys(&self) -> impl Iterator<Item = Vec<u8>> {
        (0..self.record_count).map(Self::key_for)
    }

    /// Draws the next operation of the transaction phase.
    pub fn next_operation(&mut self, rng: &mut impl Rng) -> Operation {
        let choice: f64 = rng.gen();
        let mut acc = self.read_proportion;
        if choice < acc {
            return Operation::Read(self.choose_key(rng));
        }
        acc += self.update_proportion;
        if choice < acc {
            let key = self.choose_key(rng);
            let value = self.value_for(0, rng);
            return Operation::Update(key, value);
        }
        acc += self.scan_proportion;
        if choice < acc {
            let key = self.choose_key(rng);
            let len = rng.gen_range(1..=self.max_scan_length);
            return Operation::Scan(key, len);
        }
        acc += self.read_modify_write_proportion;
        if choice < acc {
            let key = self.choose_key(rng);
            let value = self.value_for(0, rng);
            return Operation::ReadModifyWrite(key, value);
        }
        // Insert.
        let index = self.insert_sequence;
        self.insert_sequence += 1;
        self.chooser.set_item_count(self.insert_sequence);
        let value = self.value_for(index, rng);
        Operation::Insert(Self::key_for(index), value)
    }

    fn choose_key(&mut self, rng: &mut impl Rng) -> Vec<u8> {
        let index = self.chooser.next(rng);
        Self::key_for(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(CoreWorkload::key_for(5), CoreWorkload::key_for(5));
        assert_ne!(CoreWorkload::key_for(5), CoreWorkload::key_for(6));
        assert!(CoreWorkload::key_for(1).starts_with(b"user"));
    }

    #[test]
    fn load_phase_produces_record_count_keys() {
        let workload = CoreWorkload::preset(WorkloadKind::LoadA, 100);
        assert_eq!(workload.load_keys().count(), 100);
    }

    #[test]
    fn inserts_extend_the_key_space() {
        let mut workload = CoreWorkload::preset(WorkloadKind::LoadE, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut keys = std::collections::HashSet::new();
        for _ in 0..50 {
            match workload.next_operation(&mut rng) {
                Operation::Insert(key, value) => {
                    assert_eq!(value.len(), workload.value_size);
                    assert!(keys.insert(key), "insert keys must be unique");
                }
                other => panic!("load workload must only insert, got {other:?}"),
            }
        }
    }

    #[test]
    fn workload_e_emits_bounded_scans() {
        let mut workload = CoreWorkload::preset(WorkloadKind::E, 1000);
        let mut rng = StdRng::seed_from_u64(11);
        let mut scans = 0;
        for _ in 0..500 {
            if let Operation::Scan(_, len) = workload.next_operation(&mut rng) {
                assert!(len >= 1 && len <= workload.max_scan_length);
                scans += 1;
            }
        }
        assert!(scans > 400);
    }

    #[test]
    fn value_size_override_is_respected() {
        let workload = CoreWorkload::preset(WorkloadKind::A, 10).with_value_size(16 * 1024);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(workload.value_for(3, &mut rng).len(), 16 * 1024);
    }
}
