//! The memtable: an ordered in-memory buffer of recent writes.

use std::cmp::Ordering;

use pebblesdb_common::coding::{decode_varint32, put_varint32};
use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::key::{
    compare_internal_keys, pack_sequence_and_type, parse_internal_key, LookupKey, SequenceNumber,
    ValueType,
};
use pebblesdb_common::{Error, Result};

use crate::list::{SkipList, SkipListIterator};

/// An entry in the memtable's skip list encodes the internal key and value
/// into a single buffer:
///
/// ```text
/// varint32(internal_key_len) internal_key varint32(value_len) value
/// ```
fn encode_entry(
    user_key: &[u8],
    seq: SequenceNumber,
    value_type: ValueType,
    value: &[u8],
) -> Vec<u8> {
    let internal_key_len = user_key.len() + 8;
    let mut buf = Vec::with_capacity(internal_key_len + value.len() + 10);
    put_varint32(&mut buf, internal_key_len as u32);
    buf.extend_from_slice(user_key);
    buf.extend_from_slice(&pack_sequence_and_type(seq, value_type).to_le_bytes());
    put_varint32(&mut buf, value.len() as u32);
    buf.extend_from_slice(value);
    buf
}

/// Splits an encoded entry into its internal key and value.
fn decode_entry(entry: &[u8]) -> (&[u8], &[u8]) {
    let (klen, used) = decode_varint32(entry).expect("memtable entry corrupt");
    let key_start = used;
    let key_end = key_start + klen as usize;
    let (vlen, vused) = decode_varint32(&entry[key_end..]).expect("memtable entry corrupt");
    let value_start = key_end + vused;
    (
        &entry[key_start..key_end],
        &entry[value_start..value_start + vlen as usize],
    )
}

/// Orders encoded entries by their embedded internal key.
fn entry_comparator(a: &[u8], b: &[u8]) -> Ordering {
    let (ka, _) = decode_entry(a);
    let (kb, _) = decode_entry(b);
    compare_internal_keys(ka, kb)
}

/// The outcome of looking a key up in a memtable.
#[derive(Debug, PartialEq, Eq)]
pub enum MemTableGet {
    /// The key has a live value.
    Found(Vec<u8>),
    /// The key's value lives in a value-log file; the payload is the encoded
    /// [`ValuePointer`](pebblesdb_common::vlog::ValuePointer). The engine
    /// resolves it outside the state lock.
    FoundPointer(Vec<u8>),
    /// The key was deleted (tombstone); deeper levels must not be consulted.
    Deleted,
    /// The memtable holds no record of the key.
    NotFound,
}

/// An in-memory, sorted buffer of `(internal key, value)` entries.
///
/// The memtable is concurrent: [`MemTable::add`] takes `&self`, so the
/// active table lives behind a plain `Arc` shared by the writer, point
/// lookups, and long-lived cursors — no copy is ever taken. When the table
/// fills up the engine *freezes* it by moving the `Arc` into its immutable
/// slot and starting a fresh table; cursors that still pin the frozen table
/// keep streaming from it unchanged.
pub struct MemTable {
    list: SkipList,
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable {
            list: SkipList::new(entry_comparator),
        }
    }

    /// Adds a record.
    ///
    /// Safe to call while readers and cursors traverse the table; inserts
    /// are serialised internally (the engines funnel all writes through one
    /// group-commit leader anyway).
    pub fn add(&self, seq: SequenceNumber, value_type: ValueType, key: &[u8], value: &[u8]) {
        self.list.insert(&encode_entry(key, seq, value_type, value));
    }

    /// Number of records (including tombstones and superseded versions).
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` if no records have been added.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate memory used by the memtable.
    pub fn approximate_memory_usage(&self) -> usize {
        self.list.approximate_memory_usage()
    }

    /// Looks up the newest record for the lookup key's user key that is
    /// visible at its snapshot sequence number.
    pub fn get(&self, key: &LookupKey) -> MemTableGet {
        let probe = encode_entry_for_seek(key.internal_key());
        let mut iter = self.list.iter();
        iter.seek(&probe);
        if !iter.valid() {
            return MemTableGet::NotFound;
        }
        let (internal_key, value) = decode_entry(iter.key());
        match parse_internal_key(internal_key) {
            Some(parsed) if parsed.user_key == key.user_key() => match parsed.value_type {
                ValueType::Value => MemTableGet::Found(value.to_vec()),
                ValueType::ValuePointer => MemTableGet::FoundPointer(value.to_vec()),
                ValueType::Deletion => MemTableGet::Deleted,
            },
            _ => MemTableGet::NotFound,
        }
    }

    /// Creates an iterator yielding internal keys in sorted order.
    pub fn iter(&self) -> MemTableIterator<'_> {
        MemTableIterator {
            inner: self.list.iter(),
        }
    }

    /// Creates an owning iterator that keeps the memtable alive.
    ///
    /// Used by the engines' streaming cursors: the cursor outlives the
    /// database lock, so it pins the memtable through the `Arc` instead of a
    /// borrow. The skip list is append-only, so the cursor stays valid (and
    /// its snapshot-filtered view stays consistent) even while the writer
    /// keeps inserting into the same table.
    pub fn owned_iter(self: &std::sync::Arc<Self>) -> OwnedMemTableIterator {
        OwnedMemTableIterator {
            mem: std::sync::Arc::clone(self),
            node: u32::MAX,
        }
    }

    /// Validates the entry encoding of the whole table (used by tests).
    pub fn verify(&self) -> Result<()> {
        let mut iter = self.iter();
        iter.seek_to_first();
        while iter.valid() {
            parse_internal_key(iter.key())
                .ok_or_else(|| Error::corruption("memtable holds malformed internal key"))?;
            iter.next();
        }
        Ok(())
    }
}

/// Wraps a bare internal key in the entry encoding so it can be used as a
/// seek target against encoded entries.
fn encode_entry_for_seek(internal_key: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(internal_key.len() + 5);
    put_varint32(&mut buf, internal_key.len() as u32);
    buf.extend_from_slice(internal_key);
    // A zero-length value suffix keeps decode_entry happy.
    put_varint32(&mut buf, 0);
    buf
}

/// Iterator adapter exposing a memtable as a [`DbIterator`].
pub struct MemTableIterator<'a> {
    inner: SkipListIterator<'a>,
}

impl DbIterator for MemTableIterator<'_> {
    fn valid(&self) -> bool {
        self.inner.valid()
    }

    fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }

    fn seek_to_last(&mut self) {
        self.inner.seek_to_last();
    }

    fn seek(&mut self, target: &[u8]) {
        self.inner.seek(&encode_entry_for_seek(target));
    }

    fn next(&mut self) {
        self.inner.next();
    }

    fn prev(&mut self) {
        self.inner.prev();
    }

    fn key(&self) -> &[u8] {
        decode_entry(self.inner.key()).0
    }

    fn value(&self) -> &[u8] {
        decode_entry(self.inner.key()).1
    }
}

/// An owning [`DbIterator`] over an `Arc<MemTable>`.
///
/// Stores a node index instead of a borrow, so it is `'static` and can be
/// boxed into an engine's public cursor. Node indices address an append-only
/// arena, so concurrent inserts into the pinned memtable never invalidate
/// the cursor's position.
pub struct OwnedMemTableIterator {
    mem: std::sync::Arc<MemTable>,
    node: u32,
}

impl DbIterator for OwnedMemTableIterator {
    fn valid(&self) -> bool {
        self.mem.list.index_valid(self.node)
    }

    fn seek_to_first(&mut self) {
        self.node = self.mem.list.first_index();
    }

    fn seek_to_last(&mut self) {
        self.node = self.mem.list.last_index();
    }

    fn seek(&mut self, target: &[u8]) {
        self.node = self.mem.list.seek_index(&encode_entry_for_seek(target));
    }

    fn next(&mut self) {
        assert!(self.valid(), "next() on invalid memtable iterator");
        self.node = self.mem.list.next_index(self.node);
    }

    fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid memtable iterator");
        self.node = self.mem.list.prev_index(self.node);
    }

    fn key(&self) -> &[u8] {
        decode_entry(self.mem.list.key_at(self.node)).0
    }

    fn value(&self) -> &[u8] {
        decode_entry(self.mem.list.key_at(self.node)).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_latest_visible_version() {
        let mem = MemTable::new();
        mem.add(1, ValueType::Value, b"k", b"v1");
        mem.add(5, ValueType::Value, b"k", b"v2");
        mem.add(9, ValueType::Value, b"k", b"v3");

        assert_eq!(
            mem.get(&LookupKey::new(b"k", 100)),
            MemTableGet::Found(b"v3".to_vec())
        );
        assert_eq!(
            mem.get(&LookupKey::new(b"k", 5)),
            MemTableGet::Found(b"v2".to_vec())
        );
        assert_eq!(
            mem.get(&LookupKey::new(b"k", 1)),
            MemTableGet::Found(b"v1".to_vec())
        );
    }

    #[test]
    fn tombstones_shadow_older_values() {
        let mem = MemTable::new();
        mem.add(1, ValueType::Value, b"k", b"v1");
        mem.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(mem.get(&LookupKey::new(b"k", 10)), MemTableGet::Deleted);
        assert_eq!(
            mem.get(&LookupKey::new(b"k", 1)),
            MemTableGet::Found(b"v1".to_vec())
        );
    }

    #[test]
    fn missing_keys_report_not_found() {
        let mem = MemTable::new();
        mem.add(1, ValueType::Value, b"aaa", b"1");
        mem.add(2, ValueType::Value, b"ccc", b"2");
        assert_eq!(mem.get(&LookupKey::new(b"bbb", 10)), MemTableGet::NotFound);
        assert_eq!(mem.get(&LookupKey::new(b"zzz", 10)), MemTableGet::NotFound);
    }

    #[test]
    fn iterator_yields_internal_keys_in_order() {
        let mem = MemTable::new();
        mem.add(3, ValueType::Value, b"b", b"vb");
        mem.add(1, ValueType::Value, b"a", b"va");
        mem.add(2, ValueType::Value, b"c", b"vc");

        let mut iter = mem.iter();
        iter.seek_to_first();
        let mut user_keys = Vec::new();
        while iter.valid() {
            let parsed = parse_internal_key(iter.key()).unwrap();
            user_keys.push(parsed.user_key.to_vec());
            iter.next();
        }
        assert_eq!(user_keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        assert!(mem.verify().is_ok());
    }

    #[test]
    fn iterator_seek_lands_on_user_key() {
        let mem = MemTable::new();
        for (i, k) in ["apple", "banana", "cherry"].iter().enumerate() {
            mem.add(i as u64 + 1, ValueType::Value, k.as_bytes(), b"x");
        }
        let mut iter = mem.iter();
        iter.seek(LookupKey::new(b"b", 100).internal_key());
        assert!(iter.valid());
        assert_eq!(parse_internal_key(iter.key()).unwrap().user_key, b"banana");
    }

    #[test]
    fn memory_usage_grows_with_inserts() {
        let mem = MemTable::new();
        let before = mem.approximate_memory_usage();
        for i in 0..100u32 {
            mem.add(
                i as u64,
                ValueType::Value,
                format!("key{i}").as_bytes(),
                &[0u8; 100],
            );
        }
        assert!(mem.approximate_memory_usage() > before + 100 * 100);
        assert_eq!(mem.len(), 100);
    }

    #[test]
    fn values_can_be_empty() {
        let mem = MemTable::new();
        mem.add(1, ValueType::Value, b"k", b"");
        assert_eq!(
            mem.get(&LookupKey::new(b"k", 10)),
            MemTableGet::Found(Vec::new())
        );
    }
}
