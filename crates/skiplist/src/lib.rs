//! The in-memory write buffer: an arena-backed skiplist and the memtable.
//!
//! The paper's `put()` path (section 2.2) appends to an in-memory skip list
//! called the memtable; when it reaches `write_buffer_size` it is frozen and
//! flushed to a level-0 sstable. The FLSM guard-selection scheme is *also*
//! inspired by skip lists, but that logic lives in the engine crate — this
//! crate only provides the ordered in-memory map.
//!
//! The skiplist here stores nodes in a growable arena and links them with
//! `u32` indices, which keeps the implementation entirely in safe Rust while
//! preserving the O(log n) insert/search behaviour of a classic tower-based
//! skip list.

pub mod list;
pub mod memtable;

pub use list::SkipList;
pub use memtable::{MemTable, MemTableIterator, OwnedMemTableIterator};
