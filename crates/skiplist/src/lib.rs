//! The in-memory write buffer: an arena-backed skiplist and the memtable.
//!
//! The paper's `put()` path (section 2.2) appends to an in-memory skip list
//! called the memtable; when it reaches `write_buffer_size` it is frozen and
//! flushed to a level-0 sstable. The FLSM guard-selection scheme is *also*
//! inspired by skip lists, but that logic lives in the engine crate — this
//! crate only provides the ordered in-memory map.
//!
//! The skiplist stores nodes in append-only arena segments and links them
//! with atomic `u32` indices (LevelDB-style): readers and long-lived cursors
//! traverse lock-free with acquire loads while the single write-group leader
//! inserts concurrently, so the engines share one memtable between the
//! writer, `get`, and cursors with zero copy-on-write. See [`list`] for the
//! publication protocol and safety argument.

pub mod list;
pub mod memtable;

pub use list::SkipList;
pub use memtable::{MemTable, MemTableIterator, OwnedMemTableIterator};
