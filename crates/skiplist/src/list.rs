//! An arena-backed probabilistic skip list keyed by byte strings.

use std::cmp::Ordering;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum tower height. With a branching factor of 4 this comfortably
/// supports hundreds of millions of entries.
const MAX_HEIGHT: usize = 12;
/// Probability denominator for growing a tower by one level.
const BRANCHING: u32 = 4;

/// Index of the head sentinel node.
const HEAD: u32 = 0;
/// Sentinel meaning "no node".
const NIL: u32 = u32::MAX;

#[derive(Clone)]
struct Node {
    key: Vec<u8>,
    /// `next[level]` is the index of the following node at that level.
    next: [u32; MAX_HEIGHT],
}

/// An append-only ordered map over byte-string keys.
///
/// Keys are compared with a caller-provided comparator so the memtable can
/// order encoded internal keys (user key ascending, sequence descending).
/// Duplicate keys are not detected — the memtable never inserts the same
/// internal key twice because sequence numbers are unique.
///
/// The list is `Clone` so a memtable shared behind an `Arc` can be
/// copy-on-write snapshotted while iterators hold the old copy.
#[derive(Clone)]
pub struct SkipList {
    nodes: Vec<Node>,
    max_height: usize,
    rng: StdRng,
    cmp: fn(&[u8], &[u8]) -> Ordering,
    approximate_memory: usize,
}

impl SkipList {
    /// Creates an empty skip list ordered by `cmp`.
    pub fn new(cmp: fn(&[u8], &[u8]) -> Ordering) -> Self {
        let head = Node {
            key: Vec::new(),
            next: [NIL; MAX_HEIGHT],
        };
        SkipList {
            nodes: vec![head],
            max_height: 1,
            rng: StdRng::seed_from_u64(0xdeadbeef),
            cmp,
            approximate_memory: std::mem::size_of::<Node>(),
        }
    }

    /// Number of entries in the list.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Returns `true` if the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of memory used by keys and nodes.
    pub fn approximate_memory_usage(&self) -> usize {
        self.approximate_memory
    }

    fn random_height(&mut self) -> usize {
        let mut height = 1;
        while height < MAX_HEIGHT && self.rng.gen_ratio(1, BRANCHING) {
            height += 1;
        }
        height
    }

    fn key_is_after_node(&self, key: &[u8], node: u32) -> bool {
        node != NIL
            && node != HEAD
            && (self.cmp)(&self.nodes[node as usize].key, key) == Ordering::Less
    }

    /// Finds, per level, the last node whose key is `< key`.
    fn find_greater_or_equal(&self, key: &[u8], prev: Option<&mut [u32; MAX_HEIGHT]>) -> u32 {
        let mut scratch = [HEAD; MAX_HEIGHT];
        let prev = match prev {
            Some(p) => p,
            None => &mut scratch,
        };
        let mut node = HEAD;
        let mut level = self.max_height - 1;
        loop {
            let next = self.nodes[node as usize].next[level];
            if self.key_is_after_node(key, next) {
                node = next;
            } else {
                prev[level] = node;
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    fn find_less_than(&self, key: &[u8]) -> u32 {
        let mut node = HEAD;
        let mut level = self.max_height - 1;
        loop {
            let next = self.nodes[node as usize].next[level];
            if next != NIL && (self.cmp)(&self.nodes[next as usize].key, key) == Ordering::Less {
                node = next;
            } else if level == 0 {
                return node;
            } else {
                level -= 1;
            }
        }
    }

    fn find_last(&self) -> u32 {
        let mut node = HEAD;
        let mut level = self.max_height - 1;
        loop {
            let next = self.nodes[node as usize].next[level];
            if next != NIL {
                node = next;
            } else if level == 0 {
                return node;
            } else {
                level -= 1;
            }
        }
    }

    /// Inserts `key` into the list.
    pub fn insert(&mut self, key: Vec<u8>) {
        let mut prev = [HEAD; MAX_HEIGHT];
        let _ = self.find_greater_or_equal(&key, Some(&mut prev));

        let height = self.random_height();
        if height > self.max_height {
            for slot in prev.iter_mut().take(height).skip(self.max_height) {
                *slot = HEAD;
            }
            self.max_height = height;
        }

        let new_index = self.nodes.len() as u32;
        self.approximate_memory += key.len() + std::mem::size_of::<Node>();
        let mut node = Node {
            key,
            next: [NIL; MAX_HEIGHT],
        };
        for (level, &prev_idx) in prev.iter().enumerate().take(height) {
            node.next[level] = self.nodes[prev_idx as usize].next[level];
        }
        self.nodes.push(node);
        for (level, &prev_idx) in prev.iter().enumerate().take(height) {
            self.nodes[prev_idx as usize].next[level] = new_index;
        }
    }

    /// Returns `true` if a key equal to `key` (under the comparator) exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        let node = self.find_greater_or_equal(key, None);
        node != NIL && (self.cmp)(&self.nodes[node as usize].key, key) == Ordering::Equal
    }

    /// Creates a cursor over the list.
    pub fn iter(&self) -> SkipListIterator<'_> {
        SkipListIterator {
            list: self,
            node: NIL,
        }
    }

    // Index-based cursor primitives, used by the crate's owned iterator
    // (which stores a node index next to an `Arc` of the list instead of a
    // borrow). `u32::MAX` means "not positioned".

    /// Index of the first entry, or the invalid index if empty.
    pub(crate) fn first_index(&self) -> u32 {
        self.nodes[HEAD as usize].next[0]
    }

    /// Index of the last entry, or the invalid index if empty.
    pub(crate) fn last_index(&self) -> u32 {
        let last = self.find_last();
        if last == HEAD {
            NIL
        } else {
            last
        }
    }

    /// Index of the first entry `>= key`.
    pub(crate) fn seek_index(&self, key: &[u8]) -> u32 {
        self.find_greater_or_equal(key, None)
    }

    /// Index of the entry after `node`.
    pub(crate) fn next_index(&self, node: u32) -> u32 {
        self.nodes[node as usize].next[0]
    }

    /// Index of the entry before `node`, or the invalid index.
    pub(crate) fn prev_index(&self, node: u32) -> u32 {
        let prev = self.find_less_than(&self.nodes[node as usize].key);
        if prev == HEAD {
            NIL
        } else {
            prev
        }
    }

    /// Whether `node` addresses a real entry.
    pub(crate) fn index_valid(&self, node: u32) -> bool {
        node != NIL && node != HEAD
    }

    /// The key stored at `node`.
    pub(crate) fn key_at(&self, node: u32) -> &[u8] {
        &self.nodes[node as usize].key
    }
}

/// A cursor over a [`SkipList`].
pub struct SkipListIterator<'a> {
    list: &'a SkipList,
    node: u32,
}

impl<'a> SkipListIterator<'a> {
    /// Returns `true` when positioned at an entry.
    pub fn valid(&self) -> bool {
        self.node != NIL && self.node != HEAD
    }

    /// The key at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is not valid.
    pub fn key(&self) -> &'a [u8] {
        assert!(self.valid(), "key() on invalid skiplist iterator");
        &self.list.nodes[self.node as usize].key
    }

    /// Positions at the first entry `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.node = self.list.find_greater_or_equal(key, None);
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = self.list.nodes[HEAD as usize].next[0];
    }

    /// Positions at the last entry.
    pub fn seek_to_last(&mut self) {
        let last = self.list.find_last();
        self.node = if last == HEAD { NIL } else { last };
    }

    /// Advances to the next entry.
    pub fn next(&mut self) {
        assert!(self.valid(), "next() on invalid skiplist iterator");
        self.node = self.list.nodes[self.node as usize].next[0];
    }

    /// Moves to the previous entry.
    pub fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid skiplist iterator");
        let key = &self.list.nodes[self.node as usize].key;
        let prev = self.list.find_less_than(key);
        self.node = if prev == HEAD { NIL } else { prev };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytewise(a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    #[test]
    fn empty_list_has_no_entries() {
        let list = SkipList::new(bytewise);
        assert!(list.is_empty());
        assert!(!list.contains(b"x"));
        let mut iter = list.iter();
        iter.seek_to_first();
        assert!(!iter.valid());
        iter.seek_to_last();
        assert!(!iter.valid());
    }

    #[test]
    fn inserted_keys_are_found_and_sorted() {
        let mut list = SkipList::new(bytewise);
        let keys = [b"m".to_vec(), b"a".to_vec(), b"z".to_vec(), b"c".to_vec()];
        for k in &keys {
            list.insert(k.clone());
        }
        assert_eq!(list.len(), 4);
        for k in &keys {
            assert!(list.contains(k));
        }
        assert!(!list.contains(b"q"));

        let mut iter = list.iter();
        iter.seek_to_first();
        let mut seen = Vec::new();
        while iter.valid() {
            seen.push(iter.key().to_vec());
            iter.next();
        }
        let mut expected = keys.to_vec();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn seek_positions_at_lower_bound() {
        let mut list = SkipList::new(bytewise);
        for k in ["b", "d", "f"] {
            list.insert(k.as_bytes().to_vec());
        }
        let mut iter = list.iter();
        iter.seek(b"c");
        assert!(iter.valid());
        assert_eq!(iter.key(), b"d");
        iter.seek(b"d");
        assert_eq!(iter.key(), b"d");
        iter.seek(b"g");
        assert!(!iter.valid());
    }

    #[test]
    fn prev_walks_backwards() {
        let mut list = SkipList::new(bytewise);
        for k in ["a", "b", "c"] {
            list.insert(k.as_bytes().to_vec());
        }
        let mut iter = list.iter();
        iter.seek_to_last();
        assert_eq!(iter.key(), b"c");
        iter.prev();
        assert_eq!(iter.key(), b"b");
        iter.prev();
        assert_eq!(iter.key(), b"a");
        iter.prev();
        assert!(!iter.valid());
    }

    #[test]
    fn large_random_insertions_stay_sorted() {
        use rand::seq::SliceRandom;
        let mut keys: Vec<Vec<u8>> = (0..5000u32)
            .map(|i| format!("{i:08}").into_bytes())
            .collect();
        let mut rng = StdRng::seed_from_u64(42);
        keys.shuffle(&mut rng);
        let mut list = SkipList::new(bytewise);
        for k in &keys {
            list.insert(k.clone());
        }
        let mut iter = list.iter();
        iter.seek_to_first();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while iter.valid() {
            if let Some(p) = &prev {
                assert!(p.as_slice() < iter.key());
            }
            prev = Some(iter.key().to_vec());
            count += 1;
            iter.next();
        }
        assert_eq!(count, 5000);
        assert!(list.approximate_memory_usage() > 5000 * 8);
    }
}
