//! A concurrent, arena-backed probabilistic skip list keyed by byte strings.
//!
//! This is the LevelDB memtable design: nodes are bump-allocated into
//! append-only arena segments, forward links are atomic, and the structure is
//! never mutated in place — inserts only splice new nodes in. That gives the
//! two properties the engines build on:
//!
//! * **Wait-free readers.** `get` and long-lived cursors traverse the list
//!   with acquire loads while a writer inserts concurrently; no locks, no
//!   copies, no invalidation. A reader simply may or may not see entries
//!   inserted after it started (the engines' sequence-number filtering makes
//!   such entries invisible anyway).
//! * **Single mutation point.** Inserts are serialised by a small internal
//!   writer mutex (the engines additionally funnel all writes through one
//!   group-commit leader, so the mutex is uncontended in practice).
//!
//! # Memory layout and safety
//!
//! Nodes live in power-of-two-growing segments addressed by a stable `u32`
//! index; keys live in a separate append-only byte arena. Neither allocation
//! is ever moved or freed before the list drops, so raw pointers taken at
//! insert time stay valid for the list's lifetime. Publication follows the
//! classic release/acquire protocol: a node's key bytes and initial links
//! are fully written *before* the node's index is release-stored into a
//! predecessor's `next` pointer, and readers only learn about a node through
//! an acquire load of such a pointer — which makes the key bytes visible and
//! data-race-free even though they are plain (non-atomic) memory.

use std::cmp::Ordering;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering as MemOrder};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum tower height. With a branching factor of 4 this comfortably
/// supports hundreds of millions of entries.
const MAX_HEIGHT: usize = 12;
/// Probability denominator for growing a tower by one level.
const BRANCHING: u32 = 4;

/// Index of the head sentinel node.
const HEAD: u32 = 0;
/// Sentinel meaning "no node".
const NIL: u32 = u32::MAX;

/// log2 of the first node segment's length.
const SEG0_BITS: u32 = 6;
/// Nodes in the first segment; segment `s` holds `SEG0_LEN << s` nodes.
const SEG0_LEN: u32 = 1 << SEG0_BITS;
/// Segment count; 26 doubling segments cover the whole `u32` index space.
const NUM_SEGMENTS: usize = 26;
/// Highest valid node index (exclusive): the capacity of all segments,
/// which also keeps real indices clear of the `NIL` sentinel.
const MAX_NODES: u32 = ((1u32 << NUM_SEGMENTS) - 1) << SEG0_BITS;

/// Byte size of a fresh key-arena block (bigger keys get their own block).
const KEY_BLOCK_BYTES: usize = 4096;

/// Maps a node index to its (segment, offset-within-segment) pair.
fn locate(index: u32) -> (usize, usize) {
    let bucket = (index >> SEG0_BITS) + 1;
    let segment = (31 - bucket.leading_zeros()) as usize;
    let segment_start = ((1u32 << segment) - 1) << SEG0_BITS;
    (segment, (index - segment_start) as usize)
}

/// Number of nodes segment `segment` holds.
fn segment_len(segment: usize) -> usize {
    (SEG0_LEN as usize) << segment
}

/// A tower node. `key_ptr`/`key_len`/`height` are written exactly once,
/// before the node is published; `next` is only ever touched atomically.
struct Node {
    key_ptr: *const u8,
    key_len: u32,
    /// Tower height (levels `0..height` participate in the list). Only used
    /// by diagnostics/tests; traversal never needs it.
    height: u8,
    next: [AtomicU32; MAX_HEIGHT],
}

fn empty_node() -> Node {
    Node {
        key_ptr: ptr::null(),
        key_len: 0,
        height: 0,
        next: [(); MAX_HEIGHT].map(|_| AtomicU32::new(NIL)),
    }
}

impl Node {
    /// The node's key. Only valid on published (or head) nodes.
    fn key(&self) -> &[u8] {
        if self.key_ptr.is_null() {
            return &[];
        }
        // Safety: `key_ptr`/`key_len` were written before the node was
        // published and address key-arena bytes that live (immutably) as
        // long as the list.
        unsafe { std::slice::from_raw_parts(self.key_ptr, self.key_len as usize) }
    }
}

/// Append-only arena for key bytes. Blocks are raw allocations so the writer
/// can keep filling a block while readers hold pointers into its already
/// published prefix (no `&mut` is ever formed over published bytes).
struct KeyArena {
    /// Every block ever allocated, as `(pointer, capacity)`, for `Drop`.
    blocks: Vec<(*mut u8, usize)>,
    /// Bump pointer into the last block.
    current: *mut u8,
    /// Bytes left in the last block.
    remaining: usize,
}

impl KeyArena {
    fn new() -> Self {
        KeyArena {
            blocks: Vec::new(),
            current: ptr::null_mut(),
            remaining: 0,
        }
    }

    /// Copies `bytes` into the arena and returns a pointer valid for the
    /// arena's lifetime.
    fn allocate(&mut self, bytes: &[u8]) -> *const u8 {
        if self.remaining < bytes.len() {
            let capacity = bytes.len().max(KEY_BLOCK_BYTES);
            let block: Box<[u8]> = vec![0u8; capacity].into_boxed_slice();
            let pointer = Box::into_raw(block) as *mut u8;
            self.blocks.push((pointer, capacity));
            self.current = pointer;
            self.remaining = capacity;
        }
        let out = self.current as *const u8;
        // Safety: `current` has at least `bytes.len()` bytes of exclusive,
        // never-published space left in its block.
        unsafe {
            ptr::copy_nonoverlapping(bytes.as_ptr(), self.current, bytes.len());
            self.current = self.current.add(bytes.len());
        }
        self.remaining -= bytes.len();
        out
    }
}

impl Drop for KeyArena {
    fn drop(&mut self) {
        for &(pointer, capacity) in &self.blocks {
            // Safety: each entry came from `Box::into_raw` of a boxed slice
            // with exactly this capacity and is freed exactly once.
            unsafe {
                drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                    pointer, capacity,
                )));
            }
        }
    }
}

// Safety: the raw pointers are plain heap allocations; the arena is only
// mutated under the list's writer mutex.
unsafe impl Send for KeyArena {}

/// Writer-side state, serialised by a mutex: the tower-height RNG, the key
/// arena's bump pointer, and the next free node slot.
struct WriterState {
    rng: StdRng,
    keys: KeyArena,
    /// Index the next inserted node will occupy.
    next_index: u32,
}

/// Source of per-list RNG seeds: successive lists draw successive counter
/// values, so two memtables created back to back get different tower-height
/// sequences while any fixed creation order stays deterministic for tests.
static NEXT_LIST_SEED: AtomicU64 = AtomicU64::new(1);

fn next_seed() -> u64 {
    let n = NEXT_LIST_SEED.fetch_add(1, MemOrder::Relaxed);
    0xdead_beef ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// An append-only ordered map over byte-string keys, safe to read from any
/// number of threads while one writer inserts.
///
/// Keys are compared with a caller-provided comparator so the memtable can
/// order encoded internal keys (user key ascending, sequence descending).
/// Duplicate keys are not detected — the memtable never inserts the same
/// internal key twice because sequence numbers are unique.
pub struct SkipList {
    /// Node segments; `segments[s]` points at `SEG0_LEN << s` nodes once
    /// allocated (null before). Published with release stores.
    segments: [AtomicPtr<Node>; NUM_SEGMENTS],
    max_height: AtomicUsize,
    len: AtomicUsize,
    approximate_memory: AtomicUsize,
    cmp: fn(&[u8], &[u8]) -> Ordering,
    writer: Mutex<WriterState>,
}

// Safety: shared state is only reached through atomics; node and key memory
// is written before publication and immutable afterwards (see module docs);
// the writer-only raw pointers are guarded by the writer mutex.
unsafe impl Send for SkipList {}
unsafe impl Sync for SkipList {}

impl SkipList {
    /// Creates an empty skip list ordered by `cmp`.
    pub fn new(cmp: fn(&[u8], &[u8]) -> Ordering) -> Self {
        let list = SkipList {
            segments: [(); NUM_SEGMENTS].map(|_| AtomicPtr::new(ptr::null_mut())),
            max_height: AtomicUsize::new(1),
            len: AtomicUsize::new(0),
            approximate_memory: AtomicUsize::new(std::mem::size_of::<Node>()),
            cmp,
            writer: Mutex::new(WriterState {
                rng: StdRng::seed_from_u64(next_seed()),
                keys: KeyArena::new(),
                next_index: 1,
            }),
        };
        // Allocate segment 0 and claim slot 0 as the head sentinel (its
        // `empty_node` defaults — null key, all-NIL links — are exactly the
        // head's state).
        list.ensure_segment(0);
        list
    }

    /// Number of entries in the list.
    pub fn len(&self) -> usize {
        self.len.load(MemOrder::Acquire)
    }

    /// Returns `true` if the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of memory used by keys and nodes.
    pub fn approximate_memory_usage(&self) -> usize {
        self.approximate_memory.load(MemOrder::Relaxed)
    }

    /// Allocates the backing storage for `segment` if it does not exist yet.
    /// Caller must hold the writer mutex (or be constructing the list).
    fn ensure_segment(&self, segment: usize) {
        if !self.segments[segment].load(MemOrder::Relaxed).is_null() {
            return;
        }
        let nodes: Box<[Node]> = (0..segment_len(segment)).map(|_| empty_node()).collect();
        let pointer = Box::into_raw(nodes) as *mut Node;
        // Release pairs with the acquire loads readers use to find nodes, so
        // a published node index always implies a visible segment pointer.
        self.segments[segment].store(pointer, MemOrder::Release);
    }

    /// Raw pointer to the node slot at `index`, which must be allocated.
    /// Derived from the segment base (not a shared reference) so the writer
    /// may initialise an unpublished slot through it.
    fn node_ptr(&self, index: u32) -> *mut Node {
        let (segment, offset) = locate(index);
        let base = self.segments[segment].load(MemOrder::Acquire);
        debug_assert!(!base.is_null(), "node index {index} not allocated");
        // Safety: `offset` is in bounds for the segment by construction.
        unsafe { base.add(offset) }
    }

    /// Shared reference to the node at `index`, which must be allocated.
    fn node(&self, index: u32) -> &Node {
        // Safety: indices only come from the head constant or published next
        // pointers, both of which happen-after the segment's release store;
        // published nodes are never mutated except through their atomics.
        unsafe { &*self.node_ptr(index) }
    }

    fn random_height(rng: &mut StdRng) -> usize {
        let mut height = 1;
        while height < MAX_HEIGHT && rng.gen_ratio(1, BRANCHING) {
            height += 1;
        }
        height
    }

    fn key_is_after_node(&self, key: &[u8], node: u32) -> bool {
        node != NIL && node != HEAD && (self.cmp)(self.node(node).key(), key) == Ordering::Less
    }

    /// Finds the first node `>= key`; fills `prev`, per level, with the last
    /// node whose key is `< key`.
    fn find_greater_or_equal(&self, key: &[u8], prev: Option<&mut [u32; MAX_HEIGHT]>) -> u32 {
        let mut scratch = [HEAD; MAX_HEIGHT];
        let prev = match prev {
            Some(p) => p,
            None => &mut scratch,
        };
        let mut node = HEAD;
        let mut level = self.max_height.load(MemOrder::Relaxed) - 1;
        loop {
            let next = self.node(node).next[level].load(MemOrder::Acquire);
            if self.key_is_after_node(key, next) {
                node = next;
            } else {
                prev[level] = node;
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    fn find_less_than(&self, key: &[u8]) -> u32 {
        let mut node = HEAD;
        let mut level = self.max_height.load(MemOrder::Relaxed) - 1;
        loop {
            let next = self.node(node).next[level].load(MemOrder::Acquire);
            if next != NIL && (self.cmp)(self.node(next).key(), key) == Ordering::Less {
                node = next;
            } else if level == 0 {
                return node;
            } else {
                level -= 1;
            }
        }
    }

    fn find_last(&self) -> u32 {
        let mut node = HEAD;
        let mut level = self.max_height.load(MemOrder::Relaxed) - 1;
        loop {
            let next = self.node(node).next[level].load(MemOrder::Acquire);
            if next != NIL {
                node = next;
            } else if level == 0 {
                return node;
            } else {
                level -= 1;
            }
        }
    }

    /// Inserts `key` into the list.
    ///
    /// Inserts are serialised internally; readers and cursors keep working
    /// concurrently and observe the new entry atomically once it is linked.
    pub fn insert(&self, key: &[u8]) {
        let mut writer = self.writer.lock();

        let mut prev = [HEAD; MAX_HEIGHT];
        let _ = self.find_greater_or_equal(key, Some(&mut prev));

        let height = Self::random_height(&mut writer.rng);
        let max_height = self.max_height.load(MemOrder::Relaxed);
        if height > max_height {
            for slot in prev.iter_mut().take(height).skip(max_height) {
                *slot = HEAD;
            }
            // Racing readers that observe the new height before the new
            // links simply fall through NIL head pointers at the top levels.
            self.max_height.store(height, MemOrder::Relaxed);
        }

        let index = writer.next_index;
        assert!(
            index < MAX_NODES,
            "skiplist is full ({MAX_NODES} entries); \
             write_buffer_size must rotate memtables long before this"
        );
        let (segment, _) = locate(index);
        self.ensure_segment(segment);
        let key_ptr = writer.keys.allocate(key);

        let raw = self.node_ptr(index);
        // Safety: slot `index` is unpublished — no reader can reach it — so
        // these raw one-time writes race with nothing. Going through the raw
        // segment pointer (never `&mut`) keeps readers of *other* nodes in
        // the same segment untouched by aliasing rules.
        unsafe {
            ptr::addr_of_mut!((*raw).key_ptr).write(key_ptr);
            ptr::addr_of_mut!((*raw).key_len).write(key.len() as u32);
            ptr::addr_of_mut!((*raw).height).write(height as u8);
        }
        for (level, &prev_index) in prev.iter().enumerate().take(height) {
            let successor = self.node(prev_index).next[level].load(MemOrder::Relaxed);
            // Safety: as above — the slot is unpublished; the store itself
            // is atomic so later concurrent readers are race-free.
            unsafe { &(*raw).next[level] }.store(successor, MemOrder::Relaxed);
        }
        // Publish bottom-up: once a reader can see the node at some level,
        // every lower level (and the key bytes) is already in place.
        for (level, &prev_index) in prev.iter().enumerate().take(height) {
            self.node(prev_index).next[level].store(index, MemOrder::Release);
        }

        writer.next_index = index + 1;
        self.approximate_memory
            .fetch_add(key.len() + std::mem::size_of::<Node>(), MemOrder::Relaxed);
        self.len.fetch_add(1, MemOrder::Release);
    }

    /// Returns `true` if a key equal to `key` (under the comparator) exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        let node = self.find_greater_or_equal(key, None);
        node != NIL && (self.cmp)(self.node(node).key(), key) == Ordering::Equal
    }

    /// Creates a cursor over the list.
    pub fn iter(&self) -> SkipListIterator<'_> {
        SkipListIterator {
            list: self,
            node: NIL,
        }
    }

    // Index-based cursor primitives, used by the crate's owned iterator
    // (which stores a node index next to an `Arc` of the list instead of a
    // borrow). Indices stay valid forever — the arena never moves or frees
    // nodes — so a cursor can outlive arbitrarily many concurrent inserts.
    // `u32::MAX` means "not positioned".

    /// Index of the first entry, or the invalid index if empty.
    pub(crate) fn first_index(&self) -> u32 {
        self.node(HEAD).next[0].load(MemOrder::Acquire)
    }

    /// Index of the last entry, or the invalid index if empty.
    pub(crate) fn last_index(&self) -> u32 {
        let last = self.find_last();
        if last == HEAD {
            NIL
        } else {
            last
        }
    }

    /// Index of the first entry `>= key`.
    pub(crate) fn seek_index(&self, key: &[u8]) -> u32 {
        self.find_greater_or_equal(key, None)
    }

    /// Index of the entry after `node`.
    pub(crate) fn next_index(&self, node: u32) -> u32 {
        self.node(node).next[0].load(MemOrder::Acquire)
    }

    /// Index of the entry before `node`, or the invalid index.
    pub(crate) fn prev_index(&self, node: u32) -> u32 {
        let prev = self.find_less_than(self.node(node).key());
        if prev == HEAD {
            NIL
        } else {
            prev
        }
    }

    /// Whether `node` addresses a real entry.
    pub(crate) fn index_valid(&self, node: u32) -> bool {
        node != NIL && node != HEAD
    }

    /// The key stored at `node`.
    pub(crate) fn key_at(&self, node: u32) -> &[u8] {
        self.node(node).key()
    }

    /// Tower height of the entry at `node` (diagnostics/tests only).
    #[allow(dead_code)]
    pub(crate) fn height_at(&self, node: u32) -> usize {
        self.node(node).height as usize
    }
}

impl Drop for SkipList {
    fn drop(&mut self) {
        for (segment, slot) in self.segments.iter_mut().enumerate() {
            let pointer = *slot.get_mut();
            if pointer.is_null() {
                continue;
            }
            // Safety: the pointer came from `Box::into_raw` of a boxed slice
            // of exactly `segment_len(segment)` nodes; `&mut self` proves no
            // reader remains.
            unsafe {
                drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                    pointer,
                    segment_len(segment),
                )));
            }
        }
    }
}

/// A cursor over a [`SkipList`].
///
/// The cursor never invalidates: the list is append-only, so a held position
/// stays live across any number of concurrent inserts.
pub struct SkipListIterator<'a> {
    list: &'a SkipList,
    node: u32,
}

impl<'a> SkipListIterator<'a> {
    /// Returns `true` when positioned at an entry.
    pub fn valid(&self) -> bool {
        self.node != NIL && self.node != HEAD
    }

    /// The key at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is not valid.
    pub fn key(&self) -> &'a [u8] {
        assert!(self.valid(), "key() on invalid skiplist iterator");
        self.list.node(self.node).key()
    }

    /// Positions at the first entry `>= key`.
    pub fn seek(&mut self, key: &[u8]) {
        self.node = self.list.find_greater_or_equal(key, None);
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = self.list.first_index();
    }

    /// Positions at the last entry.
    pub fn seek_to_last(&mut self) {
        self.node = self.list.last_index();
    }

    /// Advances to the next entry.
    pub fn next(&mut self) {
        assert!(self.valid(), "next() on invalid skiplist iterator");
        self.node = self.list.next_index(self.node);
    }

    /// Moves to the previous entry.
    pub fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid skiplist iterator");
        self.node = self.list.prev_index(self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn bytewise(a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    #[test]
    fn empty_list_has_no_entries() {
        let list = SkipList::new(bytewise);
        assert!(list.is_empty());
        assert!(!list.contains(b"x"));
        let mut iter = list.iter();
        iter.seek_to_first();
        assert!(!iter.valid());
        iter.seek_to_last();
        assert!(!iter.valid());
    }

    #[test]
    fn inserted_keys_are_found_and_sorted() {
        let list = SkipList::new(bytewise);
        let keys = [b"m".to_vec(), b"a".to_vec(), b"z".to_vec(), b"c".to_vec()];
        for k in &keys {
            list.insert(k);
        }
        assert_eq!(list.len(), 4);
        for k in &keys {
            assert!(list.contains(k));
        }
        assert!(!list.contains(b"q"));

        let mut iter = list.iter();
        iter.seek_to_first();
        let mut seen = Vec::new();
        while iter.valid() {
            seen.push(iter.key().to_vec());
            iter.next();
        }
        let mut expected = keys.to_vec();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn seek_positions_at_lower_bound() {
        let list = SkipList::new(bytewise);
        for k in ["b", "d", "f"] {
            list.insert(k.as_bytes());
        }
        let mut iter = list.iter();
        iter.seek(b"c");
        assert!(iter.valid());
        assert_eq!(iter.key(), b"d");
        iter.seek(b"d");
        assert_eq!(iter.key(), b"d");
        iter.seek(b"g");
        assert!(!iter.valid());
    }

    #[test]
    fn prev_walks_backwards() {
        let list = SkipList::new(bytewise);
        for k in ["a", "b", "c"] {
            list.insert(k.as_bytes());
        }
        let mut iter = list.iter();
        iter.seek_to_last();
        assert_eq!(iter.key(), b"c");
        iter.prev();
        assert_eq!(iter.key(), b"b");
        iter.prev();
        assert_eq!(iter.key(), b"a");
        iter.prev();
        assert!(!iter.valid());
    }

    #[test]
    fn large_random_insertions_stay_sorted() {
        use rand::seq::SliceRandom;
        let mut keys: Vec<Vec<u8>> = (0..5000u32)
            .map(|i| format!("{i:08}").into_bytes())
            .collect();
        let mut rng = StdRng::seed_from_u64(42);
        keys.shuffle(&mut rng);
        let list = SkipList::new(bytewise);
        for k in &keys {
            list.insert(k);
        }
        let mut iter = list.iter();
        iter.seek_to_first();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while iter.valid() {
            if let Some(p) = &prev {
                assert!(p.as_slice() < iter.key());
            }
            prev = Some(iter.key().to_vec());
            count += 1;
            iter.next();
        }
        assert_eq!(count, 5000);
        assert!(list.approximate_memory_usage() > 5000 * 8);
    }

    #[test]
    fn keys_longer_than_an_arena_block_are_stored_intact() {
        let list = SkipList::new(bytewise);
        let huge = vec![b'x'; KEY_BLOCK_BYTES * 3 + 17];
        list.insert(b"small");
        list.insert(&huge);
        assert!(list.contains(&huge));
        let mut iter = list.iter();
        iter.seek_to_last();
        assert_eq!(iter.key(), huge.as_slice());
    }

    #[test]
    fn segment_indexing_is_contiguous_and_non_overlapping() {
        let mut expected = (0usize, 0usize);
        for index in 0..200_000u32 {
            let (segment, offset) = locate(index);
            assert_eq!((segment, offset), expected, "index {index}");
            expected = if offset + 1 == segment_len(segment) {
                (segment + 1, 0)
            } else {
                (segment, offset + 1)
            };
        }
    }

    #[test]
    fn successive_lists_draw_different_tower_sequences() {
        // The per-list seed counter must keep two back-to-back memtables
        // from replaying identical tower heights (the old fixed-seed bug).
        let first = SkipList::new(bytewise);
        let second = SkipList::new(bytewise);
        for i in 0..512u32 {
            let key = format!("{i:08}").into_bytes();
            first.insert(&key);
            second.insert(&key);
        }
        let heights = |list: &SkipList| -> Vec<usize> {
            (1..=512u32).map(|index| list.height_at(index)).collect()
        };
        assert_ne!(
            heights(&first),
            heights(&second),
            "independent lists replayed the same height sequence"
        );
    }

    #[test]
    fn concurrent_readers_see_a_consistent_sorted_prefix() {
        // Satellite: interleaved insert/iterate. A writer streams ordered
        // numeric keys while reader threads continuously iterate; every scan
        // must observe a sorted sequence and never lose an entry it has
        // already seen (the list is append-only).
        const TOTAL: u32 = 20_000;
        let list = Arc::new(SkipList::new(bytewise));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            for _ in 0..3 {
                let list = Arc::clone(&list);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut max_seen = 0usize;
                    while !stop.load(MemOrder::Acquire) {
                        let mut iter = list.iter();
                        iter.seek_to_first();
                        let mut count = 0usize;
                        let mut prev: Option<Vec<u8>> = None;
                        while iter.valid() {
                            let key = iter.key();
                            if let Some(p) = &prev {
                                assert!(p.as_slice() < key, "scan went out of order");
                            }
                            prev = Some(key.to_vec());
                            count += 1;
                            iter.next();
                        }
                        assert!(count >= max_seen, "a published entry disappeared");
                        max_seen = count;
                    }
                });
            }
            for i in 0..TOTAL {
                list.insert(format!("{i:08}").as_bytes());
            }
            stop.store(true, MemOrder::Release);
        });

        assert_eq!(list.len(), TOTAL as usize);
    }

    #[test]
    fn concurrent_seeks_during_inserts_find_published_keys() {
        let list = Arc::new(SkipList::new(bytewise));
        let published = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            for _ in 0..2 {
                let list = Arc::clone(&list);
                let published = Arc::clone(&published);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(MemOrder::Acquire) {
                        let upto = published.load(MemOrder::Acquire);
                        if upto == 0 {
                            continue;
                        }
                        // Every key published before we started must be
                        // findable mid-insert-stream.
                        let probe = upto / 2;
                        let key = format!("{probe:08}");
                        assert!(
                            list.contains(key.as_bytes()),
                            "published key {probe} not found"
                        );
                    }
                });
            }
            for i in 0..10_000usize {
                list.insert(format!("{i:08}").as_bytes());
                published.store(i + 1, MemOrder::Release);
            }
            stop.store(true, MemOrder::Release);
        });
    }
}
