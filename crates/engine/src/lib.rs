//! The shared engine chassis both LSM-family stores are built on.
//!
//! PebblesDB's core claim is that the FLSM *generalizes* the LSM: guards
//! partition each level, and a classic LSM is the degenerate case where every
//! level has exactly one implicit guard (section 3 of the paper). This crate
//! makes that framing structural. Everything the two engines share — DB
//! open/recovery (CURRENT/MANIFEST/WAL replay), the group-commit write path,
//! `make_room_for_write` and memtable rotation, the dedicated flush thread,
//! the compaction worker pool, pending-output/live-file garbage collection,
//! the snapshot list and stats plumbing — lives here once, in
//! [`EngineCore`]/[`EngineDb`], parameterized by a [`ShapePolicy`].
//!
//! A policy supplies only what actually differs between tree shapes:
//!
//! * which version-set (MANIFEST) format organises the levels,
//! * how point gets and cursors route through a version,
//! * how compaction jobs are picked, executed and committed, and
//! * write/read observations (guard selection, seek-triggered compaction).
//!
//! The FLSM engine (`pebblesdb` crate) implements the guarded policy; the
//! baseline LSM (`pebblesdb-lsm`) implements the one-implicit-guard-per-level
//! policy. Future subsystems (sharding, key-value separation, alternative
//! tiering) are written once against this chassis instead of twice per
//! engine.

pub mod catalog;
pub mod cdc;
pub mod chassis;
pub mod meta;
pub mod policy;
pub mod vlog;

pub use cdc::{ChangeLog, TailBatch, TailRead};
pub use chassis::{
    CfState, ClaimedJob, EngineChangeStream, EngineCore, EngineDb, EngineShared, EngineState,
};
pub use meta::{FileMetaData, FileMetaDataEdit};
pub use policy::{
    EngineIo, JobClaim, PolicyCtx, ShapePolicy, VersionMeta, VersionOf, VersionSetOps,
};
pub use vlog::VlogGcReport;
