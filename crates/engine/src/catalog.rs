//! The column-family catalog: the database-level manifest of namespaces.
//!
//! Each column family owns its own version set (CURRENT/MANIFEST) — the
//! default family in the database root, every other family in a `cf-<id>`
//! subdirectory — but the *set of families* is database-level metadata. It
//! lives in the `CFS` file at the root: a WAL-format log of create/drop
//! edits, CRC-protected and torn-tail-safe like every other manifest in the
//! workspace.
//!
//! ```text
//! CFS record := 0x01 varint32(id) varstring(name)   -- create family
//!             | 0x02 varint32(id)                   -- drop family
//!             | 0x03 varint32(next_id)              -- id floor (never reused)
//! ```
//!
//! Lifecycle and crash windows:
//!
//! * `create_cf` appends a create edit (synced) *before* the family's
//!   directory and version set are initialised. A crash in between leaves a
//!   catalog entry without a directory; reopen initialises the empty family
//!   then — creation is idempotent from the catalog's point of view.
//! * `drop_cf` appends a drop edit (synced) *before* the family's directory
//!   is deleted. A crash in between leaves an orphaned `cf-<id>` directory
//!   that reopen reaps (ids are never reused, so the directory is provably
//!   dead).
//! * On reopen the log is compacted: the surviving state is rewritten to
//!   `CFS.rewrite` and atomically renamed over `CFS` (directory synced), so
//!   the file does not grow with dead edits.
//!
//! A database that never creates a second family has no `CFS` file at all —
//! the single-namespace layout on disk is byte-identical to the
//! pre-column-family layout.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pebblesdb_common::coding::{put_length_prefixed_slice, put_varint32, Decoder};
use pebblesdb_common::{CfId, Error, Result, DEFAULT_CF_NAME};
use pebblesdb_env::Env;
use pebblesdb_wal::{LogReader, LogWriter};

const TAG_CREATE: u8 = 1;
const TAG_DROP: u8 = 2;
const TAG_NEXT_ID: u8 = 3;

/// The catalog file name inside the database root.
pub const CATALOG_FILE: &str = "CFS";

/// Returns the path of the catalog file inside `root`.
pub fn catalog_file_name(root: &Path) -> PathBuf {
    root.join(CATALOG_FILE)
}

/// Returns the directory of column family `id` (the root for the default).
pub fn cf_dir(root: &Path, id: CfId) -> PathBuf {
    if id == 0 {
        root.to_path_buf()
    } else {
        root.join(format!("cf-{id}"))
    }
}

/// The recovered catalog state: live families plus the id floor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogData {
    /// Live families `(id, name)` in id order; always starts with the
    /// default family.
    pub cfs: Vec<(CfId, String)>,
    /// The next id to allocate; dropped ids below it are never reused, so
    /// WAL records of a dropped family can never be mistaken for a new one.
    pub next_cf_id: CfId,
}

impl Default for CatalogData {
    fn default() -> Self {
        CatalogData {
            cfs: vec![(0, DEFAULT_CF_NAME.to_string())],
            next_cf_id: 1,
        }
    }
}

/// Reads the catalog from `root`, replaying create/drop edits in order.
///
/// A missing file means "default family only" — the pre-column-family
/// layout.
pub fn read(env: &dyn Env, root: &Path) -> Result<CatalogData> {
    let path = catalog_file_name(root);
    let mut data = CatalogData::default();
    if !env.file_exists(&path) {
        return Ok(data);
    }
    let file = env.new_sequential_file(&path)?;
    let mut reader = LogReader::new(file);
    // A torn tail ends replay, exactly like WAL recovery: the edit being
    // appended at the crash never committed.
    while let Ok(Some(record)) = reader.read_record() {
        let mut dec = Decoder::new(&record);
        let Ok(tag) = dec.read_bytes(1) else { break };
        match tag[0] {
            TAG_CREATE => {
                let id = dec.read_varint32()?;
                let name = dec.read_length_prefixed_slice()?;
                let name = String::from_utf8(name.to_vec())
                    .map_err(|_| Error::corruption("non-utf8 column family name"))?;
                data.cfs.retain(|(existing, _)| *existing != id);
                data.cfs.push((id, name));
                data.next_cf_id = data.next_cf_id.max(id + 1);
            }
            TAG_DROP => {
                let id = dec.read_varint32()?;
                data.cfs.retain(|(existing, _)| *existing != id);
            }
            TAG_NEXT_ID => {
                let next = dec.read_varint32()?;
                data.next_cf_id = data.next_cf_id.max(next);
            }
            other => {
                return Err(Error::corruption(format!(
                    "unknown column family catalog tag {other}"
                )));
            }
        }
    }
    data.cfs.sort_by_key(|(id, _)| *id);
    Ok(data)
}

fn create_record(id: CfId, name: &str) -> Vec<u8> {
    let mut out = vec![TAG_CREATE];
    put_varint32(&mut out, id);
    put_length_prefixed_slice(&mut out, name.as_bytes());
    out
}

fn drop_record(id: CfId) -> Vec<u8> {
    let mut out = vec![TAG_DROP];
    put_varint32(&mut out, id);
    out
}

fn next_id_record(next: CfId) -> Vec<u8> {
    let mut out = vec![TAG_NEXT_ID];
    put_varint32(&mut out, next);
    out
}

/// An open, appendable catalog.
pub struct Catalog {
    env: Arc<dyn Env>,
    root: PathBuf,
    writer: LogWriter,
}

impl Catalog {
    /// Writes a compacted snapshot of `data` and atomically installs it as
    /// the live catalog, returning a handle that can append further edits.
    ///
    /// Safe against a crash at any point: the rename is the commit, and the
    /// root directory is synced after it.
    pub fn rewrite(env: Arc<dyn Env>, root: &Path, data: &CatalogData) -> Result<Catalog> {
        let tmp = root.join(format!("{CATALOG_FILE}.rewrite"));
        let file = env.new_writable_file(&tmp)?;
        let mut writer = LogWriter::new(file);
        writer.add_record(&next_id_record(data.next_cf_id))?;
        for (id, name) in &data.cfs {
            if *id != 0 {
                writer.add_record(&create_record(*id, name))?;
            }
        }
        writer.sync()?;
        env.rename_file(&tmp, &catalog_file_name(root))?;
        env.sync_dir(root)?;
        // The writer's handle survives the rename (same inode / same
        // in-memory buffer), so later appends land in the live `CFS`.
        Ok(Catalog {
            env,
            root: root.to_path_buf(),
            writer,
        })
    }

    /// Appends (and syncs) a create edit. This is the creation commit point.
    pub fn append_create(&mut self, id: CfId, name: &str) -> Result<()> {
        self.writer.add_record(&create_record(id, name))?;
        self.writer.sync()
    }

    /// Appends (and syncs) a drop edit. This is the drop commit point; the
    /// family's directory may be deleted only after this returns.
    pub fn append_drop(&mut self, id: CfId) -> Result<()> {
        self.writer.add_record(&drop_record(id))?;
        self.writer.sync()
    }

    /// The environment this catalog writes through (for tests).
    pub fn env(&self) -> &Arc<dyn Env> {
        &self.env
    }

    /// The database root this catalog lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::MemEnv;

    #[test]
    fn missing_catalog_means_default_family_only() {
        let env = MemEnv::new();
        let data = read(&env, Path::new("/db")).unwrap();
        assert_eq!(data, CatalogData::default());
        assert!(!env.file_exists(&catalog_file_name(Path::new("/db"))));
    }

    #[test]
    fn edits_roundtrip_through_rewrite_and_appends() {
        let env = Arc::new(MemEnv::new());
        let root = Path::new("/db");
        let mut catalog = Catalog::rewrite(
            Arc::clone(&env) as Arc<dyn Env>,
            root,
            &CatalogData::default(),
        )
        .unwrap();
        catalog.append_create(1, "users").unwrap();
        catalog.append_create(2, "posts").unwrap();
        catalog.append_drop(1).unwrap();

        let data = read(env.as_ref(), root).unwrap();
        assert_eq!(
            data.cfs,
            vec![(0, "default".to_string()), (2, "posts".to_string())]
        );
        assert_eq!(data.next_cf_id, 3);

        // A rewrite compacts the dead edits but preserves the id floor.
        let mut catalog = Catalog::rewrite(Arc::clone(&env) as Arc<dyn Env>, root, &data).unwrap();
        catalog.append_create(3, "tags").unwrap();
        let data = read(env.as_ref(), root).unwrap();
        assert_eq!(data.cfs.len(), 3);
        assert_eq!(data.next_cf_id, 4);
    }

    #[test]
    fn torn_tail_drops_only_the_last_edit() {
        let env = Arc::new(MemEnv::new());
        let root = Path::new("/db");
        let mut catalog = Catalog::rewrite(
            Arc::clone(&env) as Arc<dyn Env>,
            root,
            &CatalogData::default(),
        )
        .unwrap();
        catalog.append_create(1, "users").unwrap();
        catalog.append_create(2, "posts").unwrap();
        drop(catalog);

        let path = catalog_file_name(root);
        let size = env.file_size(&path).unwrap() as usize;
        env.truncate_file(&path, size - 3).unwrap();
        let data = read(env.as_ref(), root).unwrap();
        assert_eq!(
            data.cfs,
            vec![(0, "default".to_string()), (1, "users".to_string())]
        );
        // The torn create's id was never committed, so the floor stays at 2.
        assert_eq!(data.next_cf_id, 2);
    }

    #[test]
    fn cf_dirs_are_root_for_default_and_numbered_subdirs_otherwise() {
        let root = Path::new("/db");
        assert_eq!(cf_dir(root, 0), root);
        assert_eq!(cf_dir(root, 7), root.join("cf-7"));
    }
}
