//! Per-column-family value-log state: the active appender the group-commit
//! leader writes through, the sealed/retired file registries the garbage
//! collector works from, and the pointer-resolving reader cache shared with
//! in-flight gets and cursors.
//!
//! Lifecycle of a vlog file:
//!
//! 1. **Active** — created lazily by the first commit that separates a value
//!    for the family; appended to by commit leaders (never by readers).
//! 2. **Sealed** — rotated out once it reaches
//!    [`StoreOptions::vlog_file_size`](pebblesdb_common::StoreOptions), or
//!    found on disk at open (recovered files are never appended to again, so
//!    a torn tail from a crash stays inert).
//! 3. **Retired** — a GC pass relocated every live record out of it; the
//!    file is deleted once no pinned snapshot can still observe a pointer
//!    into it.
//!
//! Vlog files are deliberately **not** recorded in the MANIFEST: the
//! directory listing is the registry (like WAL segments), their numbers are
//! re-marked used at open, and `remove_obsolete_files` always keeps them —
//! their lifecycle is owned by [`vlog_gc`](crate::chassis::EngineDb::vlog_gc),
//! which is the only code that ever deletes one.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::{parse_file_name, vlog_file_name, FileType};
use pebblesdb_common::key::SequenceNumber;
use pebblesdb_common::vlog::{
    encode_vlog_record_with, parse_vlog_record, ValuePointer, ValueResolver,
};
use pebblesdb_common::{CompressionStats, CompressionType, Error, Result};
use pebblesdb_env::{Env, RandomAccessFile, WritableFile};

/// Open readers a family's cache keeps before evicting; pointer resolution
/// is one ranged read, so a handful of hot files covers real workloads.
const READER_CACHE_CAP: usize = 8;

/// Allocation bound handed to the codec when inflating a compressed vlog
/// value: record lengths are `u32`, so no legitimate value exceeds this.
const MAX_DECOMPRESSED_VALUE: usize = u32::MAX as usize;

/// One family's value-log registry, owned by its
/// [`CfState`](crate::chassis::CfState) under the engine state mutex.
pub struct CfVlog {
    /// The appender, taken by the group-commit leader exactly like the
    /// engine's `state.log`; `None` until the first separated write.
    pub active: Option<ActiveVlog>,
    /// Append-complete files by number, with their sizes: rotation targets
    /// and everything recovered from the directory at open.
    pub sealed: BTreeMap<u64, u64>,
    /// Files a GC pass emptied, keyed by number, with the sequence at which
    /// they were retired: deletable once the snapshot floor passes it.
    pub retired: BTreeMap<u64, SequenceNumber>,
    /// The pointer-resolving reader cache; cloned out of the state lock by
    /// point gets, cursors and the GC scan.
    pub readers: Arc<VlogReaderCache>,
}

impl CfVlog {
    /// Builds the registry for a family rooted at `dir`, scanning the
    /// directory for vlog files a previous incarnation left behind. Every
    /// recovered file is sealed — appending to a file with a possibly-torn
    /// tail would bury the tear mid-file where it reads as corruption.
    pub fn recover(
        env: &Arc<dyn Env>,
        dir: &Path,
        counters: &Arc<EngineCounters>,
        compression_stats: &Arc<CompressionStats>,
    ) -> Result<(CfVlog, Vec<u64>)> {
        let mut sealed = BTreeMap::new();
        let mut numbers = Vec::new();
        for name in env.children(dir)? {
            let Some((FileType::ValueLog, number)) = parse_file_name(&name) else {
                continue;
            };
            let size = env.file_size(&dir.join(&name))?;
            sealed.insert(number, size);
            numbers.push(number);
        }
        Ok((
            CfVlog {
                active: None,
                sealed,
                retired: BTreeMap::new(),
                readers: Arc::new(VlogReaderCache {
                    env: Arc::clone(env),
                    dir: dir.to_path_buf(),
                    counters: Arc::clone(counters),
                    compression_stats: Arc::clone(compression_stats),
                    readers: Mutex::new(HashMap::new()),
                }),
            },
            numbers,
        ))
    }

    /// An empty registry for a freshly created family.
    pub fn new(
        env: &Arc<dyn Env>,
        dir: &Path,
        counters: &Arc<EngineCounters>,
        compression_stats: &Arc<CompressionStats>,
    ) -> CfVlog {
        CfVlog {
            active: None,
            sealed: BTreeMap::new(),
            retired: BTreeMap::new(),
            readers: Arc::new(VlogReaderCache {
                env: Arc::clone(env),
                dir: dir.to_path_buf(),
                counters: Arc::clone(counters),
                compression_stats: Arc::clone(compression_stats),
                readers: Mutex::new(HashMap::new()),
            }),
        }
    }
}

/// The live appender of one family's value log.
pub struct ActiveVlog {
    /// The file's number (allocated by the family's version set).
    pub number: u64,
    /// The open file handle.
    pub file: Box<dyn WritableFile>,
    /// Bytes appended so far — the offset the next record lands at.
    pub offset: u64,
}

/// The writer-side handle a commit leader carries into its unlocked IO
/// section for one touched family: the current appender (if any), plus the
/// pre-allocated number to rotate to. File creation and the seal of the
/// previous file both happen unlocked; only the number allocation needed
/// the state mutex.
pub struct TakenVlog {
    /// The family this appender belongs to.
    pub cf: pebblesdb_common::CfId,
    /// The family's environment.
    pub env: Arc<dyn Env>,
    /// The family's directory.
    pub dir: PathBuf,
    /// The appender taken from the family, if one was already open.
    pub active: Option<ActiveVlog>,
    /// A fresh file number, present when the leader must open a new file
    /// (first separated write, or the current file crossed the size cap).
    pub open_number: Option<u64>,
    /// Files sealed during this group: `(number, final size)`, reinstalled
    /// into the family's registry after the IO section.
    pub sealed: Vec<(u64, u64)>,
    /// Whether this group appended any record (gates the flush/sync calls).
    pub dirty: bool,
    /// Codec applied to values before they are framed into records.
    pub compression: CompressionType,
    /// Where compressed/skipped byte counts are recorded.
    pub compression_stats: Arc<CompressionStats>,
}

impl TakenVlog {
    /// Appends one `(key, value)` record, opening or rotating the file if
    /// the taker said so, and returns the tree-resident pointer.
    pub fn append(
        &mut self,
        key: &[u8],
        value: &[u8],
        counters: &EngineCounters,
    ) -> Result<ValuePointer> {
        if let Some(number) = self.open_number.take() {
            if let Some(mut old) = self.active.take() {
                old.file.sync()?;
                old.file.close()?;
                self.sealed.push((old.number, old.offset));
            }
            let path = vlog_file_name(&self.dir, number);
            let file = self.env.new_writable_file(&path)?;
            // The file's directory entry must be durable before any synced
            // WAL record carries a pointer into it; one directory sync per
            // rotation is noise next to the 64 MiB of appends it covers.
            self.env.sync_dir(&self.dir)?;
            self.active = Some(ActiveVlog {
                number,
                file,
                offset: 0,
            });
        }
        let active = self
            .active
            .as_mut()
            .expect("taken appender always has a file by now");
        // Separated values are exactly the large, often-compressible blobs
        // block compression never sees (they bypass the sstable), so they
        // get the same codec-with-fallback treatment here. The flag rides
        // in the record header under the CRC; raw records are bit-identical
        // to the pre-compression format.
        let record = match self.compression {
            CompressionType::None => encode_vlog_record_with(key, value, false),
            CompressionType::Lz => match pebblesdb_compress::compress_if_worthwhile(value) {
                Some(compressed) => {
                    self.compression_stats
                        .record_compressed(value.len() as u64, compressed.len() as u64);
                    encode_vlog_record_with(key, &compressed, true)
                }
                None => {
                    self.compression_stats.record_skipped();
                    encode_vlog_record_with(key, value, false)
                }
            },
        };
        let pointer = ValuePointer {
            file_number: active.number,
            offset: active.offset,
            len: record.len() as u32,
        };
        active.file.append(&record)?;
        active.offset += record.len() as u64;
        self.dirty = true;
        counters.add_vlog_bytes(record.len() as u64);
        Ok(pointer)
    }

    /// Flushes (and on `sync` groups, fsyncs) the appends of this group.
    /// Runs **before** the WAL write: a pointer must never be durable in the
    /// log while the record it names is still in a user-space buffer.
    pub fn finish_group(&mut self, sync: bool) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(active) = self.active.as_mut() {
            active.file.flush()?;
            if sync {
                active.file.sync()?;
            }
        }
        Ok(())
    }
}

/// A bounded cache of open vlog readers, doubling as the
/// [`ValueResolver`] handed to cursors.
pub struct VlogReaderCache {
    env: Arc<dyn Env>,
    dir: PathBuf,
    counters: Arc<EngineCounters>,
    compression_stats: Arc<CompressionStats>,
    readers: Mutex<HashMap<u64, Arc<dyn RandomAccessFile>>>,
}

impl VlogReaderCache {
    /// The open reader for `file_number`, opening (and caching) it on miss.
    fn reader(&self, file_number: u64) -> Result<Arc<dyn RandomAccessFile>> {
        let mut readers = self.readers.lock();
        if let Some(reader) = readers.get(&file_number) {
            self.counters.record_vlog_resolution(true);
            return Ok(Arc::clone(reader));
        }
        self.counters.record_vlog_resolution(false);
        let reader = self
            .env
            .new_random_access_file(&vlog_file_name(&self.dir, file_number))?;
        if readers.len() >= READER_CACHE_CAP {
            // Evict the lowest-numbered (coldest: vlog numbers grow with
            // time, and GC always drains the oldest file first) entry.
            if let Some(&coldest) = readers.keys().min() {
                readers.remove(&coldest);
            }
        }
        readers.insert(file_number, Arc::clone(&reader));
        Ok(reader)
    }

    /// Drops the cached reader of a deleted file.
    pub fn evict(&self, file_number: u64) {
        self.readers.lock().remove(&file_number);
    }

    /// Reads a whole vlog file (for the GC scan), bypassing the cache so
    /// the scan does not evict the readers point gets are using.
    pub fn read_file(&self, file_number: u64) -> Result<Vec<u8>> {
        let file = self
            .env
            .new_random_access_file(&vlog_file_name(&self.dir, file_number))?;
        let len = file.len()?;
        file.read(0, len as usize)
    }
}

impl ValueResolver for VlogReaderCache {
    fn resolve(&self, pointer: &ValuePointer) -> Result<Vec<u8>> {
        let reader = self.reader(pointer.file_number)?;
        let data = reader.read(pointer.offset, pointer.len as usize)?;
        if data.len() < pointer.len as usize {
            return Err(Error::corruption(format!(
                "vlog file {:06} ends inside the record at offset {}",
                pointer.file_number, pointer.offset
            )));
        }
        let record = parse_vlog_record(&data)?;
        if record.compressed {
            let start = std::time::Instant::now();
            let value = pebblesdb_compress::decompress(record.value, MAX_DECOMPRESSED_VALUE)?;
            self.compression_stats
                .add_decompress_micros(start.elapsed().as_micros() as u64);
            Ok(value)
        } else {
            Ok(record.value.to_vec())
        }
    }
}

/// What one [`vlog_gc`](crate::chassis::EngineDb::vlog_gc) pass did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VlogGcReport {
    /// Sealed files scanned (at most one per family per pass).
    pub scanned_files: u64,
    /// Live records rewritten through the commit path.
    pub relocated: u64,
    /// Value bytes those relocations carried.
    pub relocated_bytes: u64,
    /// Records left in place because their live version occupies the very
    /// sequence slot the pass reserved — only reachable when an external
    /// allocator (a sharded coordinator) numbers writes into the engine;
    /// the next pass, with a fresh slot, collects them.
    pub skipped: u64,
    /// Retired files whose deletion finally went through.
    pub reclaimed_files: u64,
}
