//! Sstable metadata shared by every level organization.
//!
//! [`FileMetaData`] describes one live table; both the guard-organised FLSM
//! version set and the sorted-run LSM version set reference tables through
//! it, so it lives in the chassis crate rather than in either engine.

use std::sync::atomic::{AtomicI64, Ordering as AtomicOrdering};

use pebblesdb_common::key::InternalKey;

/// Metadata describing one live sstable.
#[derive(Debug)]
pub struct FileMetaData {
    /// The file number (also the file name).
    pub number: u64,
    /// File size in bytes.
    pub file_size: u64,
    /// Smallest internal key stored in the file.
    pub smallest: InternalKey,
    /// Largest internal key stored in the file.
    pub largest: InternalKey,
    /// Seeks allowed before the file becomes a compaction candidate
    /// (LevelDB-style seek compaction).
    pub allowed_seeks: AtomicI64,
}

impl FileMetaData {
    /// Creates metadata for a new file.
    pub fn new(number: u64, file_size: u64, smallest: InternalKey, largest: InternalKey) -> Self {
        // One seek is "worth" roughly 16 KiB of compaction IO (LevelDB
        // heuristic): larger files tolerate more seeks before compaction.
        let allowed = ((file_size / 16384).max(100)) as i64;
        FileMetaData {
            number,
            file_size,
            smallest,
            largest,
            allowed_seeks: AtomicI64::new(allowed),
        }
    }

    /// Returns `true` if the file's key range overlaps `[begin, end]` in user
    /// key space. `None` bounds are unbounded.
    pub fn overlaps_user_range(&self, begin: Option<&[u8]>, end: Option<&[u8]>) -> bool {
        let file_smallest = self.smallest.user_key();
        let file_largest = self.largest.user_key();
        if let Some(begin) = begin {
            if file_largest < begin {
                return false;
            }
        }
        if let Some(end) = end {
            if file_smallest > end {
                return false;
            }
        }
        true
    }

    /// Decrements the seek allowance, returning `true` when it hits zero.
    pub fn record_seek(&self) -> bool {
        self.allowed_seeks.fetch_sub(1, AtomicOrdering::Relaxed) == 1
    }
}

/// The serialisable subset of [`FileMetaData`] carried in a version edit.
#[derive(Debug, Clone)]
pub struct FileMetaDataEdit {
    /// File number.
    pub number: u64,
    /// File size in bytes.
    pub file_size: u64,
    /// Smallest internal key.
    pub smallest: Vec<u8>,
    /// Largest internal key.
    pub largest: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::ValueType;

    fn meta(smallest: &str, largest: &str) -> FileMetaData {
        FileMetaData::new(
            7,
            1000,
            InternalKey::new(smallest.as_bytes(), 5, ValueType::Value),
            InternalKey::new(largest.as_bytes(), 1, ValueType::Value),
        )
    }

    #[test]
    fn overlap_checks_cover_bounds() {
        let file = meta("c", "m");
        assert!(file.overlaps_user_range(None, None));
        assert!(file.overlaps_user_range(Some(b"a"), Some(b"d")));
        assert!(file.overlaps_user_range(Some(b"m"), None));
        assert!(!file.overlaps_user_range(Some(b"n"), None));
        assert!(!file.overlaps_user_range(None, Some(b"b")));
    }

    #[test]
    fn seek_allowance_fires_once() {
        let file = meta("a", "b");
        let mut fired = 0;
        for _ in 0..200 {
            if file.record_seek() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
    }
}
