//! The [`ShapePolicy`] trait: everything that differs between tree shapes.
//!
//! The chassis ([`crate::chassis`]) owns the write pipeline, the flush
//! thread, the compaction worker pool and the garbage collector; a policy
//! plugs in the level *organization* — how a version routes reads, how
//! compaction work is picked and committed, and which per-key observations
//! the write path must make (guard selection in the FLSM).

use std::collections::BTreeSet;
use std::sync::Arc;

use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::key::{LookupKey, SequenceNumber};
use pebblesdb_common::vlog::LookupValue;
use pebblesdb_common::{ReadOptions, Result, StoreOptions};
use pebblesdb_env::Env;
use pebblesdb_sstable::TableCache;

use crate::meta::FileMetaData;

/// The IO handles one column family runs against, shared by the chassis and
/// its policy: the environment, the family's directory, the open options and
/// the family's table cache. Built once per family at open/create time; the
/// default family's directory is the database root. Cloning is cheap (two
/// `Arc`s, a path and the options) and is how background jobs carry their
/// IO handles outside the state mutex.
#[derive(Clone)]
pub struct EngineIo {
    /// The filesystem abstraction.
    pub env: Arc<dyn Env>,
    /// The database directory.
    pub db_path: std::path::PathBuf,
    /// The options the store was opened with.
    pub options: StoreOptions,
    /// Open sstable readers plus the shared block cache.
    pub table_cache: Arc<TableCache>,
}

/// Aggregate facts the chassis needs from a version snapshot, independent of
/// how the version organises its levels.
pub trait VersionMeta {
    /// Number of level-0 files (drives write back-pressure).
    fn level0_len(&self) -> usize;
    /// Total bytes across all live files.
    fn total_bytes(&self) -> u64;
    /// Total number of live files.
    fn num_files(&self) -> usize;
    /// Sizes of every live file.
    fn file_sizes(&self) -> Vec<u64>;
    /// Human-readable per-level summary.
    fn level_summary(&self) -> String;
}

/// The version-set (MANIFEST) operations the chassis drives. Implemented by
/// `FlsmVersionSet` (guard-organised levels) and `VersionSet` (sorted runs).
pub trait VersionSetOps: Send + 'static {
    /// The immutable snapshot type this set produces.
    type Version: VersionMeta + Send + Sync + 'static;

    /// Recovers state from the MANIFEST named by `CURRENT`.
    fn recover(&mut self) -> Result<()>;
    /// Writes a fresh MANIFEST for an empty database.
    fn create_new(&mut self) -> Result<()>;
    /// Write-ahead log number reflected in the current version.
    fn log_number(&self) -> u64;
    /// Sequence number of the most recent committed write.
    fn last_sequence(&self) -> SequenceNumber;
    /// Publishes a new last sequence (called by the group-commit leader).
    fn set_last_sequence(&mut self, seq: SequenceNumber);
    /// Allocates a new file number.
    fn new_file_number(&mut self) -> u64;
    /// Marks `number` as used (during recovery).
    fn mark_file_number_used(&mut self, number: u64);
    /// The file number of the live MANIFEST.
    fn manifest_number(&self) -> u64;
    /// The current version, pinned against file deletion.
    fn current(&mut self) -> Arc<Self::Version>;
    /// A read-only peek at the current version without registering a pin.
    fn current_unpinned(&self) -> &Arc<Self::Version>;
    /// Live file numbers plus whether a pinned old version contributed.
    fn live_files_and_pins(&mut self) -> (Vec<u64>, bool);
    /// Returns `true` if background compaction work is pending.
    fn needs_compaction(&self) -> bool;
    /// Commits the only edit shape the chassis itself produces: "switch to
    /// WAL `log_number`, optionally adding a level-0 table" (WAL rotation at
    /// open, recovery flushes, memtable flushes). Compaction edits are built
    /// by the policy, which knows the concrete edit type.
    fn commit_level0(&mut self, meta: Option<&FileMetaData>, log_number: Option<u64>)
        -> Result<()>;
}

/// The version type a policy's version set produces.
pub type VersionOf<P> = <<P as ShapePolicy>::Versions as VersionSetOps>::Version;

/// A claimed unit of compaction work, with the file numbers the chassis must
/// reserve: `input_numbers` keep other workers off the same inputs,
/// `output_numbers` keep the concurrent GC away from on-disk files no
/// version references yet.
pub struct JobClaim<J> {
    /// The policy-specific job description.
    pub job: J,
    /// File numbers of every input the job reads.
    pub input_numbers: Vec<u64>,
    /// Pre-allocated output file numbers.
    pub output_numbers: Vec<u64>,
}

/// Mutable access to the policy-relevant parts of the engine state, handed
/// to [`ShapePolicy::pick_job`] and [`ShapePolicy::commit_job`] under the
/// chassis state mutex.
pub struct PolicyCtx<'a, P: ShapePolicy> {
    /// The engine's version set.
    pub versions: &'a mut P::Versions,
    /// The policy's own mutable state (uncommitted guards, compaction
    /// pointers, pending seek requests, ...).
    pub state: &'a mut P::State,
    /// Input file numbers of every in-flight compaction job. A new job's
    /// inputs must not intersect this set.
    pub claimed_inputs: &'a BTreeSet<u64>,
    /// Versions superseded at or below this sequence are invisible to every
    /// live snapshot and may be garbage-collected by a merge.
    pub smallest_snapshot: SequenceNumber,
}

/// The shape of one engine: how levels are organised, read and compacted.
///
/// The same chassis instance drives the FLSM (guards per level) and the
/// classic LSM (one implicit guard per level) purely through this trait.
pub trait ShapePolicy: Send + Sync + Sized + 'static {
    /// The engine's version-set (MANIFEST machinery).
    type Versions: VersionSetOps;
    /// Per-store mutable policy state, kept inside the chassis state mutex.
    type State: Send + 'static;
    /// A fully described unit of compaction work.
    type Job: Send + 'static;

    /// The engine name reported in benchmark output.
    fn engine_name(&self) -> String;
    /// Creates the version set for the database directory.
    fn new_versions(&self, io: &EngineIo) -> Self::Versions;
    /// Creates the initial policy state.
    fn new_state(&self) -> Self::State;

    // ------------------------------------------------------------ write path

    /// Called once per write batch before it commits (FLSM: resets the
    /// consecutive-seek counter, section 4.2 of the paper).
    fn note_write(&self) {}

    /// Inspects one inserted key during the *unlocked* group-commit apply;
    /// whatever it returns is handed to [`ShapePolicy::absorb_observations`]
    /// under the state lock after the apply (FLSM: guard selection, a pure
    /// hash of the key).
    fn observe_key(&self, key: &[u8]) -> Option<(usize, Vec<u8>)> {
        let _ = key;
        None
    }

    /// Registers the keys observed by [`ShapePolicy::observe_key`] (FLSM:
    /// uncommitted guards for their level and all deeper ones).
    fn absorb_observations(&self, state: &mut Self::State, observed: Vec<(usize, Vec<u8>)>) {
        let _ = (state, observed);
    }

    // ------------------------------------------------------------- read path

    /// Point lookup in the on-disk structure (memtables were already
    /// consulted by the chassis). Returns the stored form of the newest
    /// visible version — an inline value or an unresolved vlog pointer; the
    /// chassis resolves pointers outside the state lock.
    fn get_in_version(
        &self,
        io: &EngineIo,
        version: &VersionOf<Self>,
        opts: &ReadOptions,
        key: &LookupKey,
    ) -> Result<Option<LookupValue>>;

    /// Appends the version's level iterators (level-0 files plus one lazy
    /// iterator per deeper level) to a cursor's child list.
    fn append_version_iterators(
        &self,
        io: &EngineIo,
        version: &VersionOf<Self>,
        opts: &ReadOptions,
        children: &mut Vec<Box<dyn DbIterator>>,
    ) -> Result<()>;

    /// Called on every cursor creation. Returning `true` asks the chassis to
    /// call [`ShapePolicy::arm_requested_compaction`] under the state lock
    /// and wake the worker pool (FLSM: the consecutive-seek trigger).
    fn note_seek(&self) -> bool {
        false
    }

    /// Arms the compaction requested by [`ShapePolicy::note_seek`].
    fn arm_requested_compaction(&self, state: &mut Self::State) {
        let _ = state;
    }

    // ------------------------------------------------------------ compaction

    /// Claims the next unit of compaction work whose inputs do not intersect
    /// `ctx.claimed_inputs`, or `None` when nothing is claimable. The chassis
    /// registers the claim's input and output numbers before releasing the
    /// state lock.
    fn pick_job(&self, io: &EngineIo, ctx: &mut PolicyCtx<'_, Self>)
        -> Option<JobClaim<Self::Job>>;

    /// Runs the job's IO. Called **without** the state mutex held; must not
    /// touch shared engine state.
    fn run_job_io(&self, io: &EngineIo, job: &Self::Job) -> Result<Vec<FileMetaData>>;

    /// Commits a finished job under the state lock (build the version edit,
    /// `log_and_apply` it, update policy state). Returns
    /// `(bytes_read, bytes_written)` for the compaction counters.
    fn commit_job(
        &self,
        ctx: &mut PolicyCtx<'_, Self>,
        job: &Self::Job,
        outputs: Vec<FileMetaData>,
    ) -> Result<(u64, u64)>;
}
