//! The engine chassis: the machinery every LSM-family store shares.
//!
//! [`EngineDb`] owns DB open/recovery (CURRENT/MANIFEST/WAL replay), the
//! group-commit write path, `make_room_for_write` + memtable rotation, a
//! dedicated flush thread (imm -> level 0 never queues behind a level
//! compaction), a pool of compaction workers that claim disjoint jobs
//! through the [`ShapePolicy`], pending-output/live-file garbage collection,
//! the snapshot list and stats assembly. The policy decides only *what* a
//! compaction job is and *how* reads route through a version.
//!
//! # Column families
//!
//! The chassis is natively multi-namespace: one [`EngineDb`] multiplexes any
//! number of column families over a **shared** WAL, group-commit queue and
//! sequence space, while each family ([`CfState`]) owns its memtable/imm
//! pair, its version set (MANIFEST) and its own policy shape state — the
//! guard tree for the FLSM, the leveled structure for the LSM. Implementing
//! the feature here means every [`ShapePolicy`] inherits it unchanged.
//!
//! * The default family (id 0) lives in the database root, so a
//!   single-namespace database has exactly the pre-column-family layout;
//!   family `n` lives in `cf-<n>/` with its own CURRENT/MANIFEST/sstables.
//! * WAL records carry a per-record family id (see
//!   [`WriteBatch`](pebblesdb_common::WriteBatch)); recovery replays each
//!   record into its family, skipping families dropped in the catalog.
//! * The set of families is committed through the [`crate::catalog`] log;
//!   create/drop edits are synced before any dependent file operation, and
//!   reopen reaps the directories of dropped families (ids are never
//!   reused).
//! * The flush thread picks the family with the **largest** immutable
//!   memtable, and compaction workers poll families hottest-first (pending
//!   compaction, then most level-0 files), so one hot namespace cannot
//!   starve the rest.
//! * A WAL segment is reclaimed only once *every* family's flushed state
//!   covers it (the minimum per-family log number); flushing one family
//!   also advances the log number of idle families so an inactive namespace
//!   does not pin logs forever.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use pebblesdb_common::cf::{CfOps, CfStats, ColumnFamilyHandle, Db};
use pebblesdb_common::commit::{CommitGroup, CommitQueue, Role};
use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::{
    log_file_name, parse_file_name, table_file_name, vlog_file_name, FileType,
};
use pebblesdb_common::iterator::{DbIterator, MergingIterator, PinnedIterator};
use pebblesdb_common::key::{InternalKey, LookupKey, SequenceNumber, ValueType};
use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
use pebblesdb_common::user_iter::UserIterator;
use pebblesdb_common::vlog::{iter_vlog_records, LookupValue, ValuePointer, ValueResolver};
use pebblesdb_common::{
    CfId, ChangeEvent, ChangeStream, Error, KvStore, ReadOptions, Result, StoreOptions, StoreStats,
    WriteBatch, WriteOptions,
};
use pebblesdb_skiplist::memtable::MemTableGet;
use pebblesdb_skiplist::MemTable;
use pebblesdb_sstable::{TableBuilder, TableCache};
use pebblesdb_wal::{LogReader, LogWriter, SegmentReplay};

use crate::catalog::{self, Catalog, CatalogData};
use crate::cdc::{ChangeLog, TailRead};
use crate::meta::FileMetaData;
use crate::policy::{
    EngineIo, JobClaim, PolicyCtx, ShapePolicy, VersionMeta, VersionOf, VersionSetOps,
};
use crate::vlog::{CfVlog, TakenVlog, VlogGcReport, VlogReaderCache};

/// A handle to an open store built on the chassis.
///
/// Cloneable via `Arc`; all methods take `&self` and are safe to call from
/// multiple threads. The store (background threads included) stays alive
/// while this handle *or any [`ColumnFamilyHandle`] minted from it* exists;
/// the last one dropped shuts the store down.
pub struct EngineDb<P: ShapePolicy> {
    shared: Arc<EngineShared<P>>,
}

/// The keep-alive unit behind [`EngineDb`] and every column-family handle:
/// the core plus the background threads, joined when the last owner drops.
pub struct EngineShared<P: ShapePolicy> {
    core: Arc<EngineCore<P>>,
    background_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl<P: ShapePolicy> Drop for EngineShared<P> {
    fn drop(&mut self) {
        self.core.shutting_down.store(true, Ordering::SeqCst);
        self.core.work_available.notify_all();
        self.core.flush_available.notify_all();
        for handle in self.background_threads.lock().drain(..) {
            // `join` only errs if the thread panicked, and the panic has
            // already printed; re-raising it from a destructor would abort
            // the process mid-unwind, so swallowing it here is deliberate.
            let _ = handle.join();
        }
    }
}

/// The shared core of an engine: IO handles, the policy, the mutexed state
/// and the background-thread rendezvous points.
pub struct EngineCore<P: ShapePolicy> {
    /// Environment, database root, options and the default family's cache.
    pub io: EngineIo,
    /// The shape policy (guarded FLSM or degenerate-guard LSM).
    pub policy: P,
    /// The mutex-protected engine state.
    pub state: Mutex<EngineState<P>>,
    /// Group-commit writer queue: concurrent writers enqueue batches, one
    /// leader merges the group and performs WAL IO outside `state`.
    commit_queue: CommitQueue,
    /// Wakes the compaction worker pool.
    work_available: Condvar,
    /// Wakes the dedicated flush thread (imm -> level 0 never queues behind
    /// a large level compaction).
    flush_available: Condvar,
    /// Wakes writers stalled in `make_room_for_write`, `flush` callers and
    /// `drop_cf` waiting out in-flight jobs.
    work_done: Condvar,
    shutting_down: AtomicBool,
    /// Cumulative operation counters (shared with the vlog reader caches,
    /// which record their hit/miss traffic outside the state mutex).
    pub counters: Arc<EngineCounters>,
    /// Live snapshot pins (store-wide: sequences are shared by families).
    pub snapshots: Arc<SnapshotList>,
    /// Live cursor pins. Tracked apart from `snapshots` on purpose: a cursor
    /// pins its version, so compaction's version dedup owes it nothing and
    /// must not be held back by one (a long-lived cursor would otherwise
    /// stall compaction convergence store-wide). Only value-log reclamation
    /// consults this list — a cursor resolves pointers as it streams, so the
    /// files its view can reach must outlive it.
    cursor_pins: Arc<SnapshotList>,
    /// Serialises value-log GC passes: two concurrent passes over the same
    /// file would relocate the same records into the same sequence slot.
    vlog_gc_lock: Mutex<()>,
    /// Change-data capture: the in-memory commit tail, WAL segment births
    /// and the registered stream cursors (see [`crate::cdc`]).
    change_log: Arc<ChangeLog>,
}

/// One column family's share of the engine state.
pub struct CfState<P: ShapePolicy> {
    /// The family's id (0 = default).
    pub id: CfId,
    /// The family's name.
    pub name: String,
    /// The family's IO handles (directory + table cache).
    pub io: EngineIo,
    /// The active memtable. Concurrent: the group-commit leader inserts via
    /// `&self` while `get` and streaming cursors read it lock-free, so the
    /// table is never cloned — when full it is frozen whole into `imm`.
    pub mem: Arc<MemTable>,
    /// The immutable memtable being flushed, if any.
    pub imm: Option<Arc<MemTable>>,
    /// The family's version set (MANIFEST machinery).
    pub versions: P::Versions,
    /// The policy's own mutable state (uncommitted guards, compaction
    /// pointers, pending seek requests, ...).
    pub policy: P::State,
    /// Input file numbers of this family's in-flight compaction jobs. A
    /// worker claiming new work never selects inputs that intersect this
    /// set, so concurrent jobs always operate on disjoint file subsets.
    /// File numbers are per-family (each version set allocates its own).
    pub claimed_inputs: BTreeSet<u64>,
    /// Output file numbers of this family's uncommitted jobs (flushes and
    /// compactions). `remove_obsolete_files` must never delete these: they
    /// are invisible to every version until their job commits.
    pub pending_outputs: BTreeSet<u64>,
    /// The WAL that was live when the active memtable was created. Once
    /// `imm` flushes, every record of this family in older WALs is covered
    /// by sstables, so this is the log number a flush commit publishes.
    pub mem_log_number: u64,
    /// Compaction jobs of this family currently claimed or running.
    pub active_jobs: usize,
    /// Whether the flush thread is writing this family's `imm` right now.
    pub flush_running: bool,
    /// Completed memtable flushes of this family.
    pub flushes: u64,
    /// Set by `drop_cf`: no new flushes, claims or writes; the family is
    /// removed once its in-flight work drains.
    pub dropping: bool,
    /// The family's value-log registry (key-value separation).
    pub vlog: CfVlog,
}

/// The mutable engine state, shared by writers and the background threads.
pub struct EngineState<P: ShapePolicy> {
    /// The live column families by id. Id 0 (the default) always exists.
    pub cfs: BTreeMap<CfId, CfState<P>>,
    /// Sequence number of the most recent committed write — shared by every
    /// family, so snapshots are consistent across namespaces. Mirrored into
    /// each family's version set right before its MANIFEST commits.
    pub last_sequence: SequenceNumber,
    /// The next column-family id to allocate; never reused after a drop.
    pub next_cf_id: CfId,
    /// The open column-family catalog, if this database has ever had a
    /// non-default family. `None` means the on-disk layout is exactly the
    /// single-namespace one.
    pub catalog: Option<Catalog>,
    /// The live write-ahead log, shared by every family.
    pub log: Option<LogWriter>,
    /// The live WAL's file number.
    pub log_file_number: u64,
    /// Compaction jobs currently claimed or running, across all families.
    pub active_compactions: usize,
    /// Set when the last GC pass ran while a read or cursor still pinned an
    /// old version (whose files it therefore kept); `flush` on a quiesced
    /// store rescans only in that case instead of on every call.
    pub gc_rescan_needed: bool,
    /// WAL files the last GC pass kept, maintained as a cheap backlog
    /// signal: idle families' recovery floors are advanced (one synced
    /// MANIFEST edit per family) only when the backlog shows old segments
    /// actually piling up, not on every flush.
    pub live_wal_files: usize,
    /// Set when a memtable rotation created a fresh WAL whose directory
    /// entry has not been fsynced yet. The next group-commit leader syncs
    /// the directory in its *unlocked* IO section before acknowledging any
    /// write against the new log — a directory fsync under the state mutex
    /// would stall every reader for its duration.
    pub wal_dir_unsynced: bool,
    /// First background error; poisons the store.
    pub bg_error: Option<Error>,
    /// First non-fatal background warning (a failed cleanup whose work is
    /// deferred, not lost). Never poisons the store; kept for inspection.
    pub bg_warning: Option<Error>,
}

impl<P: ShapePolicy> EngineState<P> {
    /// The state of family `id`, if it is live.
    pub fn cf(&self, id: CfId) -> Option<&CfState<P>> {
        self.cfs.get(&id)
    }

    /// Mutable state of family `id`, if it is live.
    pub fn cf_mut(&mut self, id: CfId) -> Option<&mut CfState<P>> {
        self.cfs.get_mut(&id)
    }

    /// The always-present default family.
    pub fn default_cf(&self) -> &CfState<P> {
        self.cfs.get(&0).expect("default family always exists")
    }

    /// The always-present default family, mutably.
    pub fn default_cf_mut(&mut self) -> &mut CfState<P> {
        self.cfs.get_mut(&0).expect("default family always exists")
    }

    /// The WAL number below which every family's data is flushed.
    fn min_log_number(&self) -> u64 {
        self.cfs
            .values()
            .map(|cf| cf.versions.log_number())
            .min()
            .unwrap_or(0)
    }
}

/// A compaction job claimed for one column family.
pub struct ClaimedJob<P: ShapePolicy> {
    /// The family the job belongs to.
    pub cf: CfId,
    /// The policy-level claim (inputs, outputs, job description).
    pub claim: JobClaim<P::Job>,
}

/// One key observation made during the unlocked group-commit apply, tagged
/// with the family it belongs to.
type CfObservation = (CfId, (usize, Vec<u8>));

/// WAL files tolerated on disk before idle families' recovery floors are
/// force-advanced (each advance costs one synced MANIFEST edit per family).
/// Hot families always advance their own floor for free when they flush, so
/// a single-namespace store never crosses this.
const WAL_BACKLOG_LIMIT: usize = 8;

fn missing_cf_error(cf: CfId) -> Error {
    Error::invalid_argument(format!("column family {cf} does not exist (dropped?)"))
}

/// Builds the IO handles of one family rooted at `dir`.
fn cf_io(env: &Arc<dyn pebblesdb_env::Env>, dir: &Path, options: &StoreOptions) -> EngineIo {
    let table_cache = Arc::new(TableCache::new(
        Arc::clone(env),
        dir.to_path_buf(),
        options.clone(),
        options.max_open_files,
    ));
    EngineIo {
        env: Arc::clone(env),
        db_path: dir.to_path_buf(),
        options: options.clone(),
        table_cache,
    }
}

impl<P: ShapePolicy> EngineDb<P> {
    /// Opens (creating if necessary) a store at `path` shaped by `policy`.
    pub fn open(
        policy: P,
        env: Arc<dyn pebblesdb_env::Env>,
        path: &Path,
        options: StoreOptions,
    ) -> Result<EngineDb<P>> {
        env.create_dir_all(path)?;
        let io = cf_io(&env, path, &options);

        let current_exists = env.file_exists(&pebblesdb_common::filename::current_file_name(path));
        if current_exists && io.options.error_if_exists {
            return Err(Error::invalid_argument("database already exists"));
        }
        if !current_exists && !io.options.create_if_missing {
            return Err(Error::invalid_argument("database does not exist"));
        }

        // The catalog names the families; a missing catalog file is the
        // single-namespace (pre-column-family) layout.
        let catalog_exists = env.file_exists(&catalog::catalog_file_name(path));
        let catalog_data = catalog::read(env.as_ref(), path)?;

        // Created before the families so their vlog reader caches can share
        // the store-wide counters.
        let counters = Arc::new(EngineCounters::new());

        let mut state: EngineState<P> = EngineState {
            cfs: BTreeMap::new(),
            last_sequence: 0,
            next_cf_id: catalog_data.next_cf_id,
            catalog: None,
            log: None,
            log_file_number: 0,
            active_compactions: 0,
            gc_rescan_needed: false,
            live_wal_files: 0,
            wal_dir_unsynced: false,
            bg_error: None,
            bg_warning: None,
        };

        for (id, name) in &catalog_data.cfs {
            let dir = catalog::cf_dir(path, *id);
            env.create_dir_all(&dir)?;
            let io = if *id == 0 {
                io.clone()
            } else {
                cf_io(&env, &dir, &options)
            };
            let mut versions = policy.new_versions(&io);
            if env.file_exists(&pebblesdb_common::filename::current_file_name(&dir)) {
                versions.recover()?;
            } else {
                // Either a fresh database or a family whose create edit
                // committed but whose directory was never initialised
                // (crash between the two); both start empty here.
                versions.create_new()?;
            }
            state.last_sequence = state.last_sequence.max(versions.last_sequence());
            // Vlog files are registered by directory listing, not in the
            // MANIFEST; their numbers must be re-marked used so a new file
            // never collides with a recovered one.
            let (vlog, vlog_numbers) =
                CfVlog::recover(&env, &dir, &counters, &options.compression_stats)?;
            for number in vlog_numbers {
                versions.mark_file_number_used(number);
            }
            state.cfs.insert(
                *id,
                CfState {
                    id: *id,
                    name: name.clone(),
                    io,
                    mem: Arc::new(MemTable::new()),
                    imm: None,
                    versions,
                    policy: policy.new_state(),
                    claimed_inputs: BTreeSet::new(),
                    pending_outputs: BTreeSet::new(),
                    mem_log_number: 0,
                    active_jobs: 0,
                    flush_running: false,
                    flushes: 0,
                    dropping: false,
                    vlog,
                },
            );
        }

        // Reap directories of families dropped in the catalog (a crash
        // between the drop edit and the directory removal leaves them). Ids
        // are never reused, so any `cf-<id>` with id below the floor and no
        // catalog entry is provably dead.
        for id in 1..state.next_cf_id {
            if !state.cfs.contains_key(&id)
                && env.remove_dir_all(&catalog::cf_dir(path, id)).is_err()
            {
                // The orphan holds no live data (its drop edit is
                // committed), so a failed reap costs only disk space;
                // count it so the leak stays observable, and leave the
                // directory for the next open to retry.
                counters.record_cleanup_failure();
            }
        }

        let mut wal_births = recover_wals(&io, &mut state)?;

        // Start a fresh WAL for new writes, making its directory entry
        // durable before any synced write is acknowledged against it.
        let log_number = state.default_cf_mut().versions.new_file_number();
        let log_file = env.new_writable_file(&log_file_name(path, log_number))?;
        env.sync_dir(path)?;
        state.log = Some(LogWriter::new(log_file));
        state.log_file_number = log_number;
        wal_births.insert(log_number, state.last_sequence);
        let last_sequence = state.last_sequence;
        for cf in state.cfs.values_mut() {
            cf.versions.set_last_sequence(last_sequence);
            cf.versions.commit_level0(None, Some(log_number))?;
            cf.mem_log_number = log_number;
        }

        // Compact the catalog (drops dead edits) and keep it open for
        // appends. A database that never had a second family keeps having
        // no catalog file at all.
        if catalog_exists {
            state.catalog = Some(Catalog::rewrite(Arc::clone(&env), path, &{
                CatalogData {
                    cfs: state
                        .cfs
                        .values()
                        .map(|cf| (cf.id, cf.name.clone()))
                        .collect(),
                    next_cf_id: state.next_cf_id,
                }
            })?);
        }

        let label = policy.engine_name().to_ascii_lowercase();
        let change_log = Arc::new(ChangeLog::new(
            options.cdc_tail_bytes,
            options.cdc_wal_retain_segments,
            wal_births,
            log_number,
            state.last_sequence,
        ));
        let inner = Arc::new(EngineCore {
            io,
            policy,
            state: Mutex::new(state),
            commit_queue: CommitQueue::new(),
            work_available: Condvar::new(),
            flush_available: Condvar::new(),
            work_done: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            counters,
            snapshots: SnapshotList::new(),
            cursor_pins: SnapshotList::new(),
            vlog_gc_lock: Mutex::new(()),
            change_log,
        });

        {
            let mut state = inner.state.lock();
            inner.remove_obsolete_files(&mut state);
        }

        // The background subsystem: one dedicated flush thread (imm -> L0
        // never waits behind a large compaction) plus a pool of
        // `compaction_threads` workers that claim disjoint jobs through the
        // policy. A policy whose jobs cannot be split (classic leveled
        // compaction) simply refuses to claim while another job is running.
        let mut handles = Vec::new();
        let flush_inner = Arc::clone(&inner);
        handles.push(
            std::thread::Builder::new()
                .name(format!("{label}-flush"))
                .spawn(move || EngineCore::flush_main(flush_inner))
                .map_err(|e| Error::internal(format!("spawn flush thread: {e}")))?,
        );
        for worker in 0..inner.io.options.compaction_threads.max(1) {
            let bg_inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{label}-compact-{worker}"))
                    .spawn(move || EngineCore::compaction_worker_main(bg_inner))
                    .map_err(|e| Error::internal(format!("spawn compaction thread: {e}")))?,
            );
        }

        Ok(EngineDb {
            shared: Arc::new(EngineShared {
                core: inner,
                background_threads: Mutex::new(handles),
            }),
        })
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.shared.core.io.options
    }

    /// The shared core (exposed for policy-specific accessors and tests).
    pub fn core(&self) -> &Arc<EngineCore<P>> {
        &self.shared.core
    }

    /// Runs `f` against the default family's current version under the
    /// state lock.
    pub fn with_current_version<R>(&self, f: impl FnOnce(&VersionOf<P>) -> R) -> R {
        let state = self.shared.core.state.lock();
        f(state.default_cf().versions.current_unpinned())
    }

    /// Writes a batch whose sequence numbers were already assigned by an
    /// external allocator (see [`CommitQueue::submit_presequenced`]). Used
    /// by the sharded coordinator, which owns the global sequence space.
    pub fn write_presequenced(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.shared.core.write_presequenced(opts, batch)
    }

    /// The sequence number of the most recent committed write.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.shared.core.state.lock().last_sequence
    }

    /// Runs one value-log garbage-collection pass (see
    /// [`EngineCore::vlog_gc`]) and reports what it did.
    pub fn vlog_gc(&self) -> Result<VlogGcReport> {
        self.shared.core.vlog_gc()
    }

    /// The store's namespace-scoped operations as a shareable trait object,
    /// for composite stores that route per-family operations here.
    pub fn cf_ops(&self) -> Arc<dyn CfOps> {
        Arc::clone(&self.shared) as Arc<dyn CfOps>
    }

    fn handle(&self, id: CfId, name: &str) -> ColumnFamilyHandle {
        ColumnFamilyHandle::new(Arc::clone(&self.shared) as Arc<dyn CfOps>, id, name)
    }

    /// Creates (or idempotently confirms) a column family under an explicit
    /// id. Replication mirrors the leader's catalog onto the follower, and
    /// WAL records route by id, so the ids must match exactly; `create_cf`'s
    /// own allocation cannot guarantee that.
    pub fn create_cf_with_id(&self, id: CfId, name: &str) -> Result<ColumnFamilyHandle> {
        let (id, name) = self.shared.core.create_cf_locked(name, Some(id))?;
        Ok(self.handle(id, &name))
    }

    /// Opens a cursor over the store's committed batches starting at
    /// `from_seq` (clamped to 1 — sequence 0 predates every write). Fails
    /// with `SequenceTruncated` when that history is already reclaimed.
    pub fn change_stream(&self, from_seq: SequenceNumber) -> Result<EngineChangeStream<P>> {
        EngineChangeStream::open(Arc::clone(&self.shared), from_seq)
    }
}

/// Replays every write-ahead log on disk, routing each record into its
/// column family's memtable (records a family's sstables already cover are
/// skipped per family). Returns the segment **births** for change-data
/// capture: for each log, the best lower bound on "last sequence committed
/// before this log was opened" that replay can reconstruct — exact when the
/// log's first batch was engine-sequenced (the overwhelmingly common case),
/// conservative (never too small, so WAL reclamation never under-keeps)
/// otherwise, because it also takes the running maximum across earlier logs.
fn recover_wals<P: ShapePolicy>(
    io: &EngineIo,
    state: &mut EngineState<P>,
) -> Result<BTreeMap<u64, SequenceNumber>> {
    let mut log_numbers: Vec<u64> = io
        .env
        .children(&io.db_path)?
        .iter()
        .filter_map(|name| parse_file_name(name))
        .filter(|(ty, _)| *ty == FileType::WriteAheadLog)
        .map(|(_, number)| number)
        .collect();
    log_numbers.sort_unstable();

    let mut births: BTreeMap<u64, SequenceNumber> = BTreeMap::new();
    // Highest batch-end sequence seen in earlier logs: every later log was
    // opened after those batches committed, so its birth is at least this.
    let mut running_max: SequenceNumber = 0;
    for number in log_numbers {
        state
            .default_cf_mut()
            .versions
            .mark_file_number_used(number);
        let file = io
            .env
            .new_sequential_file(&log_file_name(&io.db_path, number))?;
        let mut reader = LogReader::new(file);
        let mut first_batch_in_log = true;
        // A clean end or a torn tail both end replay of this log.
        while let Ok(Some(record)) = reader.read_record() {
            let batch = match WriteBatch::from_contents(record) {
                Ok(batch) => batch,
                Err(_) => break,
            };
            let base_seq = batch.sequence();
            if first_batch_in_log {
                first_batch_in_log = false;
                births.insert(number, running_max.max(base_seq.saturating_sub(1)));
            }
            let mut applied = 0u64;
            let mut touched: Vec<CfId> = Vec::new();
            for item in batch.iter() {
                let item = match item {
                    Ok(item) => item,
                    Err(_) => break,
                };
                // The record consumes its sequence slot whether or not it
                // still has a family to land in.
                applied += 1;
                let Some(cf) = state.cfs.get_mut(&item.cf) else {
                    continue; // family dropped in the catalog
                };
                if number < cf.versions.log_number() {
                    continue; // already covered by this family's sstables
                }
                cf.mem
                    .add(item.sequence, item.value_type, item.key, item.value);
                if !touched.contains(&item.cf) {
                    touched.push(item.cf);
                }
            }
            let last = base_seq + applied.saturating_sub(1);
            if last > state.last_sequence {
                state.last_sequence = last;
            }
            running_max = running_max.max(last);
            for cf_id in touched {
                let cf = state.cfs.get_mut(&cf_id).expect("touched family exists");
                if cf.mem.approximate_memory_usage() > io.options.write_buffer_size {
                    flush_recovery_memtable(state, cf_id)?;
                }
            }
        }
        // A log with no readable batches (rotated then never written, or a
        // tail torn at its very first record) still needs a birth so the
        // change log can account for it.
        births.entry(number).or_insert(running_max);
    }
    let nonempty: Vec<CfId> = state
        .cfs
        .iter()
        .filter(|(_, cf)| !cf.mem.is_empty())
        .map(|(id, _)| *id)
        .collect();
    for cf_id in nonempty {
        flush_recovery_memtable(state, cf_id)?;
    }
    Ok(births)
}

fn flush_recovery_memtable<P: ShapePolicy>(state: &mut EngineState<P>, cf_id: CfId) -> Result<()> {
    let last_sequence = state.last_sequence;
    let cf = state.cfs.get_mut(&cf_id).expect("recovering family exists");
    let number = cf.versions.new_file_number();
    let mem = std::mem::replace(&mut cf.mem, Arc::new(MemTable::new()));
    if let Some(meta) = build_table_from_memtable(&cf.io, &mem, number)? {
        cf.versions.set_last_sequence(last_sequence);
        cf.versions.commit_level0(Some(&meta), None)?;
    }
    Ok(())
}

/// Writes the contents of a memtable into a new level-0 sstable, syncing the
/// directory so the new entry is durable before a MANIFEST references it.
fn build_table_from_memtable(
    io: &EngineIo,
    mem: &MemTable,
    file_number: u64,
) -> Result<Option<FileMetaData>> {
    let mut iter = mem.iter();
    iter.seek_to_first();
    if !iter.valid() {
        return Ok(None);
    }
    let file = io
        .env
        .new_writable_file(&table_file_name(&io.db_path, file_number))?;
    // Flushes always land in level 0, so the per-level compression tier for
    // level 0 applies (typically raw: young tables are short-lived).
    let mut builder = TableBuilder::new_for_level(&io.options, file, 0);
    let mut smallest: Option<Vec<u8>> = None;
    let mut largest: Vec<u8> = Vec::new();
    while iter.valid() {
        if smallest.is_none() {
            smallest = Some(iter.key().to_vec());
        }
        largest = iter.key().to_vec();
        builder.add(iter.key(), iter.value())?;
        iter.next();
    }
    let file_size = builder.finish()?;
    io.env.sync_dir(&io.db_path)?;
    Ok(Some(FileMetaData::new(
        file_number,
        file_size,
        InternalKey::from_encoded(smallest.unwrap_or_default()),
        InternalKey::from_encoded(largest),
    )))
}

/// The sequence number a read issued with `opts` may observe: the requested
/// snapshot, clamped to the store's current sequence.
fn visible_sequence(opts: &ReadOptions, last_sequence: SequenceNumber) -> SequenceNumber {
    opts.snapshot
        .map(|snap| snap.min(last_sequence))
        .unwrap_or(last_sequence)
}

/// Rewrites one batch for key-value separation: every `Value` record at or
/// past `threshold` is appended to its family's vlog and replaced by a
/// pointer record. Returns `None` when nothing in the batch separates, so
/// the common all-small case never copies the batch. The rewrite preserves
/// the batch's sequence and record order (and therefore its count), which is
/// what keeps pre-sequenced batches valid.
fn separate_batch(
    batch: &WriteBatch,
    threshold: usize,
    vlogs: &mut BTreeMap<CfId, TakenVlog>,
    counters: &EngineCounters,
) -> Result<Option<WriteBatch>> {
    let mut needs = false;
    for record in batch.iter() {
        let record = record?;
        if record.value_type == ValueType::Value
            && record.value.len() >= threshold
            && vlogs.contains_key(&record.cf)
        {
            needs = true;
            break;
        }
    }
    if !needs {
        return Ok(None);
    }
    let mut out = WriteBatch::new();
    out.set_sequence(batch.sequence());
    for record in batch.iter() {
        let record = record?;
        match record.value_type {
            ValueType::Value if record.value.len() >= threshold => {
                match vlogs.get_mut(&record.cf) {
                    Some(vlog) => {
                        let pointer = vlog.append(record.key, record.value, counters)?;
                        out.put_pointer_cf(record.cf, record.key, &pointer.encode());
                    }
                    None => out.put_cf(record.cf, record.key, record.value),
                }
            }
            ValueType::Value => out.put_cf(record.cf, record.key, record.value),
            ValueType::Deletion => out.delete_cf(record.cf, record.key),
            // Pointer records only enter a batch through this function, but
            // a group may merge an already-rewritten batch in the future;
            // carry them through unchanged.
            ValueType::ValuePointer => out.put_pointer_cf(record.cf, record.key, record.value),
        }
    }
    Ok(Some(out))
}

impl<P: ShapePolicy> EngineCore<P> {
    // ---------------------------------------------------------------- write

    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Writes reset read-phase heuristics (FLSM: the consecutive-seek
        // counter — section 4.2, seek compaction targets read-only phases).
        self.policy.note_write();

        let mut user_bytes = 0u64;
        for record in batch.iter() {
            let record = record?;
            user_bytes += (record.key.len() + record.value.len()) as u64;
        }

        let ticket = self.commit_queue.submit(Some(batch), opts.sync);
        let result = match self.commit_queue.wait_turn(&ticket) {
            Role::Done(result) => result,
            Role::Leader(group) => self.commit(group),
        };
        if result.is_ok() {
            self.counters.add_user_bytes(user_bytes);
        }
        result
    }

    /// Writes a batch whose sequence numbers were assigned by an external
    /// allocator (a sharded coordinator). The batch rides the group-commit
    /// pipeline — sharing WAL appends and one fsync with other pre-sequenced
    /// writes — but is never merged or renumbered, and `last_sequence`
    /// advances to the batch's own (possibly out-of-order) end.
    fn write_presequenced(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.policy.note_write();

        let mut user_bytes = 0u64;
        for record in batch.iter() {
            let record = record?;
            user_bytes += (record.key.len() + record.value.len()) as u64;
        }

        let ticket = self.commit_queue.submit_presequenced(batch, opts.sync);
        let result = match self.commit_queue.wait_turn(&ticket) {
            Role::Done(result) => result,
            Role::Leader(group) => self.commit(group),
        };
        if result.is_ok() {
            self.counters.add_user_bytes(user_bytes);
        }
        result
    }

    /// Commits a write group as its leader: make room in every touched
    /// family, reserve a sequence range, then append + sync the WAL and
    /// apply the merged batch to the families' concurrent memtables
    /// **outside** the state mutex, so readers and the compaction workers
    /// proceed during the IO. Per-key policy observation (FLSM guard
    /// selection, a pure hash) also runs unlocked; the results are absorbed
    /// per family under the lock after the apply. The new sequence is only
    /// published (making the group visible) after the apply succeeds.
    fn commit(&self, mut group: CommitGroup) -> Result<()> {
        let mut state = self.state.lock();
        let mut result: Result<()> = Ok(());

        // A sequence reservation claims one fresh slot and publishes it for
        // the submitter (the vlog GC's collision-free horizon). Because the
        // commit queue serialises groups, no in-flight or future write can
        // be numbered into the claimed slot. The group carries no records,
        // so the rest of the commit is a no-op for it. The slot is not
        // logged: if nothing is ever written at it, recovery replaying a
        // smaller maximum sequence is harmless — no durable state names it.
        if let Some(slot) = &group.reserve {
            state.last_sequence += 1;
            slot.store(state.last_sequence, Ordering::Release);
        }

        // Which families does this group touch? A rotation request touches
        // every family with a non-empty memtable.
        let touched: Vec<CfId> = if group.force_rotate {
            state
                .cfs
                .iter()
                .filter(|(_, cf)| !cf.mem.is_empty())
                .map(|(id, _)| *id)
                .collect()
        } else {
            let mut ids: Vec<CfId> = Vec::new();
            for record in group.batch.iter() {
                match record {
                    Ok(record) => {
                        if !ids.contains(&record.cf) {
                            ids.push(record.cf);
                        }
                    }
                    Err(err) => {
                        result = Err(err);
                        break;
                    }
                }
            }
            if result.is_ok() {
                // An engine-sequenced write addressed at a dropped family
                // fails its whole group — atomic batches cannot partially
                // apply, and group members share one result by construction.
                if let Some(missing) = ids.iter().find(|id| !state.cfs.contains_key(id)).copied() {
                    result = Err(missing_cf_error(missing));
                }
            }
            if result.is_ok() {
                // Pre-sequenced batches replicate committed history: a
                // record whose family does not exist *here* (a follower that
                // has not mirrored it, or a drop racing a relocation)
                // consumes its sequence slot and is skipped, exactly as
                // recovery replays records of dropped families.
                for record in group.pre_batches.iter().flat_map(|b| b.iter()) {
                    match record {
                        Ok(record) => {
                            if state.cfs.contains_key(&record.cf) && !ids.contains(&record.cf) {
                                ids.push(record.cf);
                            }
                        }
                        Err(err) => {
                            result = Err(err);
                            break;
                        }
                    }
                }
            }
            ids
        };

        // Which families need their value log this group? (Key-value
        // separation: values at or past the threshold go to the vlog, the
        // tree gets a fixed-size pointer.)
        let threshold = self.io.options.value_separation_threshold;
        let mut vlog_cfs: Vec<CfId> = Vec::new();
        if threshold > 0 && result.is_ok() {
            let records = group
                .batch
                .iter()
                .chain(group.pre_batches.iter().flat_map(|b| b.iter()));
            for record in records.flatten() {
                if record.value_type == ValueType::Value
                    && record.value.len() >= threshold
                    && !vlog_cfs.contains(&record.cf)
                {
                    vlog_cfs.push(record.cf);
                }
            }
        }

        if result.is_ok() {
            for cf_id in &touched {
                result = self.make_room_for_write(&mut state, *cf_id, group.force_rotate);
                if result.is_err() {
                    break;
                }
            }
        }

        if result.is_ok() && !(group.batch.is_empty() && group.pre_batches.is_empty()) {
            // A group carries either one merged engine-sequenced batch or a
            // set of pre-sequenced ones (the queue never mixes them). The
            // engine numbers the former here; the latter keep the sequences
            // their external allocator assigned, and `last_sequence` only
            // advances to the group's maximum end — a pre-sequenced batch
            // may land out of order within this engine, which is safe
            // because the allocator routes each key to exactly one engine
            // (per-key sequence order is preserved) and recovery already
            // takes the max over replayed records.
            let mut end_seq = state.last_sequence;
            if !group.batch.is_empty() {
                let seq = state.last_sequence + 1;
                group.batch.set_sequence(seq);
                end_seq = seq + u64::from(group.batch.count()) - 1;
            }
            for pre in &group.pre_batches {
                end_seq = end_seq.max(pre.sequence() + u64::from(pre.count()).saturating_sub(1));
            }

            // Only the leader (that's us, until `complete`) touches the log,
            // the vlog appenders or the memtables, so all of it can leave
            // the mutex.
            let mut log = state.log.take();
            let mut taken_vlogs: BTreeMap<CfId, TakenVlog> = BTreeMap::new();
            for cf_id in &vlog_cfs {
                let st = &mut *state;
                let Some(cf) = st.cfs.get_mut(cf_id) else {
                    // A pre-sequenced record for a family this store does
                    // not have: its value stays inline (and is skipped at
                    // the memtable apply below).
                    continue;
                };
                let max_size = self.io.options.vlog_file_size.max(1) as u64;
                let active = cf.vlog.active.take();
                // Rotation is decided here (the number allocation needs the
                // lock) but performed in the unlocked section. A single
                // over-large group may overshoot `vlog_file_size`; the next
                // group rotates, so files stay within one group of the cap.
                let open_number = match &active {
                    Some(a) if a.offset < max_size => None,
                    _ => Some(cf.versions.new_file_number()),
                };
                taken_vlogs.insert(
                    *cf_id,
                    TakenVlog {
                        cf: *cf_id,
                        env: Arc::clone(&cf.io.env),
                        dir: cf.io.db_path.clone(),
                        active,
                        open_number,
                        sealed: Vec::new(),
                        dirty: false,
                        compression: self.io.options.compression,
                        compression_stats: Arc::clone(&self.io.options.compression_stats),
                    },
                );
            }
            let mems: BTreeMap<CfId, Arc<MemTable>> = touched
                .iter()
                .filter_map(|id| state.cfs.get(id).map(|cf| (*id, Arc::clone(&cf.mem))))
                .collect();
            let batch = &group.batch;
            let pre_batches = &group.pre_batches;
            let sync = group.sync;
            let policy = &self.policy;
            let need_dir_sync = state.wal_dir_unsynced;
            let wal_log_number = state.log_file_number;
            let io = &self.io;
            let counters = &self.counters;
            let vlogs = &mut taken_vlogs;
            // Exactly the bytes appended to the WAL (value separation
            // applied), captured for the change-data-capture tail; published
            // below only once the group commits.
            let mut published: Vec<crate::cdc::TailBatch> = Vec::new();
            let published_ref = &mut published;
            let io_result = MutexGuard::unlocked(&mut state, || -> Result<Vec<CfObservation>> {
                if need_dir_sync {
                    // A rotation created this WAL; its directory entry
                    // must be durable before the group is acknowledged.
                    io.env.sync_dir(&io.db_path)?;
                }
                // Key-value separation happens before any WAL byte is
                // written: large values are appended to their family's
                // vlog and the batches are rewritten around fixed-size
                // pointers, so the WAL (and the memtables below) only ever
                // see what the tree will actually store. The vlog is
                // flushed/synced first as well — a pointer must never be
                // durable while the record it names is not.
                let mut rewritten: Option<WriteBatch> = None;
                let mut rewritten_pre: Vec<Option<WriteBatch>> = Vec::new();
                if !vlogs.is_empty() {
                    rewritten = separate_batch(batch, threshold, vlogs, counters)?;
                    for pre in pre_batches.iter() {
                        rewritten_pre.push(separate_batch(pre, threshold, vlogs, counters)?);
                    }
                    for taken in vlogs.values_mut() {
                        taken.finish_group(sync)?;
                    }
                }
                let wal_batch: &WriteBatch = rewritten.as_ref().unwrap_or(batch);
                let wal_pres: Vec<&WriteBatch> = pre_batches
                    .iter()
                    .enumerate()
                    .map(|(idx, pre)| {
                        rewritten_pre
                            .get(idx)
                            .and_then(|r| r.as_ref())
                            .unwrap_or(pre)
                    })
                    .collect();
                if let Some(log) = log.as_mut() {
                    if !wal_batch.is_empty() {
                        log.add_record(wal_batch.contents())?;
                        published_ref.push(crate::cdc::TailBatch {
                            log_number: wal_log_number,
                            last_seq: wal_batch.sequence()
                                + u64::from(wal_batch.count()).saturating_sub(1),
                            contents: Arc::new(wal_batch.contents().to_vec()),
                        });
                    }
                    // Each pre-sequenced batch is its own WAL record (its
                    // header carries its own base sequence); the whole
                    // group still shares one fsync.
                    for pre in &wal_pres {
                        log.add_record(pre.contents())?;
                        published_ref.push(crate::cdc::TailBatch {
                            log_number: wal_log_number,
                            last_seq: pre.sequence() + u64::from(pre.count()).saturating_sub(1),
                            contents: Arc::new(pre.contents().to_vec()),
                        });
                    }
                    if sync {
                        log.sync()?;
                    }
                }
                let mut observed = Vec::new();
                let records = wal_batch
                    .iter()
                    .chain(wal_pres.iter().flat_map(|b| b.iter()));
                for record in records {
                    let record = record?;
                    let Some(mem) = mems.get(&record.cf) else {
                        continue;
                    };
                    // Pointer records are puts of real user keys; they feed
                    // the policy's observations (FLSM guard selection) the
                    // same way inline values do.
                    if matches!(
                        record.value_type,
                        ValueType::Value | ValueType::ValuePointer
                    ) {
                        if let Some(obs) = policy.observe_key(record.key) {
                            observed.push((record.cf, obs));
                        }
                    }
                    mem.add(record.sequence, record.value_type, record.key, record.value);
                }
                Ok(observed)
            });
            state.log = log;
            // Reinstall the vlog appenders whether or not the IO succeeded
            // (a failure poisons the store below, but the registry must
            // stay coherent for shutdown). A family dropped mid-IO keeps
            // nothing: its files die with its directory.
            for (cf_id, taken) in taken_vlogs {
                if let Some(cf) = state.cfs.get_mut(&cf_id) {
                    for (number, size) in taken.sealed {
                        cf.vlog.sealed.insert(number, size);
                    }
                    cf.vlog.active = taken.active;
                }
            }
            match io_result {
                Ok(observed) => {
                    let st = &mut *state;
                    if need_dir_sync {
                        st.wal_dir_unsynced = false;
                    }
                    let mut per_cf: BTreeMap<CfId, Vec<(usize, Vec<u8>)>> = BTreeMap::new();
                    for (cf_id, obs) in observed {
                        per_cf.entry(cf_id).or_default().push(obs);
                    }
                    for (cf_id, obs) in per_cf {
                        if let Some(cf) = st.cfs.get_mut(&cf_id) {
                            self.policy.absorb_observations(&mut cf.policy, obs);
                        }
                    }
                    st.last_sequence = end_seq;
                    // Commits are serialized (one leader at a time), so
                    // appending here under the state mutex keeps the tail in
                    // commit order. Lock order state -> change_log is the
                    // sanctioned one.
                    self.change_log.publish(published);
                }
                Err(err) => {
                    // A failed WAL append/sync may have lost acknowledged
                    // bytes; poison the store like LevelDB does.
                    if state.bg_error.is_none() {
                        state.bg_error = Some(err.clone());
                    }
                    result = Err(err);
                }
            }
        }
        drop(state);
        self.commit_queue.complete(group, &result);
        result
    }

    /// Ensures there is room in one family's memtable, applying that
    /// family's level-0 back-pressure. Rotating a memtable also rotates the
    /// shared WAL, so the frozen table corresponds to a log prefix.
    fn make_room_for_write(
        &self,
        state: &mut MutexGuard<'_, EngineState<P>>,
        cf_id: CfId,
        force: bool,
    ) -> Result<()> {
        let mut allow_delay = !force;
        let mut force = force;
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            let Some(cf) = state.cfs.get(&cf_id) else {
                return Err(missing_cf_error(cf_id));
            };
            let level0_files = cf.versions.current_unpinned().level0_len();
            if allow_delay && level0_files >= self.io.options.level0_slowdown_writes_trigger {
                // Gentle back-pressure: let the compaction workers make
                // progress without fully blocking this writer.
                allow_delay = false;
                let stall = Instant::now();
                self.work_available.notify_all();
                MutexGuard::unlocked(state, || std::thread::sleep(Duration::from_millis(1)));
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if !force && cf.mem.approximate_memory_usage() <= self.io.options.write_buffer_size {
                return Ok(());
            }
            if cf.imm.is_some() {
                // Previous memtable still flushing.
                let stall = Instant::now();
                self.flush_available.notify_one();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if level0_files >= self.io.options.level0_stop_writes_trigger {
                let stall = Instant::now();
                self.work_available.notify_all();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }

            // Switch this family to a fresh memtable and the store to a
            // fresh WAL. The full memtable is frozen whole — cursors still
            // pinning it keep reading it in `imm` (and beyond, through
            // their own `Arc`s) with no copy. WAL numbers come from the
            // default family's allocator (they live in the root directory).
            let new_log_number = state.default_cf_mut().versions.new_file_number();
            let log_file = self
                .io
                .env
                .new_writable_file(&log_file_name(&self.io.db_path, new_log_number))?;
            // The new WAL's directory entry must become durable before any
            // write is acknowledged against it — but fsyncing the directory
            // here would hold the state mutex across a disk flush. Defer it
            // to the leader's unlocked IO section instead: every write into
            // the new log passes through `commit`, which syncs first.
            state.wal_dir_unsynced = true;
            let close_result = match state.log.take() {
                Some(old_log) => old_log.close(),
                None => Ok(()),
            };
            state.log = Some(LogWriter::new(log_file));
            state.log_file_number = new_log_number;
            // The change log needs the rotation point: every sequence
            // committed from here on lives in the new segment, and the old
            // one is now closed (replayable, evictable, reclaimable).
            self.change_log
                .note_rotation(new_log_number, state.last_sequence);
            if let Err(err) = close_result {
                // A failed close may have lost a sync on acknowledged
                // records in the old log; surface it instead of dropping it.
                if state.bg_error.is_none() {
                    state.bg_error = Some(err.clone());
                }
                return Err(err);
            }
            let cf = state.cfs.get_mut(&cf_id).expect("family checked above");
            let full_mem = std::mem::replace(&mut cf.mem, Arc::new(MemTable::new()));
            cf.imm = Some(full_mem);
            cf.mem_log_number = new_log_number;
            force = false;
            self.flush_available.notify_one();
        }
    }

    // ----------------------------------------------------------------- read

    fn get(&self, cf_id: CfId, opts: &ReadOptions, user_key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.record_get();
        let mut retried = false;
        loop {
            let (found, resolver) = match self.lookup_value(cf_id, opts, user_key)? {
                Some(found) => found,
                None => return Ok(None),
            };
            match found {
                LookupValue::Inline(value) => return Ok(Some(value)),
                LookupValue::Pointer(pointer) => match resolver.resolve(&pointer) {
                    Ok(value) => return Ok(Some(value)),
                    // A GC pass may have deleted the vlog file between the
                    // tree lookup and this read; the relocated pointer is
                    // already in place, so one fresh lookup settles it.
                    Err(_) if !retried => retried = true,
                    Err(err) => return Err(err),
                },
            }
        }
    }

    /// The tree lookup underneath [`EngineCore::get`]: consults the
    /// memtables and the version but does **not** resolve value pointers —
    /// resolution does IO and runs outside the state lock. `Ok(None)` means
    /// "deleted or never written"; the GC's liveness check uses the raw
    /// pointer this returns.
    fn lookup_value(
        &self,
        cf_id: CfId,
        opts: &ReadOptions,
        user_key: &[u8],
    ) -> Result<Option<(LookupValue, Arc<VlogReaderCache>)>> {
        let (lookup, imm, version, io, resolver) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.last_sequence);
            let st = &mut *state;
            let Some(cf) = st.cfs.get_mut(&cf_id) else {
                return Err(missing_cf_error(cf_id));
            };
            let lookup = LookupKey::new(user_key, sequence);
            let resolver = Arc::clone(&cf.vlog.readers);
            match cf.mem.get(&lookup) {
                MemTableGet::Found(value) => {
                    return Ok(Some((LookupValue::Inline(value), resolver)))
                }
                MemTableGet::FoundPointer(encoded) => {
                    return Ok(Some((
                        LookupValue::Pointer(ValuePointer::decode(&encoded)?),
                        resolver,
                    )))
                }
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
            (
                lookup,
                cf.imm.clone(),
                cf.versions.current(),
                cf.io.clone(),
                resolver,
            )
        };
        if let Some(imm) = imm {
            match imm.get(&lookup) {
                MemTableGet::Found(value) => {
                    return Ok(Some((LookupValue::Inline(value), resolver)))
                }
                MemTableGet::FoundPointer(encoded) => {
                    return Ok(Some((
                        LookupValue::Pointer(ValuePointer::decode(&encoded)?),
                        resolver,
                    )))
                }
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
        }
        Ok(self
            .policy
            .get_in_version(&io, &version, opts, &lookup)?
            .map(|found| (found, resolver)))
    }

    /// Builds the streaming user-key cursor over one family: its memtables
    /// plus the policy's per-level iterators, merged and filtered down to
    /// the view at the cursor's sequence. Creating a cursor counts as a seek
    /// for the policy's read heuristics (FLSM: the seek-compaction trigger),
    /// armed on the family being read.
    fn iter(&self, cf_id: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.counters.record_seek();
        if self.policy.note_seek() {
            {
                let mut state = self.state.lock();
                let st = &mut *state;
                if let Some(cf) = st.cfs.get_mut(&cf_id) {
                    self.policy.arm_requested_compaction(&mut cf.policy);
                }
            }
            self.work_available.notify_one();
        }
        let (sequence, mem, imm, version, io, resolver, snapshot) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.last_sequence);
            // The cursor resolves value pointers as it streams; pinning its
            // sequence in the cursor-pin list keeps vlog GC from deleting a
            // file whose records the cursor's view can still reach. The pin
            // deliberately does NOT go into `snapshots`: the cursor's
            // version pin already protects its sstables, and adding it to
            // the compaction floor would let any long-lived cursor stall
            // version dedup (and flush-quiesce) indefinitely.
            let snapshot = self.cursor_pins.acquire(sequence);
            let st = &mut *state;
            let Some(cf) = st.cfs.get_mut(&cf_id) else {
                return Err(missing_cf_error(cf_id));
            };
            (
                sequence,
                Arc::clone(&cf.mem),
                cf.imm.clone(),
                cf.versions.current(),
                cf.io.clone(),
                Arc::clone(&cf.vlog.readers),
                snapshot,
            )
        };

        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        children.push(Box::new(mem.owned_iter()));
        if let Some(imm) = imm {
            children.push(Box::new(imm.owned_iter()));
        }
        self.policy
            .append_version_iterators(&io, &version, opts, &mut children)?;

        let merged = MergingIterator::new(children);
        let user = UserIterator::new(Box::new(merged), sequence)
            .with_resolver(resolver as Arc<dyn ValueResolver>);
        // Pin the version so obsolete-file GC cannot delete the sstables the
        // cursor is still reading, and the snapshot so vlog GC cannot
        // reclaim a value the cursor can still observe.
        Ok(Box::new(PinnedIterator::new(
            Box::new(user),
            (version, snapshot),
        )))
    }

    fn snapshot(&self) -> Snapshot {
        let state = self.state.lock();
        self.snapshots.acquire(state.last_sequence)
    }

    // ----------------------------------------------------- background work

    /// Which family the flush thread should serve next: the largest
    /// immutable memtable wins, so one hot namespace cannot park the others
    /// behind its queue.
    fn pick_flush_cf(state: &EngineState<P>) -> Option<CfId> {
        state
            .cfs
            .iter()
            .filter(|(_, cf)| !cf.dropping && !cf.flush_running)
            .filter_map(|(id, cf)| {
                cf.imm
                    .as_ref()
                    .map(|imm| (imm.approximate_memory_usage(), *id))
            })
            .max()
            .map(|(_, id)| id)
    }

    /// The dedicated flush thread: turns the hottest family's `imm` into a
    /// level-0 sstable the moment one exists, independently of how busy the
    /// compaction pool is.
    fn flush_main(inner: Arc<EngineCore<P>>) {
        let mut state = inner.state.lock();
        loop {
            while !inner.shutting_down.load(Ordering::SeqCst)
                && (state.bg_error.is_some() || Self::pick_flush_cf(&state).is_none())
            {
                inner.flush_available.wait(&mut state);
            }
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let cf_id = Self::pick_flush_cf(&state).expect("picked above");
            state
                .cfs
                .get_mut(&cf_id)
                .expect("picked family exists")
                .flush_running = true;
            let result = inner.compact_memtable(&mut state, cf_id);
            if let Some(cf) = state.cfs.get_mut(&cf_id) {
                cf.flush_running = false;
            }
            if let Err(err) = result {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
            // Writers stalled on the full memtable can proceed, and the new
            // level-0 file may have armed a compaction trigger.
            inner.work_done.notify_all();
            inner.work_available.notify_all();
        }
    }

    /// One worker of the compaction pool: claim a job whose inputs are
    /// disjoint from every in-flight job, run its IO outside the state
    /// mutex, and commit the result through the serialized `log_and_apply`.
    fn compaction_worker_main(inner: Arc<EngineCore<P>>) {
        let mut state = inner.state.lock();
        loop {
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            if let Some(claimed) = inner.claim_job(&mut state) {
                inner.run_claimed_job(&mut state, claimed);
                inner.work_done.notify_all();
                // The commit may have armed triggers for other levels (or
                // freed claimed inputs), so give idle workers a chance.
                inner.work_available.notify_all();
            } else {
                inner.work_available.wait(&mut state);
            }
        }
    }

    /// Claims the highest-priority compaction job across every family.
    ///
    /// Families are polled hottest-first — pending compaction work, then
    /// most level-0 files — so one namespace's debt cannot hide behind an
    /// idle sibling. Within a family the policy picks the job; its inputs
    /// must not intersect that family's in-flight inputs.
    ///
    /// On success the job's input files are recorded in the family's
    /// `claimed_inputs` (keeping other workers off the same inputs) and its
    /// pre-allocated output numbers in `pending_outputs` (keeping the GC off
    /// files that exist on disk but are not yet committed to any version).
    pub fn claim_job(&self, state: &mut MutexGuard<'_, EngineState<P>>) -> Option<ClaimedJob<P>> {
        if state.bg_error.is_some() {
            return None;
        }
        let smallest_snapshot = self.snapshots.compaction_floor(state.last_sequence);
        let mut order: Vec<(bool, usize, CfId)> = state
            .cfs
            .iter()
            .filter(|(_, cf)| !cf.dropping)
            .map(|(id, cf)| {
                (
                    cf.versions.needs_compaction(),
                    cf.versions.current_unpinned().level0_len(),
                    *id,
                )
            })
            .collect();
        order.sort_by_key(|&(needs, level0, _)| std::cmp::Reverse((needs, level0)));

        for (_, _, cf_id) in order {
            let st = &mut **state;
            let cf = st.cfs.get_mut(&cf_id).expect("ordered family exists");
            let claim = {
                let mut ctx = PolicyCtx {
                    versions: &mut cf.versions,
                    state: &mut cf.policy,
                    claimed_inputs: &cf.claimed_inputs,
                    smallest_snapshot,
                };
                self.policy.pick_job(&cf.io, &mut ctx)
            };
            if let Some(claim) = claim {
                cf.claimed_inputs
                    .extend(claim.input_numbers.iter().copied());
                cf.pending_outputs
                    .extend(claim.output_numbers.iter().copied());
                cf.active_jobs += 1;
                st.active_compactions += 1;
                self.counters.record_compaction_start();
                return Some(ClaimedJob { cf: cf_id, claim });
            }
        }
        None
    }

    /// Runs a claimed job's IO with the state mutex released, then commits
    /// (or abandons) it and releases its claims. The claimed family cannot
    /// be dropped while the job is in flight (`drop_cf` waits it out).
    pub fn run_claimed_job(
        &self,
        state: &mut MutexGuard<'_, EngineState<P>>,
        claimed: ClaimedJob<P>,
    ) {
        let start = Instant::now();
        let ClaimedJob { cf: cf_id, claim } = claimed;
        let io = state
            .cfs
            .get(&cf_id)
            .expect("claimed family is pinned by its active job")
            .io
            .clone();
        let policy = &self.policy;
        let job = claim.job;
        let io_result = MutexGuard::unlocked(state, || -> Result<Vec<FileMetaData>> {
            let outputs = policy.run_job_io(&io, &job)?;
            if !outputs.is_empty() {
                // The new tables' directory entries must be durable before
                // the MANIFEST commit references them.
                io.env.sync_dir(&io.db_path)?;
            }
            Ok(outputs)
        });

        let commit_result = io_result.and_then(|outputs| {
            let smallest_snapshot = self.snapshots.compaction_floor(state.last_sequence);
            let last_sequence = state.last_sequence;
            let st = &mut **state;
            let cf = st
                .cfs
                .get_mut(&cf_id)
                .expect("claimed family is pinned by its active job");
            cf.versions.set_last_sequence(last_sequence);
            let mut ctx = PolicyCtx {
                versions: &mut cf.versions,
                state: &mut cf.policy,
                claimed_inputs: &cf.claimed_inputs,
                smallest_snapshot,
            };
            let (bytes_read, bytes_written) = policy.commit_job(&mut ctx, &job, outputs)?;
            self.counters.record_compaction(
                start.elapsed().as_micros() as u64,
                bytes_read,
                bytes_written,
            );
            Ok(())
        });

        // Release the claims whether the job committed or failed, so a
        // poisoned store does not wedge its sibling workers.
        {
            let st = &mut **state;
            if let Some(cf) = st.cfs.get_mut(&cf_id) {
                for number in &claim.input_numbers {
                    cf.claimed_inputs.remove(number);
                }
                for number in &claim.output_numbers {
                    cf.pending_outputs.remove(number);
                }
                cf.active_jobs -= 1;
            }
            st.active_compactions -= 1;
        }
        self.counters.record_compaction_end();

        match commit_result {
            Ok(()) => self.remove_obsolete_files(state),
            Err(err) => {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
        }
    }

    fn compact_memtable(
        &self,
        state: &mut MutexGuard<'_, EngineState<P>>,
        cf_id: CfId,
    ) -> Result<()> {
        let (imm, number, io) = {
            let cf = state
                .cfs
                .get_mut(&cf_id)
                .expect("flushing family is pinned by flush_running");
            let imm = match cf.imm.clone() {
                Some(imm) => imm,
                None => return Ok(()),
            };
            let number = cf.versions.new_file_number();
            // Until the edit commits, the new table exists only on disk;
            // keep the concurrent compaction workers' GC away from it.
            cf.pending_outputs.insert(number);
            (imm, number, cf.io.clone())
        };
        let start = Instant::now();
        let meta = MutexGuard::unlocked(state, || build_table_from_memtable(&io, &imm, number));
        let last_sequence = state.last_sequence;
        let current_log = state.log_file_number;
        let st = &mut **state;
        let cf = st
            .cfs
            .get_mut(&cf_id)
            .expect("flushing family is pinned by flush_running");
        let meta = match meta {
            Ok(meta) => meta,
            Err(err) => {
                cf.pending_outputs.remove(&number);
                return Err(err);
            }
        };

        let mut written = 0;
        if let Some(meta) = &meta {
            written = meta.file_size;
        }
        // The frozen table covers every record of this family in WALs older
        // than the active memtable's birth log; publish that as the
        // family's recovery floor.
        let mem_log_number = cf.mem_log_number;
        cf.versions.set_last_sequence(last_sequence);
        let commit = cf
            .versions
            .commit_level0(meta.as_ref(), Some(mem_log_number));
        cf.pending_outputs.remove(&number);
        commit?;
        cf.imm = None;
        cf.flushes += 1;
        self.counters.record_flush();
        self.counters
            .record_compaction(start.elapsed().as_micros() as u64, 0, written);

        // Families with nothing buffered can advance their recovery floor
        // to the live WAL; without this an idle namespace would pin every
        // log segment forever. Each advance is a synced MANIFEST edit, so
        // it runs only once old segments are actually piling up (the GC's
        // backlog count), not on every flush of a hot sibling.
        if st.live_wal_files > WAL_BACKLOG_LIMIT {
            for other in st.cfs.values_mut() {
                if other.id != cf_id
                    && !other.dropping
                    && other.mem.is_empty()
                    && other.imm.is_none()
                    && other.versions.log_number() < current_log
                {
                    other.versions.set_last_sequence(last_sequence);
                    other.versions.commit_level0(None, Some(current_log))?;
                }
            }
        }
        self.remove_obsolete_files(state);
        Ok(())
    }

    // -------------------------------------------------------------- cleanup

    /// Deletes files no live version, pinned version or in-flight job needs,
    /// in every family's directory. A WAL segment survives until every
    /// family's flushed state covers it **and** no change-stream cursor (or
    /// the follower-restart retention window) still needs it — the change
    /// log turns segments a cursor can no longer reach into an explicit
    /// `SequenceTruncated`, never a silently unreadable gap.
    pub fn remove_obsolete_files(&self, state: &mut MutexGuard<'_, EngineState<P>>) {
        let min_log = self.change_log.wal_reclaim_floor(state.min_log_number());
        let current_log = state.log_file_number;
        let mut any_pinned = false;
        let mut live_wals = 0usize;
        let st = &mut **state;
        for cf in st.cfs.values_mut() {
            // If a pinned old version kept files alive in this pass, a later
            // quiesced `flush` must rescan once the pins drop.
            let (live, pinned) = cf.versions.live_files_and_pins();
            any_pinned |= pinned;
            let manifest_number = cf.versions.manifest_number();
            let children = match cf.io.env.children(&cf.io.db_path) {
                Ok(children) => children,
                Err(_) => continue,
            };
            for name in children {
                let Some((ty, number)) = parse_file_name(&name) else {
                    // Unknown names (the `CFS` catalog, `cf-<id>` subdirs on
                    // a real filesystem) are never the GC's to delete.
                    continue;
                };
                let keep = match ty {
                    // A table is live if any version references it — or if
                    // it is the not-yet-committed output of an in-flight
                    // flush or compaction job running on another thread.
                    FileType::Table => {
                        live.binary_search(&number).is_ok() || cf.pending_outputs.contains(&number)
                    }
                    FileType::WriteAheadLog => number >= min_log || number == current_log,
                    FileType::Descriptor => number >= manifest_number,
                    FileType::Temp => false,
                    // Value-log lifecycle is owned by `vlog_gc`: a vlog file
                    // is live until a GC pass empties it and the snapshot
                    // floor passes its retire point, neither of which this
                    // version-based scan can see.
                    FileType::ValueLog => true,
                    FileType::Current | FileType::Lock | FileType::BtreePages => true,
                };
                if !keep {
                    if ty == FileType::Table {
                        cf.io.table_cache.evict(number);
                    }
                    if cf.io.env.remove_file(&cf.io.db_path.join(&name)).is_err() {
                        // The file is obsolete in every version, so a failed
                        // delete leaks space, not correctness; the next GC
                        // pass retries it. Count it so the leak is visible.
                        self.counters.record_cleanup_failure();
                    }
                } else if cf.id == 0 && ty == FileType::WriteAheadLog {
                    live_wals += 1;
                }
            }
        }
        st.gc_rescan_needed = any_pinned;
        st.live_wal_files = live_wals;
    }

    // --------------------------------------------------------- value-log GC

    /// One garbage-collection pass over every family's value log.
    ///
    /// Per family: scan the **coldest** sealed file (lowest number — vlog
    /// numbers grow with time), relocate every record that is still the
    /// live version's backing store by re-writing its `(key, value)` through
    /// the normal commit path, then retire the file. Retired files are
    /// deleted only once the snapshot floor passes their retire sequence,
    /// so no pinned snapshot (and no cursor, which pins its sequence) can
    /// ever observe a pointer into a missing file.
    pub fn vlog_gc(&self) -> Result<VlogGcReport> {
        // Two concurrent passes would relocate the same records into the
        // same sequence slot; one at a time, always.
        let _serial = self.vlog_gc_lock.lock();
        let mut report = VlogGcReport::default();
        let cf_ids: Vec<CfId> = self.state.lock().cfs.keys().copied().collect();
        for cf_id in cf_ids {
            self.vlog_gc_cf(cf_id, &mut report)?;
        }
        self.vlog_reclaim(&mut report);
        Ok(report)
    }

    fn vlog_gc_cf(&self, cf_id: CfId, report: &mut VlogGcReport) -> Result<()> {
        // Pick the coldest sealed file first: reserving a horizon for a
        // family with nothing to scan would burn sequence slots for no work.
        let (file_number, readers) = {
            let state = self.state.lock();
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            let Some(cf) = state.cf(cf_id) else {
                return Ok(());
            };
            let Some((&number, _)) = cf.vlog.sealed.iter().next() else {
                return Ok(());
            };
            (number, Arc::clone(&cf.vlog.readers))
        };

        // Capture the GC horizon — the sequence every relocation will be
        // pinned at — as a slot *reserved* through the commit queue. The
        // reservation guarantees no write, past or future, is numbered into
        // the slot, so a relocation at the horizon can never collide with a
        // user version of the same key in the same sequence slot. It also
        // makes GC self-sufficient on a quiescent store: the horizon always
        // moves past the newest user write, so the pass can relocate records
        // written in the very last slot instead of waiting for traffic that
        // may never come.
        let slot = Arc::new(AtomicU64::new(0));
        let ticket = self.commit_queue.submit_reserve(Arc::clone(&slot));
        match self.commit_queue.wait_turn(&ticket) {
            Role::Done(result) => result?,
            Role::Leader(group) => self.commit(group)?,
        }
        let s_check = slot.load(Ordering::Acquire);
        if s_check == 0 {
            return Ok(());
        }
        let data = readers.read_file(file_number)?;
        report.scanned_files += 1;

        // Collect the records still live at the horizon. A record is live
        // iff the version visible at `s_check` is a pointer to exactly this
        // (file, offset); a torn tail ends the scan silently (those bytes
        // were never acknowledged), mid-file corruption aborts the pass.
        let at = ReadOptions {
            snapshot: Some(s_check),
            ..ReadOptions::default()
        };
        let before = ReadOptions {
            snapshot: Some(s_check.saturating_sub(1)),
            ..ReadOptions::default()
        };
        let mut live: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut retire_ok = true;
        for entry in iter_vlog_records(&data) {
            let (offset, record, _len) = entry?;
            let key = record.key;
            if !self.pointer_is_current(cf_id, &at, key, file_number, offset)? {
                continue;
            }
            // Relocations are written at `s_check` itself, so a version
            // born in that exact sequence slot could not be shadowed
            // without a duplicate internal key. The reservation makes
            // this unreachable for engine-numbered writes, but a sharded
            // coordinator assigns sequences externally and could, in
            // principle, land a version in the reserved slot. Detectable
            // without sequence plumbing — a slot-`s_check` version is
            // invisible one sequence earlier — and safe to leave for the
            // next pass, whose horizon is reserved past it.
            if !self.pointer_is_current(cf_id, &before, key, file_number, offset)? {
                report.skipped += 1;
                retire_ok = false;
                continue;
            }
            // Relocation re-enters the commit path, which re-frames (and
            // re-compresses, if configured) the value — so hand it the
            // original bytes, not the stored compressed form.
            let value = if record.compressed {
                pebblesdb_compress::decompress(record.value, u32::MAX as usize)?
            } else {
                record.value.to_vec()
            };
            live.push((key.to_vec(), value));
        }

        // Relocate through the commit path as single-record pre-sequenced
        // batches pinned at the horizon: a concurrent user write carries a
        // later sequence and shadows the relocation, never the reverse.
        // The final relocation syncs, so by the time the file can be
        // deleted no pointer into it lives only in volatile buffers.
        let total = live.len();
        for (idx, (key, value)) in live.into_iter().enumerate() {
            self.policy.note_write();
            let mut batch = WriteBatch::new();
            batch.put_cf(cf_id, &key, &value);
            batch.set_sequence(s_check);
            let sync = idx + 1 == total;
            let ticket = self.commit_queue.submit_presequenced(batch, sync);
            match self.commit_queue.wait_turn(&ticket) {
                Role::Done(result) => result?,
                Role::Leader(group) => self.commit(group)?,
            }
            self.counters.record_vlog_relocation();
            report.relocated += 1;
            report.relocated_bytes += value.len() as u64;
        }

        if retire_ok {
            let mut state = self.state.lock();
            if let Some(cf) = state.cf_mut(cf_id) {
                cf.vlog.sealed.remove(&file_number);
                cf.vlog.retired.insert(file_number, s_check);
            }
        }
        Ok(())
    }

    /// Whether the version of `key` visible under `opts` is a pointer to
    /// exactly `(file_number, offset)` — the GC's liveness probe.
    fn pointer_is_current(
        &self,
        cf_id: CfId,
        opts: &ReadOptions,
        key: &[u8],
        file_number: u64,
        offset: u64,
    ) -> Result<bool> {
        Ok(match self.lookup_value(cf_id, opts, key)? {
            Some((LookupValue::Pointer(p), _)) => {
                p.file_number == file_number && p.offset == offset
            }
            _ => false,
        })
    }

    /// Deletes retired vlog files once both the snapshot floor and the
    /// cursor-pin floor pass their retire sequence. In-flight point gets
    /// that raced the deletion retry their lookup and land on the relocated
    /// pointer.
    fn vlog_reclaim(&self, report: &mut VlogGcReport) {
        let mut candidates: Vec<(CfId, u64, std::path::PathBuf, Arc<VlogReaderCache>)> = Vec::new();
        {
            let state = self.state.lock();
            let floor = self
                .snapshots
                .compaction_floor(state.last_sequence)
                .min(self.cursor_pins.compaction_floor(state.last_sequence));
            for cf in state.cfs.values() {
                for (&number, &retire_seq) in &cf.vlog.retired {
                    if floor >= retire_seq {
                        candidates.push((
                            cf.id,
                            number,
                            vlog_file_name(&cf.io.db_path, number),
                            Arc::clone(&cf.vlog.readers),
                        ));
                    }
                }
            }
        }
        for (cf_id, number, path, readers) in candidates {
            let io_result = {
                let cf_env = {
                    let state = self.state.lock();
                    state.cf(cf_id).map(|cf| Arc::clone(&cf.io.env))
                };
                match cf_env {
                    Some(env) => env.remove_file(&path),
                    None => continue, // family dropped; its files died with it
                }
            };
            match io_result {
                Ok(()) => {
                    readers.evict(number);
                    report.reclaimed_files += 1;
                    let mut state = self.state.lock();
                    if let Some(cf) = state.cf_mut(cf_id) {
                        cf.vlog.retired.remove(&number);
                    }
                }
                Err(_) => {
                    // Deferred, not lost: the file stays in `retired` and
                    // the next pass retries the delete.
                    self.counters.record_cleanup_failure();
                }
            }
        }
    }

    // ---------------------------------------------------------------- flush

    fn flush(&self) -> Result<()> {
        // Rotate every non-empty memtable through the commit queue so the
        // rotation is serialised with in-flight write groups.
        let needs_rotate = {
            let state = self.state.lock();
            state.cfs.values().any(|cf| !cf.mem.is_empty())
        };
        if needs_rotate {
            let ticket = self.commit_queue.submit(None, false);
            match self.commit_queue.wait_turn(&ticket) {
                Role::Done(result) => result?,
                Role::Leader(group) => self.commit(group)?,
            }
        }
        let mut state = self.state.lock();
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            let busy = state.active_compactions > 0
                || state.cfs.values().any(|cf| {
                    cf.imm.is_some() || cf.flush_running || cf.versions.needs_compaction()
                });
            if busy {
                self.flush_available.notify_one();
                self.work_available.notify_all();
                self.work_done.wait(&mut state);
            } else {
                // Quiesced: reclaim files whose deletion a commit-time GC
                // skipped because a read still pinned their version. Skipped
                // when the last GC saw no pins — it already ran to
                // completion, so rescanning the directories would be wasted
                // work under the state lock.
                if state.gc_rescan_needed {
                    self.remove_obsolete_files(&mut state);
                }
                return Ok(());
            }
        }
    }

    // ------------------------------------------------- column families

    /// Creates a new, empty column family under the state lock. The catalog
    /// edit is the commit point; the directory and version set follow it
    /// (reopen re-initialises them if a crash intervenes).
    ///
    /// With `want_id`, the family is created under that exact id — the
    /// follower side of replication mirrors the leader's catalog, and WAL
    /// records route by id, so the ids must match bit for bit. Asking for an
    /// existing `(id, name)` pair is an idempotent no-op (catalog re-syncs
    /// happen on every reconnect); an id or name clash is an error.
    fn create_cf_locked(&self, name: &str, want_id: Option<CfId>) -> Result<(CfId, String)> {
        if name.is_empty() || name.contains('/') {
            return Err(Error::invalid_argument(format!(
                "invalid column family name {name:?}"
            )));
        }
        let mut state = self.state.lock();
        if let Some(err) = &state.bg_error {
            return Err(err.clone());
        }
        if let Some(want) = want_id {
            if let Some(existing) = state.cfs.get(&want) {
                if existing.name == name {
                    return Ok((want, name.to_string()));
                }
                return Err(Error::invalid_argument(format!(
                    "column family id {want} is {:?}, not {name:?}",
                    existing.name
                )));
            }
        }
        if state.cfs.values().any(|cf| cf.name == name) {
            return Err(Error::invalid_argument(format!(
                "column family {name:?} already exists"
            )));
        }
        let id = match want_id {
            Some(want) => {
                if want == 0 {
                    return Err(Error::invalid_argument(
                        "column family id 0 is the default family",
                    ));
                }
                state.next_cf_id = state.next_cf_id.max(want + 1);
                want
            }
            None => {
                let id = state.next_cf_id;
                state.next_cf_id += 1;
                id
            }
        };

        // First family ever created: materialise the catalog.
        if state.catalog.is_none() {
            let snapshot = CatalogData {
                cfs: state
                    .cfs
                    .values()
                    .map(|cf| (cf.id, cf.name.clone()))
                    .collect(),
                next_cf_id: state.next_cf_id,
            };
            state.catalog = Some(Catalog::rewrite(
                Arc::clone(&self.io.env),
                &self.io.db_path,
                &snapshot,
            )?);
        }
        state
            .catalog
            .as_mut()
            .expect("catalog materialised above")
            .append_create(id, name)?;

        let dir = catalog::cf_dir(&self.io.db_path, id);
        self.io.env.create_dir_all(&dir)?;
        let io = cf_io(&self.io.env, &dir, &self.io.options);
        let mut versions = self.policy.new_versions(&io);
        versions.create_new()?;
        versions.set_last_sequence(state.last_sequence);
        versions.commit_level0(None, Some(state.log_file_number))?;
        let mem_log_number = state.log_file_number;
        let vlog = CfVlog::new(
            &self.io.env,
            &dir,
            &self.counters,
            &self.io.options.compression_stats,
        );
        state.cfs.insert(
            id,
            CfState {
                id,
                name: name.to_string(),
                io,
                mem: Arc::new(MemTable::new()),
                imm: None,
                versions,
                policy: self.policy.new_state(),
                claimed_inputs: BTreeSet::new(),
                pending_outputs: BTreeSet::new(),
                mem_log_number,
                active_jobs: 0,
                flush_running: false,
                flushes: 0,
                dropping: false,
                vlog,
            },
        );
        Ok((id, name.to_string()))
    }

    /// Drops a column family: drains its in-flight background work, commits
    /// the catalog drop edit, removes it from the live set and deletes its
    /// directory. The default family cannot be dropped.
    fn drop_cf(&self, name: &str) -> Result<()> {
        let removed = {
            let mut state = self.state.lock();
            let id = state
                .cfs
                .values()
                .find(|cf| cf.name == name)
                .map(|cf| cf.id)
                .ok_or_else(|| Error::invalid_argument(format!("no column family {name:?}")))?;
            if id == 0 {
                return Err(Error::invalid_argument(
                    "the default column family cannot be dropped",
                ));
            }
            // Stop new work against the family, discard its unflushed data
            // and wait out in-flight jobs (their outputs die with the
            // directory; the job commit still runs against the family's
            // version set, which is dropped right after).
            state.cfs.get_mut(&id).expect("found above").dropping = true;
            loop {
                let cf = state.cfs.get_mut(&id).expect("dropping family is live");
                if !cf.flush_running {
                    cf.imm = None;
                }
                if cf.active_jobs == 0 && !cf.flush_running {
                    break;
                }
                self.work_available.notify_all();
                self.flush_available.notify_one();
                self.work_done.wait(&mut state);
            }
            state
                .catalog
                .as_mut()
                .expect("a non-default family implies a catalog")
                .append_drop(id)?;
            state.cfs.remove(&id).expect("dropping family is live")
        };
        // Delete the directory outside the lock; reopen reaps it if this
        // races a crash (the catalog edit above already committed). The drop
        // itself already succeeded — the catalog edit is the commit point —
        // so a failed removal is a disk-space leak, not an error the caller
        // can act on: count it, note it as a background warning, and let the
        // next open retry the reap.
        if let Err(err) = self.io.env.remove_dir_all(&removed.io.db_path) {
            self.counters.record_cleanup_failure();
            let mut state = self.state.lock();
            if state.bg_warning.is_none() {
                state.bg_warning = Some(err);
            }
        }
        self.work_done.notify_all();
        Ok(())
    }

    // ---------------------------------------------------------------- stats

    /// Assembles statistics; `scope` restricts file/memory figures to one
    /// family, `None` aggregates across all of them. Operation counters and
    /// device IO are store-wide either way.
    fn stats_scoped(&self, scope: Option<CfId>) -> StoreStats {
        let io = self.io.env.io_stats().snapshot();
        let state = self.state.lock();
        let mut disk_bytes_live = 0u64;
        let mut num_files = 0u64;
        let mut memory = 0usize;
        let mut block_cache_hits = 0u64;
        let mut block_cache_misses = 0u64;
        let mut table_cache_hits = 0u64;
        let mut table_cache_misses = 0u64;
        for (id, cf) in &state.cfs {
            if scope.is_some_and(|s| s != *id) {
                continue;
            }
            let version = cf.versions.current_unpinned();
            disk_bytes_live += version.total_bytes();
            num_files += version.num_files() as u64;
            memory += cf.mem.approximate_memory_usage()
                + cf.imm
                    .as_ref()
                    .map(|m| m.approximate_memory_usage())
                    .unwrap_or(0)
                + cf.io.table_cache.memory_usage();
            let (bh, bm) = cf.io.table_cache.block_cache_hit_miss();
            let (th, tm) = cf.io.table_cache.table_cache_hit_miss();
            block_cache_hits += bh;
            block_cache_misses += bm;
            table_cache_hits += th;
            table_cache_misses += tm;
        }
        let compression = &self.io.options.compression_stats;
        StoreStats {
            user_bytes_written: EngineCounters::load(&self.counters.user_bytes_written),
            bytes_written: io.bytes_written,
            bytes_read: io.bytes_read,
            disk_bytes_live,
            num_files,
            compactions: EngineCounters::load(&self.counters.compactions),
            flushes: EngineCounters::load(&self.counters.flushes),
            max_concurrent_compactions: EngineCounters::load(
                &self.counters.max_concurrent_compactions,
            ),
            compaction_micros: EngineCounters::load(&self.counters.compaction_micros),
            compaction_bytes_read: EngineCounters::load(&self.counters.compaction_bytes_read),
            compaction_bytes_written: EngineCounters::load(&self.counters.compaction_bytes_written),
            memory_usage_bytes: memory as u64,
            gets: EngineCounters::load(&self.counters.gets),
            seeks: EngineCounters::load(&self.counters.seeks),
            write_stalls: EngineCounters::load(&self.counters.write_stalls),
            write_stall_micros: EngineCounters::load(&self.counters.write_stall_micros),
            memtable_clones: EngineCounters::load(&self.counters.memtable_clones),
            block_cache_hits,
            block_cache_misses,
            table_cache_hits,
            table_cache_misses,
            num_column_families: state.cfs.len() as u64,
            num_shards: 1,
            vlog_bytes_written: EngineCounters::load(&self.counters.vlog_bytes_written),
            vlog_cache_hits: EngineCounters::load(&self.counters.vlog_cache_hits),
            vlog_cache_misses: EngineCounters::load(&self.counters.vlog_cache_misses),
            vlog_gc_relocations: EngineCounters::load(&self.counters.vlog_gc_relocations),
            cleanup_failures: EngineCounters::load(&self.counters.cleanup_failures),
            compress_input_bytes: compression.input_bytes.load(Ordering::Relaxed),
            compress_output_bytes: compression.output_bytes.load(Ordering::Relaxed),
            compress_skipped_blocks: compression.skipped_blocks.load(Ordering::Relaxed),
            decompress_micros: compression.decompress_micros.load(Ordering::Relaxed),
            // A primary has no replication lag; the follower store overrides
            // these two with its applied frontier.
            replica_applied_seq: 0,
            replica_lag_batches: 0,
            cdc_streams_active: self.change_log.streams_active(),
            wal_bytes_shipped: self.change_log.shipped_bytes(),
        }
    }

    fn cf_stats(&self) -> Vec<CfStats> {
        let state = self.state.lock();
        state
            .cfs
            .values()
            .map(|cf| {
                let version = cf.versions.current_unpinned();
                CfStats {
                    id: cf.id,
                    name: cf.name.clone(),
                    num_files: version.num_files() as u64,
                    live_bytes: version.total_bytes(),
                    flushes: cf.flushes,
                    memtable_bytes: (cf.mem.approximate_memory_usage()
                        + cf.imm
                            .as_ref()
                            .map(|m| m.approximate_memory_usage())
                            .unwrap_or(0)) as u64,
                }
            })
            .collect()
    }

    fn live_file_sizes_scoped(&self, scope: Option<CfId>) -> Vec<u64> {
        let state = self.state.lock();
        let mut sizes = Vec::new();
        for (id, cf) in &state.cfs {
            if scope.is_some_and(|s| s != *id) {
                continue;
            }
            sizes.extend(cf.versions.current_unpinned().file_sizes());
        }
        sizes
    }
}

// The object-safe per-family operations; `ColumnFamilyHandle`s hold the
// `EngineShared` behind this trait, keeping the store (and its background
// threads) alive for as long as any handle exists.
impl<P: ShapePolicy> CfOps for EngineShared<P> {
    fn cf_put_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put_cf(cf, key, value);
        self.core.write(batch, opts)
    }

    fn cf_get_opts(&self, cf: CfId, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.get(cf, opts, key)
    }

    fn cf_delete_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete_cf(cf, key);
        self.core.write(batch, opts)
    }

    fn cf_write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.core.write(batch, opts)
    }

    fn cf_iter(&self, cf: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.core.iter(cf, opts)
    }

    fn cf_snapshot(&self) -> Snapshot {
        self.core.snapshot()
    }

    fn cf_flush(&self) -> Result<()> {
        self.core.flush()
    }

    fn cf_kv_stats(&self, cf: CfId) -> StoreStats {
        self.core.stats_scoped(Some(cf))
    }

    fn cf_live_file_sizes(&self, cf: CfId) -> Vec<u64> {
        self.core.live_file_sizes_scoped(Some(cf))
    }

    fn cf_engine_name(&self) -> String {
        self.core.policy.engine_name()
    }
}

impl<P: ShapePolicy> Db for EngineDb<P> {
    fn create_cf(&self, name: &str) -> Result<ColumnFamilyHandle> {
        let (id, name) = self.shared.core.create_cf_locked(name, None)?;
        Ok(self.handle(id, &name))
    }

    fn drop_cf(&self, name: &str) -> Result<()> {
        self.shared.core.drop_cf(name)
    }

    fn list_cfs(&self) -> Vec<String> {
        let state = self.shared.core.state.lock();
        state.cfs.values().map(|cf| cf.name.clone()).collect()
    }

    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle> {
        let id = {
            let state = self.shared.core.state.lock();
            state
                .cfs
                .values()
                .find(|cf| cf.name == name)
                .map(|cf| cf.id)
        }?;
        Some(self.handle(id, name))
    }

    fn cf_stats(&self) -> Vec<CfStats> {
        self.shared.core.cf_stats()
    }

    fn stream(&self, from_seq: SequenceNumber) -> Result<Box<dyn ChangeStream>> {
        Ok(Box::new(self.change_stream(from_seq)?))
    }

    fn committed_sequence(&self) -> SequenceNumber {
        self.last_sequence()
    }
}

impl<P: ShapePolicy> KvStore for EngineDb<P> {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.shared.core.write(batch, opts)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.shared.core.get(0, opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.shared.core.write(batch, opts)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.shared.core.write(batch, opts)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.shared.core.iter(0, opts)
    }

    fn snapshot(&self) -> Snapshot {
        self.shared.core.snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.shared.core.flush()
    }

    fn stats(&self) -> StoreStats {
        self.shared.core.stats_scoped(None)
    }

    fn engine_name(&self) -> String {
        self.shared.core.policy.engine_name()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.shared.core.live_file_sizes_scoped(None)
    }
}

// --------------------------------------------------------- change streams

/// A cursor over one store's committed batches, in commit order.
///
/// Near the frontier the stream follows the in-memory commit tail, blocking
/// on the commit signal up to the caller's timeout; a cursor that predates
/// the tail transparently replays closed WAL segments, then switches back.
/// Value-separated records are resolved back inline on delivery, so a
/// consumer sees exactly the user data — it never needs this store's value
/// log. While alive the stream pins what its cursor can still reach:
///
/// * the WAL segments at or past the cursor (until the retention cap says
///   otherwise), through its registered change-log cursor, and
/// * the value-log files the cursor's sequence can reference, through a
///   sliding `cursor_pins` sequence pin.
///
/// Both pins advance as events are delivered and drop with the stream.
pub struct EngineChangeStream<P: ShapePolicy> {
    shared: Arc<EngineShared<P>>,
    cursor_id: u64,
    /// The next undelivered sequence: every committed batch whose last
    /// sequence is at or past this is still owed to the consumer.
    next_seq: SequenceNumber,
    /// Absolute position in the commit tail (see [`ChangeLog::read_tail`]).
    tail_pos: u64,
    /// An in-flight closed-segment replay: `(segment number, replay)`.
    replay: Option<(u64, SegmentReplay)>,
    /// The highest closed segment fully replayed; guards against re-reading
    /// a segment whose relevant batches were all below the cursor.
    replayed_through: u64,
    /// Value-log pin at the cursor's sequence (swapped forward on delivery,
    /// new pin acquired before the old one drops).
    pin: Snapshot,
}

impl<P: ShapePolicy> EngineChangeStream<P> {
    fn open(
        shared: Arc<EngineShared<P>>,
        from_seq: SequenceNumber,
    ) -> Result<EngineChangeStream<P>> {
        let from_seq = from_seq.max(1);
        let cursor_id = shared.core.change_log.register(from_seq)?;
        let pin = shared.core.cursor_pins.acquire(from_seq);
        Ok(EngineChangeStream {
            shared,
            cursor_id,
            next_seq: from_seq,
            tail_pos: 0,
            replay: None,
            replayed_through: 0,
            pin,
        })
    }

    /// Finishes a delivery: resolves separated values, advances the cursor
    /// and both pins, and wraps the batch as an event.
    fn deliver(&mut self, batch: WriteBatch) -> Result<Option<ChangeEvent>> {
        let batch = self.resolve_pointers(batch)?;
        let core = &self.shared.core;
        core.change_log
            .add_shipped_bytes(batch.contents().len() as u64);
        let event = ChangeEvent::from_batch(batch);
        self.next_seq = self.next_seq.max(event.last_seq + 1);
        core.change_log.update_cursor(self.cursor_id, self.next_seq);
        // Acquire the new vlog pin before the old one drops, so the reclaim
        // floor never momentarily passes the cursor.
        self.pin = core.cursor_pins.acquire(self.next_seq);
        Ok(Some(event))
    }

    /// Rewrites a batch's value-pointer records back to inline values. The
    /// WAL (and the tail) hold post-separation bytes; consumers get the user
    /// data. A pointer whose value log is gone — the family was dropped, or
    /// GC retired the file before this cursor existed — is unrecoverable
    /// history and truncates the stream.
    fn resolve_pointers(&self, batch: WriteBatch) -> Result<WriteBatch> {
        let mut has_pointer = false;
        for record in batch.iter() {
            if record?.value_type == ValueType::ValuePointer {
                has_pointer = true;
                break;
            }
        }
        if !has_pointer {
            return Ok(batch);
        }
        // Each touched family's reader cache, grabbed under a brief state
        // lock. Never taken while holding the change-log lock.
        let mut resolvers: BTreeMap<CfId, Arc<VlogReaderCache>> = BTreeMap::new();
        {
            let state = self.shared.core.state.lock();
            for record in batch.iter() {
                let record = record?;
                if record.value_type != ValueType::ValuePointer {
                    continue;
                }
                if let Some(cf) = state.cfs.get(&record.cf) {
                    resolvers
                        .entry(record.cf)
                        .or_insert_with(|| Arc::clone(&cf.vlog.readers));
                }
            }
        }
        let mut resolved = WriteBatch::new();
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                ValueType::Value => resolved.put_cf(record.cf, record.key, record.value),
                ValueType::Deletion => resolved.delete_cf(record.cf, record.key),
                ValueType::ValuePointer => {
                    let Some(resolver) = resolvers.get(&record.cf) else {
                        return Err(Error::sequence_truncated(record.sequence, record.sequence));
                    };
                    let pointer = ValuePointer::decode(record.value)?;
                    let value = resolver
                        .resolve(&pointer)
                        .map_err(|_| Error::sequence_truncated(record.sequence, record.sequence))?;
                    resolved.put_cf(record.cf, record.key, &value);
                }
            }
        }
        resolved.set_sequence(batch.sequence());
        Ok(resolved)
    }
}

impl<P: ShapePolicy> ChangeStream for EngineChangeStream<P> {
    fn next_event(&mut self, timeout: Duration) -> Result<Option<ChangeEvent>> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.core.shutting_down.load(Ordering::SeqCst) {
                return Err(Error::ShuttingDown);
            }
            // Drain an in-flight segment replay first.
            if self.replay.is_some() {
                let (number, next) = {
                    let (number, replay) = self.replay.as_mut().expect("checked above");
                    (*number, replay.next_batch()?)
                };
                match next {
                    Some(batch) => {
                        let last = batch.sequence() + u64::from(batch.count()).saturating_sub(1);
                        if last < self.next_seq {
                            // Delivered through an earlier segment (a batch
                            // range can straddle a rotation replayed twice)
                            // or a pre-sequenced relocation of old data.
                            continue;
                        }
                        return self.deliver(batch);
                    }
                    None => {
                        self.replayed_through = self.replayed_through.max(number);
                        self.replay = None;
                        continue;
                    }
                }
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            let wait = if wait.is_zero() { None } else { Some(wait) };
            let step = {
                let core = &self.shared.core;
                core.change_log
                    .read_tail(self.next_seq, &mut self.tail_pos, wait)
            };
            match step {
                TailRead::Batch(entry) => {
                    let batch = WriteBatch::from_contents(entry.contents.as_ref().clone())?;
                    return self.deliver(batch);
                }
                TailRead::Replay(segments) => {
                    let Some(&number) = segments.iter().find(|n| **n > self.replayed_through)
                    else {
                        // Every closed segment is replayed and the tail still
                        // starts later: the gap is the live segment's data,
                        // which never leaves the tail — so it simply has not
                        // committed yet. Report an idle tick.
                        return Ok(None);
                    };
                    let core = &self.shared.core;
                    let path = log_file_name(&core.io.db_path, number);
                    let file = match core.io.env.new_sequential_file(&path) {
                        Ok(file) => file,
                        // Reclaimed between the listing and the open (the
                        // retention cap outran this cursor).
                        Err(_) => {
                            return Err(Error::sequence_truncated(
                                self.next_seq,
                                core.change_log.truncated_floor(),
                            ))
                        }
                    };
                    self.replay = Some((number, SegmentReplay::new(file, self.next_seq)));
                }
                TailRead::Idle => return Ok(None),
                TailRead::Truncated { floor } => {
                    return Err(Error::sequence_truncated(self.next_seq, floor))
                }
            }
        }
    }

    fn cursor(&self) -> SequenceNumber {
        self.next_seq
    }

    fn backlog(&self) -> u64 {
        self.shared.core.change_log.backlog_after(self.tail_pos)
    }
}

impl<P: ShapePolicy> Drop for EngineChangeStream<P> {
    fn drop(&mut self) {
        self.shared.core.change_log.deregister(self.cursor_id);
    }
}
