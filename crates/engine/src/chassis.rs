//! The engine chassis: the machinery every LSM-family store shares.
//!
//! [`EngineDb`] owns DB open/recovery (CURRENT/MANIFEST/WAL replay), the
//! group-commit write path, `make_room_for_write` + memtable rotation, a
//! dedicated flush thread (imm -> level 0 never queues behind a level
//! compaction), a pool of compaction workers that claim disjoint jobs
//! through the [`ShapePolicy`], pending-output/live-file garbage collection,
//! the snapshot list and stats assembly. The policy decides only *what* a
//! compaction job is and *how* reads route through a version.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use pebblesdb_common::commit::{CommitGroup, CommitQueue, Role};
use pebblesdb_common::counters::EngineCounters;
use pebblesdb_common::filename::{log_file_name, parse_file_name, table_file_name, FileType};
use pebblesdb_common::iterator::{DbIterator, MergingIterator, PinnedIterator};
use pebblesdb_common::key::{InternalKey, LookupKey, SequenceNumber, ValueType};
use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
use pebblesdb_common::user_iter::UserIterator;
use pebblesdb_common::{
    Error, KvStore, ReadOptions, Result, StoreOptions, StoreStats, WriteBatch, WriteOptions,
};
use pebblesdb_skiplist::memtable::MemTableGet;
use pebblesdb_skiplist::MemTable;
use pebblesdb_sstable::{TableBuilder, TableCache};
use pebblesdb_wal::{LogReader, LogWriter};

use crate::meta::FileMetaData;
use crate::policy::{
    EngineIo, JobClaim, PolicyCtx, ShapePolicy, VersionMeta, VersionOf, VersionSetOps,
};

/// A handle to an open store built on the chassis.
///
/// Cloneable via `Arc`; all methods take `&self` and are safe to call from
/// multiple threads. Dropping the handle shuts the background threads down.
pub struct EngineDb<P: ShapePolicy> {
    inner: Arc<EngineCore<P>>,
    background_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// The shared core of an engine: IO handles, the policy, the mutexed state
/// and the background-thread rendezvous points.
pub struct EngineCore<P: ShapePolicy> {
    /// Environment, database path, options and table cache.
    pub io: EngineIo,
    /// The shape policy (guarded FLSM or degenerate-guard LSM).
    pub policy: P,
    /// The mutex-protected engine state.
    pub state: Mutex<EngineState<P>>,
    /// Group-commit writer queue: concurrent writers enqueue batches, one
    /// leader merges the group and performs WAL IO outside `state`.
    commit_queue: CommitQueue,
    /// Wakes the compaction worker pool.
    work_available: Condvar,
    /// Wakes the dedicated flush thread (imm -> level 0 never queues behind
    /// a large level compaction).
    flush_available: Condvar,
    /// Wakes writers stalled in `make_room_for_write` and `flush` callers.
    work_done: Condvar,
    shutting_down: AtomicBool,
    /// Cumulative operation counters.
    pub counters: EngineCounters,
    /// Live snapshot pins.
    pub snapshots: Arc<SnapshotList>,
}

/// The mutable engine state, shared by writers and the background threads.
pub struct EngineState<P: ShapePolicy> {
    /// The active memtable. Concurrent: the group-commit leader inserts via
    /// `&self` while `get` and streaming cursors read it lock-free, so the
    /// table is never cloned — when full it is frozen whole into `imm`.
    pub mem: Arc<MemTable>,
    /// The immutable memtable being flushed, if any.
    pub imm: Option<Arc<MemTable>>,
    /// The engine's version set (MANIFEST machinery).
    pub versions: P::Versions,
    /// The policy's own mutable state (uncommitted guards, compaction
    /// pointers, pending seek requests, ...).
    pub policy: P::State,
    /// The live write-ahead log.
    pub log: Option<LogWriter>,
    /// The live WAL's file number.
    pub log_file_number: u64,
    /// Input file numbers of every in-flight compaction job. A worker
    /// claiming new work never selects inputs that intersect this set, so
    /// concurrent jobs always operate on disjoint file subsets.
    pub claimed_inputs: BTreeSet<u64>,
    /// Output file numbers of uncommitted jobs (flushes and compactions).
    /// `remove_obsolete_files` must never delete these: they are invisible
    /// to every version until their job's `log_and_apply` commits.
    pub pending_outputs: BTreeSet<u64>,
    /// Compaction jobs currently claimed or running.
    pub active_compactions: usize,
    /// Whether the flush thread is writing `imm` to level 0 right now.
    pub flush_running: bool,
    /// Set when the last GC pass ran while a read or cursor still pinned an
    /// old version (whose files it therefore kept); `flush` on a quiesced
    /// store rescans only in that case instead of on every call.
    pub gc_rescan_needed: bool,
    /// Set when a memtable rotation created a fresh WAL whose directory
    /// entry has not been fsynced yet. The next group-commit leader syncs
    /// the directory in its *unlocked* IO section before acknowledging any
    /// write against the new log — a directory fsync under the state mutex
    /// would stall every reader for its duration.
    pub wal_dir_unsynced: bool,
    /// First background error; poisons the store.
    pub bg_error: Option<Error>,
}

impl<P: ShapePolicy> EngineDb<P> {
    /// Opens (creating if necessary) a store at `path` shaped by `policy`.
    pub fn open(
        policy: P,
        env: Arc<dyn pebblesdb_env::Env>,
        path: &Path,
        options: StoreOptions,
    ) -> Result<EngineDb<P>> {
        env.create_dir_all(path)?;
        let table_cache = Arc::new(TableCache::new(
            Arc::clone(&env),
            path.to_path_buf(),
            options.clone(),
            options.max_open_files,
        ));
        let io = EngineIo {
            env: Arc::clone(&env),
            db_path: path.to_path_buf(),
            options,
            table_cache,
        };

        let mut versions = policy.new_versions(&io);
        let current_exists = env.file_exists(&pebblesdb_common::filename::current_file_name(path));
        if current_exists {
            if io.options.error_if_exists {
                return Err(Error::invalid_argument("database already exists"));
            }
            versions.recover()?;
        } else {
            if !io.options.create_if_missing {
                return Err(Error::invalid_argument("database does not exist"));
            }
            versions.create_new()?;
        }

        let mut state: EngineState<P> = EngineState {
            mem: Arc::new(MemTable::new()),
            imm: None,
            versions,
            policy: policy.new_state(),
            log: None,
            log_file_number: 0,
            claimed_inputs: BTreeSet::new(),
            pending_outputs: BTreeSet::new(),
            active_compactions: 0,
            flush_running: false,
            gc_rescan_needed: false,
            wal_dir_unsynced: false,
            bg_error: None,
        };

        recover_wals(&io, &mut state)?;

        // Start a fresh WAL for new writes, making its directory entry
        // durable before any synced write is acknowledged against it.
        let log_number = state.versions.new_file_number();
        let log_file = env.new_writable_file(&log_file_name(path, log_number))?;
        env.sync_dir(path)?;
        state.log = Some(LogWriter::new(log_file));
        state.log_file_number = log_number;
        state.versions.commit_level0(None, Some(log_number))?;

        let label = policy.engine_name().to_ascii_lowercase();
        let inner = Arc::new(EngineCore {
            io,
            policy,
            state: Mutex::new(state),
            commit_queue: CommitQueue::new(),
            work_available: Condvar::new(),
            flush_available: Condvar::new(),
            work_done: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            counters: EngineCounters::new(),
            snapshots: SnapshotList::new(),
        });

        {
            let mut state = inner.state.lock();
            inner.remove_obsolete_files(&mut state);
        }

        // The background subsystem: one dedicated flush thread (imm -> L0
        // never waits behind a large compaction) plus a pool of
        // `compaction_threads` workers that claim disjoint jobs through the
        // policy. A policy whose jobs cannot be split (classic leveled
        // compaction) simply refuses to claim while another job is running.
        let mut handles = Vec::new();
        let flush_inner = Arc::clone(&inner);
        handles.push(
            std::thread::Builder::new()
                .name(format!("{label}-flush"))
                .spawn(move || EngineCore::flush_main(flush_inner))
                .map_err(|e| Error::internal(format!("spawn flush thread: {e}")))?,
        );
        for worker in 0..inner.io.options.compaction_threads.max(1) {
            let bg_inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{label}-compact-{worker}"))
                    .spawn(move || EngineCore::compaction_worker_main(bg_inner))
                    .map_err(|e| Error::internal(format!("spawn compaction thread: {e}")))?,
            );
        }

        Ok(EngineDb {
            inner,
            background_threads: Mutex::new(handles),
        })
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &StoreOptions {
        &self.inner.io.options
    }

    /// The shared core (exposed for policy-specific accessors and tests).
    pub fn core(&self) -> &Arc<EngineCore<P>> {
        &self.inner
    }

    /// Runs `f` against the current version under the state lock.
    pub fn with_current_version<R>(&self, f: impl FnOnce(&VersionOf<P>) -> R) -> R {
        let state = self.inner.state.lock();
        f(state.versions.current_unpinned())
    }
}

impl<P: ShapePolicy> Drop for EngineDb<P> {
    fn drop(&mut self) {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.work_available.notify_all();
        self.inner.flush_available.notify_all();
        for handle in self.background_threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Replays write-ahead logs newer than the manifest's log number.
fn recover_wals<P: ShapePolicy>(io: &EngineIo, state: &mut EngineState<P>) -> Result<()> {
    let min_log = state.versions.log_number();
    let mut log_numbers: Vec<u64> = io
        .env
        .children(&io.db_path)?
        .iter()
        .filter_map(|name| parse_file_name(name))
        .filter(|(ty, number)| *ty == FileType::WriteAheadLog && *number >= min_log)
        .map(|(_, number)| number)
        .collect();
    log_numbers.sort_unstable();

    for number in log_numbers {
        state.versions.mark_file_number_used(number);
        let file = io
            .env
            .new_sequential_file(&log_file_name(&io.db_path, number))?;
        let mut reader = LogReader::new(file);
        // A clean end or a torn tail both end replay of this log.
        while let Ok(Some(record)) = reader.read_record() {
            let batch = match WriteBatch::from_contents(record) {
                Ok(batch) => batch,
                Err(_) => break,
            };
            let base_seq = batch.sequence();
            let mut applied = 0u64;
            for item in batch.iter() {
                let item = match item {
                    Ok(item) => item,
                    Err(_) => break,
                };
                state
                    .mem
                    .add(item.sequence, item.value_type, item.key, item.value);
                applied += 1;
            }
            let last = base_seq + applied.saturating_sub(1);
            if last > state.versions.last_sequence() {
                state.versions.set_last_sequence(last);
            }
            if state.mem.approximate_memory_usage() > io.options.write_buffer_size {
                flush_recovery_memtable(io, state)?;
            }
        }
    }
    if !state.mem.is_empty() {
        flush_recovery_memtable(io, state)?;
    }
    Ok(())
}

fn flush_recovery_memtable<P: ShapePolicy>(
    io: &EngineIo,
    state: &mut EngineState<P>,
) -> Result<()> {
    let number = state.versions.new_file_number();
    let mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
    if let Some(meta) = build_table_from_memtable(io, &mem, number)? {
        state.versions.commit_level0(Some(&meta), None)?;
    }
    Ok(())
}

/// Writes the contents of a memtable into a new level-0 sstable, syncing the
/// directory so the new entry is durable before a MANIFEST references it.
fn build_table_from_memtable(
    io: &EngineIo,
    mem: &MemTable,
    file_number: u64,
) -> Result<Option<FileMetaData>> {
    let mut iter = mem.iter();
    iter.seek_to_first();
    if !iter.valid() {
        return Ok(None);
    }
    let file = io
        .env
        .new_writable_file(&table_file_name(&io.db_path, file_number))?;
    let mut builder = TableBuilder::new(&io.options, file);
    let mut smallest: Option<Vec<u8>> = None;
    let mut largest: Vec<u8> = Vec::new();
    while iter.valid() {
        if smallest.is_none() {
            smallest = Some(iter.key().to_vec());
        }
        largest = iter.key().to_vec();
        builder.add(iter.key(), iter.value())?;
        iter.next();
    }
    let file_size = builder.finish()?;
    io.env.sync_dir(&io.db_path)?;
    Ok(Some(FileMetaData::new(
        file_number,
        file_size,
        InternalKey::from_encoded(smallest.unwrap_or_default()),
        InternalKey::from_encoded(largest),
    )))
}

/// The sequence number a read issued with `opts` may observe: the requested
/// snapshot, clamped to the store's current sequence.
fn visible_sequence(opts: &ReadOptions, last_sequence: SequenceNumber) -> SequenceNumber {
    opts.snapshot
        .map(|snap| snap.min(last_sequence))
        .unwrap_or(last_sequence)
}

impl<P: ShapePolicy> EngineCore<P> {
    // ---------------------------------------------------------------- write

    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Writes reset read-phase heuristics (FLSM: the consecutive-seek
        // counter — section 4.2, seek compaction targets read-only phases).
        self.policy.note_write();

        let mut user_bytes = 0u64;
        for record in batch.iter() {
            let record = record?;
            user_bytes += (record.key.len() + record.value.len()) as u64;
        }

        let ticket = self.commit_queue.submit(Some(batch), opts.sync);
        let result = match self.commit_queue.wait_turn(&ticket) {
            Role::Done(result) => result,
            Role::Leader(group) => self.commit(group),
        };
        if result.is_ok() {
            self.counters.add_user_bytes(user_bytes);
        }
        result
    }

    /// Commits a write group as its leader: make room, reserve a sequence
    /// range, then append + sync the WAL and apply the merged batch to the
    /// concurrent memtable **outside** the state mutex, so readers and the
    /// compaction workers proceed during the IO. Per-key policy observation
    /// (FLSM guard selection, a pure hash) also runs unlocked; the results
    /// are absorbed under the lock after the apply. The new sequence is only
    /// published (making the group visible) after the apply succeeds.
    fn commit(&self, mut group: CommitGroup) -> Result<()> {
        let mut state = self.state.lock();
        let force = group.force_rotate && !state.mem.is_empty();
        let mut result = self.make_room_for_write(&mut state, force);

        if result.is_ok() && !group.batch.is_empty() {
            let seq = state.versions.last_sequence() + 1;
            group.batch.set_sequence(seq);
            let count = u64::from(group.batch.count());

            // Only the leader (that's us, until `complete`) touches the log
            // or inserts into `mem`, so both can leave the mutex.
            let mut log = state.log.take();
            let mem = Arc::clone(&state.mem);
            let batch = &group.batch;
            let sync = group.sync;
            let policy = &self.policy;
            let need_dir_sync = state.wal_dir_unsynced;
            let io = &self.io;
            let io_result =
                MutexGuard::unlocked(&mut state, || -> Result<Vec<(usize, Vec<u8>)>> {
                    if need_dir_sync {
                        // A rotation created this WAL; its directory entry
                        // must be durable before the group is acknowledged.
                        io.env.sync_dir(&io.db_path)?;
                    }
                    if let Some(log) = log.as_mut() {
                        log.add_record(batch.contents())?;
                        if sync {
                            log.sync()?;
                        }
                    }
                    let mut observed = Vec::new();
                    for record in batch.iter() {
                        let record = record?;
                        if record.value_type == ValueType::Value {
                            if let Some(obs) = policy.observe_key(record.key) {
                                observed.push(obs);
                            }
                        }
                        mem.add(record.sequence, record.value_type, record.key, record.value);
                    }
                    Ok(observed)
                });
            state.log = log;
            match io_result {
                Ok(observed) => {
                    let st = &mut *state;
                    if need_dir_sync {
                        st.wal_dir_unsynced = false;
                    }
                    self.policy.absorb_observations(&mut st.policy, observed);
                    st.versions.set_last_sequence(seq + count - 1);
                }
                Err(err) => {
                    // A failed WAL append/sync may have lost acknowledged
                    // bytes; poison the store like LevelDB does.
                    if state.bg_error.is_none() {
                        state.bg_error = Some(err.clone());
                    }
                    result = Err(err);
                }
            }
        }
        drop(state);
        self.commit_queue.complete(group, &result);
        result
    }

    /// Ensures there is room in the memtable, applying level-0 back-pressure.
    fn make_room_for_write(
        &self,
        state: &mut MutexGuard<'_, EngineState<P>>,
        force: bool,
    ) -> Result<()> {
        let mut allow_delay = !force;
        let mut force = force;
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            let level0_files = state.versions.current_unpinned().level0_len();
            if allow_delay && level0_files >= self.io.options.level0_slowdown_writes_trigger {
                // Gentle back-pressure: let the compaction workers make
                // progress without fully blocking this writer.
                allow_delay = false;
                let stall = Instant::now();
                self.work_available.notify_all();
                MutexGuard::unlocked(state, || std::thread::sleep(Duration::from_millis(1)));
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if !force && state.mem.approximate_memory_usage() <= self.io.options.write_buffer_size {
                return Ok(());
            }
            if state.imm.is_some() {
                // Previous memtable still flushing.
                let stall = Instant::now();
                self.flush_available.notify_one();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }
            if level0_files >= self.io.options.level0_stop_writes_trigger {
                let stall = Instant::now();
                self.work_available.notify_all();
                self.work_done.wait(state);
                self.counters
                    .record_stall(stall.elapsed().as_micros() as u64);
                continue;
            }

            // Switch to a fresh memtable and WAL. The full memtable is
            // frozen whole — cursors still pinning it keep reading it in
            // `imm` (and beyond, through their own `Arc`s) with no copy.
            let new_log_number = state.versions.new_file_number();
            let log_file = self
                .io
                .env
                .new_writable_file(&log_file_name(&self.io.db_path, new_log_number))?;
            // The new WAL's directory entry must become durable before any
            // write is acknowledged against it — but fsyncing the directory
            // here would hold the state mutex across a disk flush. Defer it
            // to the leader's unlocked IO section instead: every write into
            // the new log passes through `commit`, which syncs first.
            state.wal_dir_unsynced = true;
            let close_result = match state.log.take() {
                Some(old_log) => old_log.close(),
                None => Ok(()),
            };
            state.log = Some(LogWriter::new(log_file));
            state.log_file_number = new_log_number;
            if let Err(err) = close_result {
                // A failed close may have lost a sync on acknowledged
                // records in the old log; surface it instead of dropping it.
                if state.bg_error.is_none() {
                    state.bg_error = Some(err.clone());
                }
                return Err(err);
            }
            let full_mem = std::mem::replace(&mut state.mem, Arc::new(MemTable::new()));
            state.imm = Some(full_mem);
            force = false;
            self.flush_available.notify_one();
        }
    }

    // ----------------------------------------------------------------- read

    fn get(&self, opts: &ReadOptions, user_key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.record_get();
        let (lookup, imm, version) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.versions.last_sequence());
            let lookup = LookupKey::new(user_key, sequence);
            match state.mem.get(&lookup) {
                MemTableGet::Found(value) => return Ok(Some(value)),
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
            (lookup, state.imm.clone(), state.versions.current())
        };
        if let Some(imm) = imm {
            match imm.get(&lookup) {
                MemTableGet::Found(value) => return Ok(Some(value)),
                MemTableGet::Deleted => return Ok(None),
                MemTableGet::NotFound => {}
            }
        }
        self.policy
            .get_in_version(&self.io, &version, opts, &lookup)
    }

    /// Builds the streaming user-key cursor: memtables plus the policy's
    /// per-level iterators, merged and filtered down to the view at the
    /// cursor's sequence. Creating a cursor counts as a seek for the
    /// policy's read heuristics (FLSM: the seek-compaction trigger).
    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.counters.record_seek();
        if self.policy.note_seek() {
            {
                let mut state = self.state.lock();
                let st = &mut *state;
                self.policy.arm_requested_compaction(&mut st.policy);
            }
            self.work_available.notify_one();
        }
        let (sequence, mem, imm, version) = {
            let mut state = self.state.lock();
            let sequence = visible_sequence(opts, state.versions.last_sequence());
            (
                sequence,
                Arc::clone(&state.mem),
                state.imm.clone(),
                state.versions.current(),
            )
        };

        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        children.push(Box::new(mem.owned_iter()));
        if let Some(imm) = imm {
            children.push(Box::new(imm.owned_iter()));
        }
        self.policy
            .append_version_iterators(&self.io, &version, opts, &mut children)?;

        let merged = MergingIterator::new(children);
        let user = UserIterator::new(Box::new(merged), sequence);
        // Pin the version so obsolete-file GC cannot delete the sstables the
        // cursor is still reading.
        Ok(Box::new(PinnedIterator::new(Box::new(user), version)))
    }

    // ----------------------------------------------------- background work

    /// The dedicated flush thread: turns `imm` into a level-0 sstable the
    /// moment one exists, independently of how busy the compaction pool is.
    fn flush_main(inner: Arc<EngineCore<P>>) {
        let mut state = inner.state.lock();
        loop {
            while !inner.shutting_down.load(Ordering::SeqCst)
                && (state.imm.is_none() || state.bg_error.is_some())
            {
                inner.flush_available.wait(&mut state);
            }
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            state.flush_running = true;
            let result = inner.compact_memtable(&mut state);
            state.flush_running = false;
            if let Err(err) = result {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
            // Writers stalled on the full memtable can proceed, and the new
            // level-0 file may have armed a compaction trigger.
            inner.work_done.notify_all();
            inner.work_available.notify_all();
        }
    }

    /// One worker of the compaction pool: claim a job whose inputs are
    /// disjoint from every in-flight job, run its IO outside the state
    /// mutex, and commit the result through the serialized `log_and_apply`.
    fn compaction_worker_main(inner: Arc<EngineCore<P>>) {
        let mut state = inner.state.lock();
        loop {
            if inner.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            if let Some(claim) = inner.claim_job(&mut state) {
                inner.run_claimed_job(&mut state, claim);
                inner.work_done.notify_all();
                // The commit may have armed triggers for other levels (or
                // freed claimed inputs), so give idle workers a chance.
                inner.work_available.notify_all();
            } else {
                inner.work_available.wait(&mut state);
            }
        }
    }

    /// Claims the policy's highest-priority compaction job whose inputs do
    /// not intersect any in-flight job's inputs.
    ///
    /// On success the job's input files are recorded in `claimed_inputs`
    /// (keeping other workers off the same inputs) and its pre-allocated
    /// output numbers in `pending_outputs` (keeping the GC off files that
    /// exist on disk but are not yet committed to any version).
    pub fn claim_job(
        &self,
        state: &mut MutexGuard<'_, EngineState<P>>,
    ) -> Option<JobClaim<P::Job>> {
        if state.bg_error.is_some() {
            return None;
        }
        let smallest_snapshot = self
            .snapshots
            .compaction_floor(state.versions.last_sequence());
        let claim = {
            let st = &mut **state;
            let mut ctx = PolicyCtx {
                versions: &mut st.versions,
                state: &mut st.policy,
                claimed_inputs: &st.claimed_inputs,
                smallest_snapshot,
            };
            self.policy.pick_job(&self.io, &mut ctx)?
        };
        state
            .claimed_inputs
            .extend(claim.input_numbers.iter().copied());
        state
            .pending_outputs
            .extend(claim.output_numbers.iter().copied());
        state.active_compactions += 1;
        self.counters.record_compaction_start();
        Some(claim)
    }

    /// Runs a claimed job's IO with the state mutex released, then commits
    /// (or abandons) it and releases its claims.
    pub fn run_claimed_job(
        &self,
        state: &mut MutexGuard<'_, EngineState<P>>,
        claim: JobClaim<P::Job>,
    ) {
        let start = Instant::now();
        let io = &self.io;
        let policy = &self.policy;
        let job = claim.job;
        let io_result = MutexGuard::unlocked(state, || -> Result<Vec<FileMetaData>> {
            let outputs = policy.run_job_io(io, &job)?;
            if !outputs.is_empty() {
                // The new tables' directory entries must be durable before
                // the MANIFEST commit references them.
                io.env.sync_dir(&io.db_path)?;
            }
            Ok(outputs)
        });

        let commit_result = io_result.and_then(|outputs| {
            let smallest_snapshot = self
                .snapshots
                .compaction_floor(state.versions.last_sequence());
            let st = &mut **state;
            let mut ctx = PolicyCtx {
                versions: &mut st.versions,
                state: &mut st.policy,
                claimed_inputs: &st.claimed_inputs,
                smallest_snapshot,
            };
            let (bytes_read, bytes_written) = policy.commit_job(&mut ctx, &job, outputs)?;
            self.counters.record_compaction(
                start.elapsed().as_micros() as u64,
                bytes_read,
                bytes_written,
            );
            Ok(())
        });

        // Release the claims whether the job committed or failed, so a
        // poisoned store does not wedge its sibling workers.
        for number in &claim.input_numbers {
            state.claimed_inputs.remove(number);
        }
        for number in &claim.output_numbers {
            state.pending_outputs.remove(number);
        }
        state.active_compactions -= 1;
        self.counters.record_compaction_end();

        match commit_result {
            Ok(()) => self.remove_obsolete_files(state),
            Err(err) => {
                if state.bg_error.is_none() {
                    state.bg_error = Some(err);
                }
            }
        }
    }

    fn compact_memtable(&self, state: &mut MutexGuard<'_, EngineState<P>>) -> Result<()> {
        let imm = match state.imm.clone() {
            Some(imm) => imm,
            None => return Ok(()),
        };
        let number = state.versions.new_file_number();
        // Until the edit commits, the new table exists only on disk; keep
        // the concurrent compaction workers' GC away from it.
        state.pending_outputs.insert(number);
        let start = Instant::now();
        let io = &self.io;
        let meta = MutexGuard::unlocked(state, || build_table_from_memtable(io, &imm, number));
        let meta = match meta {
            Ok(meta) => meta,
            Err(err) => {
                state.pending_outputs.remove(&number);
                return Err(err);
            }
        };

        let log_file_number = state.log_file_number;
        let mut written = 0;
        if let Some(meta) = &meta {
            written = meta.file_size;
        }
        let commit = state
            .versions
            .commit_level0(meta.as_ref(), Some(log_file_number));
        state.pending_outputs.remove(&number);
        commit?;
        state.imm = None;
        self.counters.record_flush();
        self.counters
            .record_compaction(start.elapsed().as_micros() as u64, 0, written);
        self.remove_obsolete_files(state);
        Ok(())
    }

    // -------------------------------------------------------------- cleanup

    /// Deletes files no live version, pinned version or in-flight job needs.
    pub fn remove_obsolete_files(&self, state: &mut MutexGuard<'_, EngineState<P>>) {
        // If a pinned old version kept files alive in this pass, a later
        // quiesced `flush` must rescan once the pins drop.
        let (live, pinned) = state.versions.live_files_and_pins();
        state.gc_rescan_needed = pinned;
        let log_number = state.versions.log_number();
        let manifest_number = state.versions.manifest_number();
        let children = match self.io.env.children(&self.io.db_path) {
            Ok(children) => children,
            Err(_) => return,
        };
        for name in children {
            let Some((ty, number)) = parse_file_name(&name) else {
                continue;
            };
            let keep = match ty {
                // A table is live if any version references it — or if it is
                // the not-yet-committed output of an in-flight flush or
                // compaction job running on another thread.
                FileType::Table => {
                    live.binary_search(&number).is_ok() || state.pending_outputs.contains(&number)
                }
                FileType::WriteAheadLog => number >= log_number || number == state.log_file_number,
                FileType::Descriptor => number >= manifest_number,
                FileType::Temp => false,
                FileType::Current | FileType::Lock | FileType::BtreePages => true,
            };
            if !keep {
                if ty == FileType::Table {
                    self.io.table_cache.evict(number);
                }
                let _ = self.io.env.remove_file(&self.io.db_path.join(&name));
            }
        }
    }

    // ---------------------------------------------------------------- flush

    fn flush(&self) -> Result<()> {
        // Rotate the active memtable through the commit queue so the
        // rotation is serialised with in-flight write groups.
        let needs_rotate = !self.state.lock().mem.is_empty();
        if needs_rotate {
            let ticket = self.commit_queue.submit(None, false);
            match self.commit_queue.wait_turn(&ticket) {
                Role::Done(result) => result?,
                Role::Leader(group) => self.commit(group)?,
            }
        }
        let mut state = self.state.lock();
        loop {
            if let Some(err) = &state.bg_error {
                return Err(err.clone());
            }
            if state.imm.is_some()
                || state.flush_running
                || state.active_compactions > 0
                || state.versions.needs_compaction()
            {
                self.flush_available.notify_one();
                self.work_available.notify_all();
                self.work_done.wait(&mut state);
            } else {
                // Quiesced: reclaim files whose deletion a commit-time GC
                // skipped because a read still pinned their version. Skipped
                // when the last GC saw no pins — it already ran to
                // completion, so rescanning the directory would be wasted
                // work under the state lock.
                if state.gc_rescan_needed {
                    self.remove_obsolete_files(&mut state);
                }
                return Ok(());
            }
        }
    }

    fn stats(&self) -> StoreStats {
        let io = self.io.env.io_stats().snapshot();
        let (block_cache_hits, block_cache_misses) = self.io.table_cache.block_cache_hit_miss();
        let (table_cache_hits, table_cache_misses) = self.io.table_cache.table_cache_hit_miss();
        let state = self.state.lock();
        let version = state.versions.current_unpinned();
        let memory = state.mem.approximate_memory_usage()
            + state
                .imm
                .as_ref()
                .map(|m| m.approximate_memory_usage())
                .unwrap_or(0)
            + self.io.table_cache.memory_usage();
        StoreStats {
            user_bytes_written: EngineCounters::load(&self.counters.user_bytes_written),
            bytes_written: io.bytes_written,
            bytes_read: io.bytes_read,
            disk_bytes_live: version.total_bytes(),
            num_files: version.num_files() as u64,
            compactions: EngineCounters::load(&self.counters.compactions),
            flushes: EngineCounters::load(&self.counters.flushes),
            max_concurrent_compactions: EngineCounters::load(
                &self.counters.max_concurrent_compactions,
            ),
            compaction_micros: EngineCounters::load(&self.counters.compaction_micros),
            compaction_bytes_read: EngineCounters::load(&self.counters.compaction_bytes_read),
            compaction_bytes_written: EngineCounters::load(&self.counters.compaction_bytes_written),
            memory_usage_bytes: memory as u64,
            gets: EngineCounters::load(&self.counters.gets),
            seeks: EngineCounters::load(&self.counters.seeks),
            write_stalls: EngineCounters::load(&self.counters.write_stalls),
            write_stall_micros: EngineCounters::load(&self.counters.write_stall_micros),
            memtable_clones: EngineCounters::load(&self.counters.memtable_clones),
            block_cache_hits,
            block_cache_misses,
            table_cache_hits,
            table_cache_misses,
        }
    }
}

impl<P: ShapePolicy> KvStore for EngineDb<P> {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.inner.write(batch, opts)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.get(opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.inner.write(batch, opts)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.inner.write(batch, opts)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.inner.iter(opts)
    }

    fn snapshot(&self) -> Snapshot {
        let state = self.inner.state.lock();
        self.inner.snapshots.acquire(state.versions.last_sequence())
    }

    fn flush(&self) -> Result<()> {
        self.inner.flush()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn engine_name(&self) -> String {
        self.inner.policy.engine_name()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        let state = self.inner.state.lock();
        state.versions.current_unpinned().file_sizes()
    }
}
