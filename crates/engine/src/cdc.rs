//! Change-data capture: the in-memory commit tail and WAL retention floors.
//!
//! The chassis commits every batch through one WAL in one total order;
//! [`ChangeLog`] is the bookkeeping that lets change streams observe that
//! order without perturbing the write path:
//!
//! * a bounded **tail** of recently committed batches (their post-separation
//!   WAL payloads), so a stream near the frontier never touches the disk;
//! * a **birth** map, `WAL segment -> last sequence committed before the
//!   segment was opened`, so a stream that predates the tail knows exactly
//!   which closed segments to replay — and so WAL reclamation knows which
//!   segments a lagging cursor still needs;
//! * the registered **cursors** themselves, which pin WAL segments the way
//!   snapshots pin versions; and
//! * the **truncated floor**: the highest sequence whose history is gone.
//!   Streams at or below it fail with `SequenceTruncated` instead of
//!   silently skipping reclaimed batches.
//!
//! Locking: `ChangeLog` has its own mutex and is safe to lock while holding
//! the engine state mutex (the commit publish, the rotation note and the
//! reclaim-floor query all do). The reverse order — taking the state mutex
//! while holding this one — is forbidden; the stream implementation copies
//! what it needs out and drops this lock first.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use pebblesdb_common::key::SequenceNumber;
use pebblesdb_common::{Error, Result};

/// One committed batch retained in the tail: its WAL payload (header
/// included, value separation already applied) plus where it landed.
#[derive(Clone)]
pub struct TailBatch {
    /// The WAL segment the batch was appended to.
    pub log_number: u64,
    /// Sequence number of the batch's last record.
    pub last_seq: SequenceNumber,
    /// `WriteBatch::contents()` as written to the WAL.
    pub contents: Arc<Vec<u8>>,
}

/// What [`ChangeLog::read_tail`] resolved the cursor's position to.
pub enum TailRead {
    /// The next committed batch at or past the cursor.
    Batch(TailBatch),
    /// The cursor predates the tail: replay these closed segments (sorted
    /// ascending), then ask again.
    Replay(Vec<u64>),
    /// Cursor at the frontier and nothing committed within the wait.
    Idle,
    /// The cursor's history has been reclaimed.
    Truncated {
        /// The highest reclaimed sequence number.
        floor: SequenceNumber,
    },
}

struct ChangeLogInner {
    /// Recently committed batches, in commit order.
    tail: VecDeque<TailBatch>,
    /// Total payload bytes currently in `tail`.
    tail_bytes: usize,
    /// The first sequence the tail still fully covers: every committed
    /// batch with `last_seq >= tail_start` is present in `tail`.
    tail_start: SequenceNumber,
    /// Batches ever evicted off the tail's front; `evicted + index` is a
    /// stable absolute position in the commit order for cursors.
    evicted: u64,
    /// Sequences at or below this are unreadable (their WAL segments were
    /// reclaimed). Only consulted when a cursor needs WAL replay — the tail
    /// serves its range regardless.
    truncated_floor: SequenceNumber,
    /// WAL segment number -> last sequence committed before it was opened
    /// (its records all carry later sequences... except pre-sequenced
    /// batches, see `segment_floor_for`). Maintained for every segment
    /// still on disk.
    births: BTreeMap<u64, SequenceNumber>,
    /// The live (still-appending) segment; never replayed, never evictable
    /// from the tail, never reclaimed.
    current_log: u64,
    /// Registered stream cursors: id -> next sequence to deliver.
    cursors: HashMap<u64, SequenceNumber>,
    next_cursor_id: u64,
}

/// The commit tail, segment births and cursor registry of one store.
pub struct ChangeLog {
    inner: Mutex<ChangeLogInner>,
    /// Signalled by every publish; tail-mode streams wait here.
    data_ready: Condvar,
    /// Byte budget for the tail (see `StoreOptions::cdc_tail_bytes`).
    cap_bytes: usize,
    /// Closed-segment retention cap (see
    /// `StoreOptions::cdc_wal_retain_segments`).
    retain_segments: usize,
    /// Bytes of batch payload handed to streams, across all cursors.
    wal_bytes_shipped: AtomicU64,
}

impl ChangeLog {
    /// Bootstraps the log at open time. `births` covers every WAL segment
    /// found on disk plus the fresh one; `current_log` is the fresh segment;
    /// `last_sequence` is the recovered frontier. The tail starts empty, so
    /// it covers exactly the not-yet-committed future; everything earlier is
    /// WAL-replay territory, bounded below by the oldest surviving segment.
    pub fn new(
        cap_bytes: usize,
        retain_segments: usize,
        births: BTreeMap<u64, SequenceNumber>,
        current_log: u64,
        last_sequence: SequenceNumber,
    ) -> ChangeLog {
        let truncated_floor = births.values().next().copied().unwrap_or(last_sequence);
        ChangeLog {
            inner: Mutex::new(ChangeLogInner {
                tail: VecDeque::new(),
                tail_bytes: 0,
                tail_start: last_sequence + 1,
                evicted: 0,
                truncated_floor,
                births,
                current_log,
                cursors: HashMap::new(),
                next_cursor_id: 1,
            }),
            data_ready: Condvar::new(),
            cap_bytes: cap_bytes.max(1),
            retain_segments,
            wal_bytes_shipped: AtomicU64::new(0),
        }
    }

    /// Appends freshly committed batches (one commit group) to the tail and
    /// wakes waiting streams. Called by the commit leader after the group
    /// succeeded, while it still holds the engine state mutex — commits are
    /// serialized, so the tail sees them in commit order.
    pub fn publish(&self, batches: Vec<TailBatch>) {
        if batches.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for batch in batches {
            inner.tail_bytes += batch.contents.len();
            inner.tail.push_back(batch);
        }
        // Evict oldest-first down to the budget — but never a batch that
        // only exists in the live WAL segment: replay reads only *closed*
        // segments (a live segment can tear under a concurrent append), so
        // everything the live segment holds must stay in memory. The tail
        // can therefore overshoot the budget by up to one segment.
        while inner.tail_bytes > self.cap_bytes {
            let Some(front) = inner.tail.front() else {
                break;
            };
            if front.log_number >= inner.current_log {
                break;
            }
            let front = inner.tail.pop_front().expect("checked above");
            inner.tail_bytes -= front.contents.len();
            inner.evicted += 1;
            // Every evicted batch satisfies `last_seq < tail_start` after
            // this, so the tail still covers [tail_start, frontier] whole.
            inner.tail_start = inner.tail_start.max(front.last_seq + 1);
        }
        drop(inner);
        self.data_ready.notify_all();
    }

    /// Notes a WAL rotation: `new_log` is now the live segment and every
    /// sequence committed from here on is `> last_sequence`.
    pub fn note_rotation(&self, new_log: u64, last_sequence: SequenceNumber) {
        let mut inner = self.inner.lock();
        inner.births.insert(new_log, last_sequence);
        inner.current_log = new_log;
    }

    /// Registers a cursor at `from_seq`, pinning the WAL segments it needs.
    /// Fails immediately when that history is already reclaimed.
    pub fn register(&self, from_seq: SequenceNumber) -> Result<u64> {
        let mut inner = self.inner.lock();
        if from_seq < inner.tail_start && from_seq <= inner.truncated_floor {
            return Err(Error::sequence_truncated(from_seq, inner.truncated_floor));
        }
        let id = inner.next_cursor_id;
        inner.next_cursor_id += 1;
        inner.cursors.insert(id, from_seq);
        Ok(id)
    }

    /// Advances a cursor's pin to `next_seq` (its next undelivered sequence).
    pub fn update_cursor(&self, id: u64, next_seq: SequenceNumber) {
        let mut inner = self.inner.lock();
        if let Some(seq) = inner.cursors.get_mut(&id) {
            *seq = next_seq;
        }
    }

    /// Drops a cursor's pin.
    pub fn deregister(&self, id: u64) {
        self.inner.lock().cursors.remove(&id);
    }

    /// Number of live cursors.
    pub fn streams_active(&self) -> u64 {
        self.inner.lock().cursors.len() as u64
    }

    /// Records `n` bytes of batch payload handed to a stream.
    pub fn add_shipped_bytes(&self, n: u64) {
        self.wal_bytes_shipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Total bytes of batch payload handed to streams so far.
    pub fn shipped_bytes(&self) -> u64 {
        self.wal_bytes_shipped.load(Ordering::Relaxed)
    }

    /// Committed batches past the absolute tail position `pos` — a cursor's
    /// lag in batches (a lower bound while the cursor is in WAL replay).
    pub fn backlog_after(&self, pos: u64) -> u64 {
        let inner = self.inner.lock();
        (inner.evicted + inner.tail.len() as u64).saturating_sub(pos)
    }

    /// The sequence at or below which history is unreadable.
    pub fn truncated_floor(&self) -> SequenceNumber {
        self.inner.lock().truncated_floor
    }

    /// The oldest WAL segment the garbage collector must keep, taking the
    /// column-family floors (`cf_min_log`), the retention cap and every
    /// registered cursor into account. Also the **commit point of
    /// truncation**: births below the returned floor are forgotten and the
    /// truncated floor advances, so callers must actually treat segments
    /// below the returned number as deleted.
    ///
    /// * With no retention cap (`cdc_wal_retain_segments == 0`) a live
    ///   cursor pins every closed segment its position still needs, without
    ///   bound; with no cursors the family floors decide alone (the
    ///   pre-replication behaviour).
    /// * With a cap of `N`, the newest `N` closed segments are always kept —
    ///   even below the family floors, so a follower can resume across a
    ///   restart — and cursors get **at most** that window: one that lags
    ///   past it is truncated rather than stalling reclamation forever.
    pub fn wal_reclaim_floor(&self, cf_min_log: u64) -> u64 {
        let mut inner = self.inner.lock();
        let mut floor = cf_min_log;
        if self.retain_segments == 0 {
            let needed: Vec<u64> = inner
                .cursors
                .values()
                .map(|&seq| segment_floor_for(&inner.births, inner.current_log, seq))
                .collect();
            for log in needed {
                floor = floor.min(log);
            }
        } else {
            let closed: Vec<u64> = inner
                .births
                .keys()
                .copied()
                .filter(|log| *log < inner.current_log)
                .collect();
            let window_floor = if closed.len() <= self.retain_segments {
                closed.first().copied().unwrap_or(floor)
            } else {
                closed[closed.len() - self.retain_segments]
            };
            floor = floor.min(window_floor);
        }
        // Segments below the floor are about to disappear; record what that
        // makes unreadable. The oldest *surviving* segment's birth is the
        // highest sequence whose history is gone.
        inner.births.retain(|log, _| *log >= floor);
        if let Some(&birth) = inner.births.values().next() {
            if birth > inner.truncated_floor {
                inner.truncated_floor = birth;
            }
        }
        floor
    }

    /// Resolves a cursor's position against the tail.
    ///
    /// `pos` is the cursor's absolute tail position (opaque to the caller;
    /// start at 0). When the cursor's sequence predates the tail, returns
    /// the closed segments to replay instead. With a `wait`, blocks up to
    /// that long for a commit when the cursor is at the frontier.
    pub fn read_tail(
        &self,
        next_seq: SequenceNumber,
        pos: &mut u64,
        wait: Option<Duration>,
    ) -> TailRead {
        let deadline = wait.map(|w| Instant::now() + w);
        let mut inner = self.inner.lock();
        loop {
            if next_seq < inner.tail_start {
                if next_seq <= inner.truncated_floor {
                    return TailRead::Truncated {
                        floor: inner.truncated_floor,
                    };
                }
                let from = segment_floor_for(&inner.births, inner.current_log, next_seq);
                let segments: Vec<u64> = inner
                    .births
                    .keys()
                    .copied()
                    .filter(|log| *log >= from && *log < inner.current_log)
                    .collect();
                return TailRead::Replay(segments);
            }
            // The tail covers the cursor. Clamp the position to the tail's
            // front (everything evicted is below `tail_start`, hence below
            // `next_seq`), then skip batches the cursor is already past —
            // pre-sequenced relocations of old data land in commit order
            // with old sequences and are not re-delivered.
            if *pos < inner.evicted {
                *pos = inner.evicted;
            }
            loop {
                let index = (*pos - inner.evicted) as usize;
                let Some(entry) = inner.tail.get(index) else {
                    break;
                };
                *pos += 1;
                if entry.last_seq >= next_seq {
                    return TailRead::Batch(entry.clone());
                }
            }
            // At the frontier.
            let Some(deadline) = deadline else {
                return TailRead::Idle;
            };
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() || self.data_ready.wait_for(&mut inner, remaining).timed_out() {
                return TailRead::Idle;
            }
        }
    }
}

/// The oldest segment a cursor at `seq` can still need: the newest segment
/// opened when strictly fewer than `seq` sequences were committed. Every
/// batch with `last_seq >= seq` lives in that segment or a later one,
/// because a segment's birth is the store's frontier at its open — no
/// earlier segment can hold a later last sequence. (Pre-sequenced batches
/// may put *old* sequences in *new* segments; that direction is harmless —
/// the floor errs toward keeping more, never less.)
fn segment_floor_for(
    births: &BTreeMap<u64, SequenceNumber>,
    current_log: u64,
    seq: SequenceNumber,
) -> u64 {
    births
        .iter()
        .rev()
        .find(|(_, &birth)| birth < seq)
        .map(|(&log, _)| log)
        .unwrap_or_else(|| births.keys().next().copied().unwrap_or(current_log))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(log_number: u64, last_seq: u64, len: usize) -> TailBatch {
        TailBatch {
            log_number,
            last_seq,
            contents: Arc::new(vec![0u8; len]),
        }
    }

    fn fresh(cap: usize, retain: usize) -> ChangeLog {
        // A store opened empty: fresh segment 2, nothing committed.
        ChangeLog::new(cap, retain, BTreeMap::from([(2, 0)]), 2, 0)
    }

    #[test]
    fn tail_serves_batches_in_commit_order() {
        let log = fresh(1 << 20, 0);
        log.publish(vec![batch(2, 1, 10), batch(2, 3, 10)]);
        let mut pos = 0;
        match log.read_tail(1, &mut pos, None) {
            TailRead::Batch(b) => assert_eq!(b.last_seq, 1),
            _ => panic!("expected a batch"),
        }
        match log.read_tail(2, &mut pos, None) {
            TailRead::Batch(b) => assert_eq!(b.last_seq, 3),
            _ => panic!("expected a batch"),
        }
        assert!(matches!(log.read_tail(4, &mut pos, None), TailRead::Idle));
        assert_eq!(log.backlog_after(pos), 0);
    }

    #[test]
    fn eviction_respects_the_live_segment_and_advances_tail_start() {
        let log = fresh(25, 0);
        // Three 10-byte batches in the live segment: none may evict.
        log.publish(vec![batch(2, 1, 10), batch(2, 2, 10), batch(2, 3, 10)]);
        let mut pos = 0;
        assert!(matches!(
            log.read_tail(1, &mut pos, None),
            TailRead::Batch(_)
        ));
        // Rotation closes segment 2; the next publish can evict its batches.
        log.note_rotation(3, 3);
        log.publish(vec![batch(3, 4, 10)]);
        // 40 bytes > 25: evict from the front until within budget.
        let mut pos2 = 0;
        match log.read_tail(1, &mut pos2, None) {
            TailRead::Replay(segments) => assert_eq!(segments, vec![2]),
            _ => panic!("cursor at 1 must now replay the closed segment"),
        }
        // A cursor past the evicted range still reads from the tail.
        let mut pos3 = 0;
        match log.read_tail(4, &mut pos3, None) {
            TailRead::Batch(b) => assert_eq!(b.last_seq, 4),
            _ => panic!("expected a batch"),
        }
    }

    #[test]
    fn reclaim_floor_pins_for_cursors_without_a_cap() {
        let log = fresh(1 << 20, 0);
        log.note_rotation(3, 10);
        log.note_rotation(4, 20);
        // No cursors: the family floor decides alone.
        assert_eq!(log.wal_reclaim_floor(4), 4);
        // After reclaiming below 4, sequences <= 10 are gone... but births
        // were pruned, so re-derive on a fresh log for the cursor case.
        let log = fresh(1 << 20, 0);
        log.note_rotation(3, 10);
        log.note_rotation(4, 20);
        let _cursor = log.register(5).unwrap();
        // A cursor at 5 needs segment 2 (birth 0 < 5); nothing may go.
        assert_eq!(log.wal_reclaim_floor(4), 2);
        // A cursor at 11 needs segment 3 (birth 10 < 11 <= 20).
        let log = fresh(1 << 20, 0);
        log.note_rotation(3, 10);
        log.note_rotation(4, 20);
        let id = log.register(11).unwrap();
        assert_eq!(log.wal_reclaim_floor(4), 3);
        log.deregister(id);
        assert_eq!(log.wal_reclaim_floor(4), 4);
    }

    #[test]
    fn retention_cap_keeps_a_window_and_truncates_laggards() {
        // A 1-byte tail budget: every closed-segment batch evicts on the
        // next publish, so old history lives only in the WAL segments —
        // the situation the retention cap exists for.
        let log = fresh(1, 2);
        log.publish(vec![batch(2, 10, 10)]);
        log.note_rotation(3, 10);
        log.publish(vec![batch(3, 20, 10)]);
        log.note_rotation(4, 20);
        log.publish(vec![batch(4, 30, 10)]);
        log.note_rotation(5, 30);
        let cursor = log.register(1).unwrap();
        // Closed segments: 2, 3, 4. Cap 2 keeps {3, 4} even though the
        // cursor would need 2 — and even though the families only need 5.
        assert_eq!(log.wal_reclaim_floor(5), 3);
        // Segment 2's range (sequences <= 10, segment 3's birth) is gone.
        assert_eq!(log.truncated_floor(), 10);
        let mut pos = 0;
        match log.read_tail(1, &mut pos, None) {
            TailRead::Truncated { floor } => assert_eq!(floor, 10),
            _ => panic!("lagging cursor must be truncated"),
        }
        log.deregister(cursor);
        // A fresh register below the floor fails immediately.
        assert!(log.register(9).unwrap_err().is_sequence_truncated());
        assert!(log.register(11).is_ok());
    }

    #[test]
    fn retention_cap_keeps_the_window_with_no_cursors() {
        let log = fresh(1 << 20, 2);
        log.note_rotation(3, 10);
        log.note_rotation(4, 20);
        log.note_rotation(5, 30);
        // Families are done with everything below 5; the window still
        // keeps the two newest closed segments for follower restarts.
        assert_eq!(log.wal_reclaim_floor(5), 3);
    }

    #[test]
    fn bootstrap_truncation_floor_comes_from_the_oldest_surviving_segment() {
        // Reopened store: segments 7 (birth 100) and 9 (fresh, birth 130)
        // survive; history at or below 100 was reclaimed in a past life.
        let log = ChangeLog::new(1 << 20, 2, BTreeMap::from([(7, 100), (9, 130)]), 9, 130);
        assert_eq!(log.truncated_floor(), 100);
        assert!(log.register(100).unwrap_err().is_sequence_truncated());
        let cursor = log.register(101).unwrap();
        let mut pos = 0;
        match log.read_tail(101, &mut pos, None) {
            TailRead::Replay(segments) => assert_eq!(segments, vec![7]),
            _ => panic!("expected replay of the retained segment"),
        }
        log.deregister(cursor);
    }

    #[test]
    fn shipped_bytes_and_stream_counts_accumulate() {
        let log = fresh(1 << 20, 0);
        assert_eq!(log.streams_active(), 0);
        let a = log.register(1).unwrap();
        let _b = log.register(1).unwrap();
        assert_eq!(log.streams_active(), 2);
        log.deregister(a);
        assert_eq!(log.streams_active(), 1);
        log.add_shipped_bytes(10);
        log.add_shipped_bytes(5);
        assert_eq!(log.shipped_bytes(), 15);
    }
}
