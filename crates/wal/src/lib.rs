//! The write-ahead log: durable record stream for crash recovery.
//!
//! Both engines append serialized [`WriteBatch`]es to a log before applying
//! them to the memtable; on restart the log is replayed to rebuild the
//! memtable contents that had not yet been flushed to sstables.
//!
//! The format is the LevelDB log format: the file is a sequence of 32 KiB
//! blocks, each holding one or more records. A logical record larger than
//! the space left in a block is split into FIRST/MIDDLE/LAST fragments; every
//! fragment carries a masked CRC32C so torn writes are detected and the tail
//! of the log can be safely ignored after a crash.
//!
//! [`WriteBatch`]: pebblesdb_common::WriteBatch

pub mod reader;
pub mod replay;
pub mod writer;

pub use reader::LogReader;
pub use replay::SegmentReplay;
pub use writer::LogWriter;

/// Size of a log block in bytes.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Bytes of header per physical record: checksum (4) + length (2) + type (1).
pub const HEADER_SIZE: usize = 7;

/// Physical record types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordType {
    /// A record fully contained in one fragment.
    Full = 1,
    /// The first fragment of a multi-fragment record.
    First = 2,
    /// A middle fragment.
    Middle = 3,
    /// The final fragment.
    Last = 4,
}

impl RecordType {
    /// Decodes a record type tag.
    pub fn from_u8(tag: u8) -> Option<RecordType> {
        match tag {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;

    fn write_records(env: &MemEnv, path: &Path, records: &[Vec<u8>]) {
        let file = env.new_writable_file(path).unwrap();
        let mut writer = LogWriter::new(file);
        for rec in records {
            writer.add_record(rec).unwrap();
        }
        writer.sync().unwrap();
    }

    fn read_records(env: &MemEnv, path: &Path) -> Vec<Vec<u8>> {
        let file = env.new_sequential_file(path).unwrap();
        let mut reader = LogReader::new(file);
        let mut out = Vec::new();
        while let Some(rec) = reader.read_record().unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn roundtrip_small_records() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000001.log");
        let records = vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()];
        write_records(&env, path, &records);
        assert_eq!(read_records(&env, path), records);
    }

    #[test]
    fn roundtrip_records_spanning_blocks() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000002.log");
        let records = vec![
            vec![b'a'; 10],
            vec![b'b'; BLOCK_SIZE],     // Spans two blocks.
            vec![b'c'; 3 * BLOCK_SIZE], // Spans four blocks.
            vec![b'd'; 17],
        ];
        write_records(&env, path, &records);
        assert_eq!(read_records(&env, path), records);
    }

    #[test]
    fn empty_records_are_preserved() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000003.log");
        let records = vec![Vec::new(), b"x".to_vec(), Vec::new()];
        write_records(&env, path, &records);
        assert_eq!(read_records(&env, path), records);
    }

    #[test]
    fn truncated_tail_is_ignored_not_fatal() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000004.log");
        let records = vec![b"first".to_vec(), vec![b'x'; 5000], b"last".to_vec()];
        write_records(&env, path, &records);
        // Chop off the last few bytes: the final record becomes unreadable but
        // recovery must still return every record before it.
        let size = env.file_size(path).unwrap() as usize;
        env.truncate_file(path, size - 3).unwrap();
        let recovered = read_records(&env, path);
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0], b"first");
    }

    #[test]
    fn corrupted_record_is_skipped() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000005.log");
        let records = vec![b"aaaa".to_vec(), b"bbbb".to_vec()];
        write_records(&env, path, &records);
        // Flip a byte inside the first record's payload.
        let mut contents = env.read_file_to_vec(path).unwrap();
        contents[HEADER_SIZE] ^= 0xff;
        let rewrite = env.new_writable_file(path).unwrap();
        let mut writer = rewrite;
        writer.append(&contents).unwrap();
        writer.close().unwrap();

        let file = env.new_sequential_file(path).unwrap();
        let mut reader = LogReader::new(file);
        let mut recovered = Vec::new();
        loop {
            match reader.read_record() {
                Ok(Some(rec)) => recovered.push(rec),
                Ok(None) => break,
                Err(_) => continue,
            }
        }
        // The corrupted first record is dropped; the second survives.
        assert_eq!(recovered, vec![b"bbbb".to_vec()]);
        assert!(reader.corruption_count() >= 1);
    }

    #[test]
    fn record_type_tags_roundtrip() {
        for ty in [
            RecordType::Full,
            RecordType::First,
            RecordType::Middle,
            RecordType::Last,
        ] {
            assert_eq!(RecordType::from_u8(ty as u8), Some(ty));
        }
        assert_eq!(RecordType::from_u8(0), None);
        assert_eq!(RecordType::from_u8(9), None);
    }
}
