//! Appends records to a write-ahead log file.

use pebblesdb_common::crc32c;
use pebblesdb_common::Result;
use pebblesdb_env::WritableFile;

use crate::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Writes length-prefixed, checksummed records into 32 KiB blocks.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
}

impl LogWriter {
    /// Creates a writer that appends to `file` starting at a block boundary.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        LogWriter {
            file,
            block_offset: 0,
        }
    }

    /// Creates a writer resuming at `initial_length` bytes into the file.
    ///
    /// Used when re-opening an existing log for append after recovery.
    pub fn new_with_offset(file: Box<dyn WritableFile>, initial_length: u64) -> Self {
        LogWriter {
            file,
            block_offset: (initial_length as usize) % BLOCK_SIZE,
        }
    }

    /// Appends one logical record, fragmenting it across blocks as needed.
    pub fn add_record(&mut self, record: &[u8]) -> Result<()> {
        let mut remaining = record;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the tail of the block with zeroes and switch blocks.
                if leftover > 0 {
                    self.file.append(&[0u8; HEADER_SIZE][..leftover])?;
                }
                self.block_offset = 0;
            }

            let available = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = remaining.len().min(available);
            let end = fragment_len == remaining.len();
            let record_type = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, true) => RecordType::Last,
                (false, false) => RecordType::Middle,
            };
            self.emit_physical_record(record_type, &remaining[..fragment_len])?;
            remaining = &remaining[fragment_len..];
            begin = false;
            if end {
                break;
            }
        }
        Ok(())
    }

    /// Flushes buffered data to the operating system.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()
    }

    /// Forces log contents to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()
    }

    /// Consumes the writer, closing the underlying file.
    pub fn close(mut self) -> Result<()> {
        self.file.close()
    }

    fn emit_physical_record(&mut self, record_type: RecordType, data: &[u8]) -> Result<()> {
        debug_assert!(data.len() <= 0xffff);
        debug_assert!(self.block_offset + HEADER_SIZE + data.len() <= BLOCK_SIZE);

        let mut header = [0u8; HEADER_SIZE];
        // CRC covers the type byte followed by the payload, like LevelDB.
        let mut crc = crc32c::extend(0, &[record_type as u8]);
        crc = crc32c::extend(crc, data);
        header[..4].copy_from_slice(&crc32c::mask(crc).to_le_bytes());
        header[4] = (data.len() & 0xff) as u8;
        header[5] = ((data.len() >> 8) & 0xff) as u8;
        header[6] = record_type as u8;

        self.file.append(&header)?;
        self.file.append(data)?;
        self.block_offset += HEADER_SIZE + data.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;

    #[test]
    fn block_padding_keeps_headers_whole() {
        let env = MemEnv::new();
        let path = Path::new("/wal/pad.log");
        let file = env.new_writable_file(path).unwrap();
        let mut writer = LogWriter::new(file);
        // A record sized so the next header would not fit in the block.
        let first = vec![b'x'; BLOCK_SIZE - HEADER_SIZE - 3];
        writer.add_record(&first).unwrap();
        writer.add_record(b"tail").unwrap();
        writer.sync().unwrap();

        let size = env.file_size(path).unwrap() as usize;
        // First record + padding fills exactly one block, then the second
        // record starts a new block.
        assert_eq!(size, BLOCK_SIZE + HEADER_SIZE + 4);
    }

    #[test]
    fn writer_resumes_mid_block() {
        let env = MemEnv::new();
        let path = Path::new("/wal/resume.log");
        let file = env.new_writable_file(path).unwrap();
        let mut writer = LogWriter::new(file);
        writer.add_record(b"first").unwrap();
        writer.sync().unwrap();
        let len = env.file_size(path).unwrap();
        assert_eq!(
            LogWriter::new_with_offset(env.new_writable_file(Path::new("/other")).unwrap(), len)
                .block_offset,
            len as usize % BLOCK_SIZE
        );
    }
}
