//! Reads records back from a write-ahead log file.

use pebblesdb_common::{crc32c, Error, Result};
use pebblesdb_env::SequentialFile;

use crate::{RecordType, BLOCK_SIZE, HEADER_SIZE};

/// Replays logical records from a log file, skipping corrupted regions.
pub struct LogReader {
    file: Box<dyn SequentialFile>,
    /// Buffered contents of the current block.
    block: Vec<u8>,
    /// Read cursor within `block`.
    block_pos: usize,
    /// Set when the underlying file is exhausted.
    eof: bool,
    corruption_count: usize,
    corruption_bytes: u64,
}

impl LogReader {
    /// Creates a reader positioned at the start of `file`.
    pub fn new(file: Box<dyn SequentialFile>) -> Self {
        LogReader {
            file,
            block: Vec::new(),
            block_pos: 0,
            eof: false,
            corruption_count: 0,
            corruption_bytes: 0,
        }
    }

    /// Number of corrupted fragments encountered so far.
    pub fn corruption_count(&self) -> usize {
        self.corruption_count
    }

    /// Number of bytes dropped due to corruption so far.
    pub fn corruption_bytes(&self) -> u64 {
        self.corruption_bytes
    }

    /// Reads the next logical record.
    ///
    /// Returns `Ok(None)` at the clean end of the log. A corrupted fragment
    /// produces an `Err`; callers may keep calling to resynchronise at the
    /// next readable record (the engines treat an error as "stop replay" for
    /// the tail of the newest log and as fatal for older logs).
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let fragment = match self.read_physical_record()? {
                Some(f) => f,
                None => {
                    // End of file. An unterminated fragment sequence means the
                    // writer crashed mid-record; drop it silently.
                    return Ok(None);
                }
            };
            match fragment.0 {
                RecordType::Full => {
                    if assembled.is_some() {
                        self.corruption_count += 1;
                        return Err(Error::corruption("partial record followed by full record"));
                    }
                    return Ok(Some(fragment.1));
                }
                RecordType::First => {
                    if assembled.is_some() {
                        self.corruption_count += 1;
                        return Err(Error::corruption("two FIRST fragments in a row"));
                    }
                    assembled = Some(fragment.1);
                }
                RecordType::Middle => match assembled.as_mut() {
                    Some(buf) => buf.extend_from_slice(&fragment.1),
                    None => {
                        self.corruption_count += 1;
                        return Err(Error::corruption("MIDDLE fragment without FIRST"));
                    }
                },
                RecordType::Last => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&fragment.1);
                        return Ok(Some(buf));
                    }
                    None => {
                        self.corruption_count += 1;
                        return Err(Error::corruption("LAST fragment without FIRST"));
                    }
                },
            }
        }
    }

    /// Reads the next physical fragment, refilling the block buffer as needed.
    fn read_physical_record(&mut self) -> Result<Option<(RecordType, Vec<u8>)>> {
        loop {
            if self.block.len() - self.block_pos < HEADER_SIZE {
                if self.eof {
                    return Ok(None);
                }
                self.refill_block()?;
                if self.block.is_empty() {
                    return Ok(None);
                }
                continue;
            }
            let header = &self.block[self.block_pos..self.block_pos + HEADER_SIZE];
            let expected_crc = crc32c::unmask(u32::from_le_bytes(
                header[..4].try_into().expect("4-byte crc"),
            ));
            let length = usize::from(header[4]) | (usize::from(header[5]) << 8);
            let type_tag = header[6];

            // A zero-filled header marks block padding written by the writer.
            if type_tag == 0 && length == 0 && expected_crc == crc32c::unmask(0) {
                self.block_pos = self.block.len();
                continue;
            }

            if self.block_pos + HEADER_SIZE + length > self.block.len() {
                // The writer crashed while appending this fragment.
                self.corruption_bytes += (self.block.len() - self.block_pos) as u64;
                self.block_pos = self.block.len();
                if self.eof {
                    return Ok(None);
                }
                continue;
            }

            let data_start = self.block_pos + HEADER_SIZE;
            let data = &self.block[data_start..data_start + length];
            let record_type = match RecordType::from_u8(type_tag) {
                Some(t) => t,
                None => {
                    self.block_pos += HEADER_SIZE + length;
                    self.corruption_count += 1;
                    self.corruption_bytes += (HEADER_SIZE + length) as u64;
                    return Err(Error::corruption(format!("unknown record type {type_tag}")));
                }
            };

            let mut actual_crc = crc32c::extend(0, &[type_tag]);
            actual_crc = crc32c::extend(actual_crc, data);
            if actual_crc != expected_crc {
                self.block_pos += HEADER_SIZE + length;
                self.corruption_count += 1;
                self.corruption_bytes += (HEADER_SIZE + length) as u64;
                return Err(Error::corruption("record checksum mismatch"));
            }

            let out = data.to_vec();
            self.block_pos += HEADER_SIZE + length;
            return Ok(Some((record_type, out)));
        }
    }

    fn refill_block(&mut self) -> Result<()> {
        self.block.clear();
        self.block.resize(BLOCK_SIZE, 0);
        self.block_pos = 0;
        let mut filled = 0;
        while filled < BLOCK_SIZE {
            let n = self.file.read(&mut self.block[filled..])?;
            if n == 0 {
                self.eof = true;
                break;
            }
            filled += n;
        }
        self.block.truncate(filled);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogWriter;
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;

    #[test]
    fn reader_counts_corruption_bytes() {
        let env = MemEnv::new();
        let path = Path::new("/wal/corrupt.log");
        {
            let file = env.new_writable_file(path).unwrap();
            let mut writer = LogWriter::new(file);
            writer.add_record(&[b'z'; 100]).unwrap();
            writer.sync().unwrap();
        }
        let mut contents = env.read_file_to_vec(path).unwrap();
        contents[0] ^= 0x55; // Corrupt the stored CRC.
        let mut f = env.new_writable_file(path).unwrap();
        f.append(&contents).unwrap();
        f.close().unwrap();

        let mut reader = LogReader::new(env.new_sequential_file(path).unwrap());
        assert!(reader.read_record().is_err());
        assert!(reader.corruption_bytes() >= 100);
        assert_eq!(reader.read_record().unwrap(), None);
    }

    #[test]
    fn empty_file_returns_no_records() {
        let env = MemEnv::new();
        let path = Path::new("/wal/empty.log");
        env.new_writable_file(path).unwrap().close().unwrap();
        let mut reader = LogReader::new(env.new_sequential_file(path).unwrap());
        assert_eq!(reader.read_record().unwrap(), None);
    }
}
