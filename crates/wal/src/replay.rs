//! Replaying closed WAL segments from an arbitrary sequence number.
//!
//! Recovery replays *everything* and lets the memtables sort it out; a
//! change stream catching up from behind wants only the batches at or past
//! its cursor. [`SegmentReplay`] wraps a [`LogReader`] and applies the
//! stream delivery rule: yield every batch whose **last** sequence is at or
//! past `from_seq`, in the order the segment recorded them (commit order).
//! A batch that straddles the cursor is delivered whole — consumers resume
//! at `applied + 1` and skip already-applied batches by their `last_seq`,
//! so over-delivery is safe and under-delivery never happens.
//!
//! A torn tail (crash mid-append) ends the segment cleanly, exactly as
//! recovery treats it: the batches before the tear were committed, the torn
//! record never was.

use pebblesdb_common::batch::WriteBatch;
use pebblesdb_common::key::SequenceNumber;
use pebblesdb_common::Result;
use pebblesdb_env::SequentialFile;

use crate::reader::LogReader;

/// A cursor-filtered batch iterator over one closed WAL segment.
pub struct SegmentReplay {
    reader: LogReader,
    from_seq: SequenceNumber,
}

impl SegmentReplay {
    /// Replays `file`, yielding batches whose last sequence is `>= from_seq`.
    pub fn new(file: Box<dyn SequentialFile>, from_seq: SequenceNumber) -> SegmentReplay {
        SegmentReplay {
            reader: LogReader::new(file),
            from_seq,
        }
    }

    /// The next batch at or past the cursor, or `None` at the end of the
    /// segment. A torn or corrupt tail ends the segment (those bytes were
    /// never acknowledged); corruption *between* intact records is skipped
    /// the same way recovery skips it.
    pub fn next_batch(&mut self) -> Result<Option<WriteBatch>> {
        loop {
            let record = match self.reader.read_record() {
                Ok(Some(record)) => record,
                // Clean end of segment or an unreadable tail: both end replay.
                Ok(None) | Err(_) => return Ok(None),
            };
            let batch = match WriteBatch::from_contents(record) {
                Ok(batch) => batch,
                // A record that frames correctly but does not parse as a
                // batch marks the torn tail recovery also stops at.
                Err(_) => return Ok(None),
            };
            let last = batch.sequence() + u64::from(batch.count()).saturating_sub(1);
            if last >= self.from_seq {
                return Ok(Some(batch));
            }
            // Entirely before the cursor (e.g. a pre-sequenced relocation
            // of old data): the consumer already has it.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::LogWriter;
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;

    fn batch(seq: u64, keys: &[&[u8]]) -> WriteBatch {
        let mut b = WriteBatch::new();
        for key in keys {
            b.put(key, b"v");
        }
        b.set_sequence(seq);
        b
    }

    fn write_segment(env: &MemEnv, path: &Path, batches: &[WriteBatch]) {
        let file = env.new_writable_file(path).unwrap();
        let mut writer = LogWriter::new(file);
        for b in batches {
            writer.add_record(b.contents()).unwrap();
        }
        writer.sync().unwrap();
    }

    fn replayed_sequences(env: &MemEnv, path: &Path, from: u64) -> Vec<u64> {
        let file = env.new_sequential_file(path).unwrap();
        let mut replay = SegmentReplay::new(file, from);
        let mut seqs = Vec::new();
        while let Some(b) = replay.next_batch().unwrap() {
            seqs.push(b.sequence());
        }
        seqs
    }

    #[test]
    fn replay_skips_batches_entirely_before_the_cursor() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000010.log");
        // Batches covering [1,2], [3,5], [6,6].
        write_segment(
            &env,
            path,
            &[
                batch(1, &[b"a", b"b"]),
                batch(3, &[b"c", b"d", b"e"]),
                batch(6, &[b"f"]),
            ],
        );
        assert_eq!(replayed_sequences(&env, path, 1), vec![1, 3, 6]);
        // Cursor 3 lands inside the second batch's range: delivered whole.
        assert_eq!(replayed_sequences(&env, path, 3), vec![3, 6]);
        assert_eq!(replayed_sequences(&env, path, 5), vec![3, 6]);
        assert_eq!(replayed_sequences(&env, path, 6), vec![6]);
        assert_eq!(replayed_sequences(&env, path, 7), Vec::<u64>::new());
    }

    #[test]
    fn out_of_order_presequenced_batches_filter_by_their_own_range() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000011.log");
        // Commit order: seq 10, then a relocation at old seq 4, then 11.
        write_segment(
            &env,
            path,
            &[batch(10, &[b"x"]), batch(4, &[b"old"]), batch(11, &[b"y"])],
        );
        // A cursor past the relocation skips it but keeps commit order.
        assert_eq!(replayed_sequences(&env, path, 10), vec![10, 11]);
        // A cursor at or before it still sees it, in commit order.
        assert_eq!(replayed_sequences(&env, path, 4), vec![10, 4, 11]);
    }

    #[test]
    fn torn_tail_ends_replay_without_error() {
        let env = MemEnv::new();
        let path = Path::new("/wal/000012.log");
        write_segment(&env, path, &[batch(1, &[b"a"]), batch(2, &[b"b"])]);
        let size = env.file_size(path).unwrap() as usize;
        env.truncate_file(path, size - 3).unwrap();
        assert_eq!(replayed_sequences(&env, path, 1), vec![1]);
    }
}
