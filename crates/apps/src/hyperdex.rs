//! A HyperDex-like layer: read-before-write plus client-side latency.

use std::sync::Arc;
use std::time::Duration;

use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::{
    DbIterator, KvStore, ReadOptions, Result, StoreStats, WriteBatch, WriteOptions,
};

use crate::document::Document;
use crate::iter::DocumentFieldIterator;

/// A searchable-store front end modelled on HyperDex.
///
/// Section 5.4 of the paper: "HyperDex checks whether a key already exists
/// before inserting, turning every put() operation in the Load workloads into
/// a get() and a put()", and the application adds most of the end-to-end
/// latency (the paper measures 151 µs per insert of which the key-value store
/// is only 22 µs). Both effects are reproduced here: `put` issues a `get`
/// first, and every operation spends `app_latency_micros` of simulated
/// application work.
pub struct HyperDexLike {
    engine: Arc<dyn KvStore>,
    app_latency: Duration,
}

impl HyperDexLike {
    /// Wraps `engine`, adding `app_latency_micros` of client-side work per
    /// operation (the paper's HyperDex adds roughly 130 µs; pass 0 to
    /// measure the pure layering effect).
    pub fn new(engine: Arc<dyn KvStore>, app_latency_micros: u64) -> Self {
        HyperDexLike {
            engine,
            app_latency: Duration::from_micros(app_latency_micros),
        }
    }

    fn simulate_application_work(&self) {
        if !self.app_latency.is_zero() {
            // Busy-wait: sleeping would under-represent CPU cost and
            // over-represent latency for sub-millisecond values.
            let start = std::time::Instant::now();
            while start.elapsed() < self.app_latency {
                std::hint::spin_loop();
            }
        }
    }

    /// The underlying engine (for stats inspection).
    pub fn engine(&self) -> &Arc<dyn KvStore> {
        &self.engine
    }
}

impl KvStore for HyperDexLike {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.simulate_application_work();
        // Read-before-write: HyperDex verifies existence first.
        let _ = self.engine.get(key)?;
        let doc = Document::from_value(key, value);
        self.engine.put_opts(opts, key, &doc.encode())
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.simulate_application_work();
        match self.engine.get_opts(opts, key)? {
            Some(raw) => Ok(Some(
                Document::decode(&raw)?
                    .field("value")
                    .unwrap_or_default()
                    .to_vec(),
            )),
            None => Ok(None),
        }
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.simulate_application_work();
        let _ = self.engine.get(key)?;
        self.engine.delete_opts(opts, key)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                pebblesdb_common::ValueType::Value => {
                    self.put_opts(opts, record.key, record.value)?
                }
                pebblesdb_common::ValueType::Deletion => self.delete_opts(opts, record.key)?,
            }
        }
        Ok(())
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.simulate_application_work();
        Ok(Box::new(DocumentFieldIterator::new(
            self.engine.iter(opts)?,
            Vec::new(),
        )))
    }

    fn snapshot(&self) -> Snapshot {
        self.engine.snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.engine.flush()
    }

    fn stats(&self) -> StoreStats {
        self.engine.stats()
    }

    fn engine_name(&self) -> String {
        format!("HyperDex({})", self.engine.engine_name())
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.engine.live_file_sizes()
    }
}
