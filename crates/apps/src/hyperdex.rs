//! A HyperDex-like layer: read-before-write, a real secondary-index column
//! family, and client-side latency.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::{
    ColumnFamilyHandle, Db, DbIterator, KvStore, ReadOptions, Result, StoreStats, WriteBatch,
    WriteOptions,
};

use crate::document::Document;
use crate::iter::DocumentFieldIterator;

/// The column family holding the primary objects.
pub const PRIMARY_CF: &str = "hyperdex.objects";
/// The column family holding the value -> key secondary index.
pub const VALUE_INDEX_CF: &str = "hyperdex.index.value";

/// A searchable-store front end modelled on HyperDex.
///
/// Section 5.4 of the paper: "HyperDex checks whether a key already exists
/// before inserting, turning every put() operation in the Load workloads into
/// a get() and a put()", and the application adds most of the end-to-end
/// latency (the paper measures 151 µs per insert of which the key-value store
/// is only 22 µs). Both effects are reproduced here: `put` issues a `get`
/// first, and every operation spends `app_latency_micros` of simulated
/// application work.
///
/// HyperDex's defining feature — searchable secondary attributes — is backed
/// by a **real column family** ([`VALUE_INDEX_CF`]) instead of the
/// key-prefix munging this layer used to do: every `put` commits the primary
/// row and its index entry (plus the removal of the stale entry it
/// supersedes) in one cross-family [`WriteBatch`], atomic across crashes
/// because both families share the WAL and sequence space.
pub struct HyperDexLike {
    db: Arc<dyn Db>,
    primary: ColumnFamilyHandle,
    value_index: ColumnFamilyHandle,
    app_latency: Duration,
    /// Striped per-key write locks. Index maintenance is a read (the stale
    /// value) followed by a cross-family batch; without serialising the two
    /// per key, racing puts to the same key could both read the same stale
    /// value and leave a dangling index entry forever. HyperDex itself
    /// orders operations on a key through value-dependent chaining; the
    /// stripes reproduce that while leaving different keys fully parallel.
    write_stripes: Vec<Mutex<()>>,
}

/// Number of write stripes; a power of two well above the harness thread
/// counts so stripe collisions stay rare.
const WRITE_STRIPES: usize = 64;

/// Index key: `varint(len(value)) value key`, so entries of one value are a
/// contiguous, unambiguous range even when values are prefixes of each
/// other or contain separators.
fn index_key(value: &[u8], key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + value.len() + key.len());
    pebblesdb_common::coding::put_varint32(&mut out, value.len() as u32);
    out.extend_from_slice(value);
    out.extend_from_slice(key);
    out
}

impl HyperDexLike {
    /// Wraps `db`, creating (or reopening) the object and index column
    /// families and adding `app_latency_micros` of client-side work per
    /// operation (the paper's HyperDex adds roughly 130 µs; pass 0 to
    /// measure the pure layering effect).
    pub fn new(db: Arc<dyn Db>, app_latency_micros: u64) -> Result<HyperDexLike> {
        let primary = db.cf_or_create(PRIMARY_CF)?;
        let value_index = db.cf_or_create(VALUE_INDEX_CF)?;
        Ok(HyperDexLike {
            db,
            primary,
            value_index,
            app_latency: Duration::from_micros(app_latency_micros),
            write_stripes: (0..WRITE_STRIPES).map(|_| Mutex::new(())).collect(),
        })
    }

    /// The stripe lock guarding read-index-modify sequences on `key`.
    fn stripe(&self, key: &[u8]) -> &Mutex<()> {
        let hash = pebblesdb_common::hash::murmur3_32(key, 0x9d3f_11c7) as usize;
        &self.write_stripes[hash % WRITE_STRIPES]
    }

    fn simulate_application_work(&self) {
        if !self.app_latency.is_zero() {
            // Busy-wait: sleeping would under-represent CPU cost and
            // over-represent latency for sub-millisecond values.
            let start = std::time::Instant::now();
            while start.elapsed() < self.app_latency {
                std::hint::spin_loop();
            }
        }
    }

    /// The underlying store (for stats inspection).
    pub fn db(&self) -> &Arc<dyn Db> {
        &self.db
    }

    /// The keys of every object whose value equals `value`, via the
    /// secondary-index family (no primary scan).
    pub fn search_by_value(&self, value: &[u8]) -> Result<Vec<Vec<u8>>> {
        let start = index_key(value, &[]);
        // Smallest byte string greater than every key with this prefix; an
        // all-0xff prefix degenerates to "unbounded", which scan spells as
        // an empty end.
        let mut end = start.clone();
        while let Some(last) = end.last().copied() {
            if last == 0xff {
                end.pop();
            } else {
                *end.last_mut().expect("non-empty") += 1;
                break;
            }
        }
        Ok(self
            .value_index
            .scan(&start, &end, usize::MAX)?
            .into_iter()
            .map(|(entry, _)| entry[start.len()..].to_vec())
            .collect())
    }

    /// Reads the stored document's raw `value` field, if the key exists.
    fn current_value(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.primary.get(key)? {
            Some(raw) => Ok(Some(
                Document::decode(&raw)?
                    .field("value")
                    .unwrap_or_default()
                    .to_vec(),
            )),
            None => Ok(None),
        }
    }
}

impl KvStore for HyperDexLike {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.simulate_application_work();
        // Read-before-write: HyperDex verifies existence first — and the
        // read also yields the stale index entry this put supersedes. The
        // stripe lock makes the read + batch commit atomic per key.
        let _guard = self.stripe(key).lock();
        let previous = self.current_value(key)?;
        let doc = Document::from_value(key, value);
        // Primary row + index maintenance commit atomically across the two
        // column families: one WAL record, one sequence range.
        let mut batch = WriteBatch::new();
        batch.put_cf(self.primary.id(), key, &doc.encode());
        if let Some(previous) = previous {
            if previous != value {
                batch.delete_cf(self.value_index.id(), &index_key(&previous, key));
            }
        }
        batch.put_cf(self.value_index.id(), &index_key(value, key), &[]);
        self.db.write_opts(opts, batch)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.simulate_application_work();
        match self.primary.get_opts(opts, key)? {
            Some(raw) => Ok(Some(
                Document::decode(&raw)?
                    .field("value")
                    .unwrap_or_default()
                    .to_vec(),
            )),
            None => Ok(None),
        }
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.simulate_application_work();
        let _guard = self.stripe(key).lock();
        let previous = self.current_value(key)?;
        let mut batch = WriteBatch::new();
        batch.delete_cf(self.primary.id(), key);
        if let Some(previous) = previous {
            batch.delete_cf(self.value_index.id(), &index_key(&previous, key));
        }
        self.db.write_opts(opts, batch)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                pebblesdb_common::ValueType::Value => {
                    self.put_opts(opts, record.key, record.value)?
                }
                pebblesdb_common::ValueType::Deletion => self.delete_opts(opts, record.key)?,
                // Engine-internal representation; never valid in a user batch.
                pebblesdb_common::ValueType::ValuePointer => {
                    return Err(pebblesdb_common::Error::invalid_argument(
                        "value pointers cannot be written directly",
                    ));
                }
            }
        }
        Ok(())
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.simulate_application_work();
        Ok(Box::new(DocumentFieldIterator::new(
            self.primary.iter(opts)?,
            Vec::new(),
        )))
    }

    fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.db.flush()
    }

    fn stats(&self) -> StoreStats {
        self.db.stats()
    }

    fn engine_name(&self) -> String {
        format!("HyperDex({})", self.db.engine_name())
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.db.live_file_sizes()
    }
}
