//! A MongoDB-like layer: document encoding, collections as real column
//! families and client-side latency.

use std::sync::Arc;
use std::time::Duration;

use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::{
    ColumnFamilyHandle, Db, DbIterator, KvStore, ReadOptions, Result, StoreStats, WriteBatch,
    WriteOptions,
};

use crate::document::Document;
use crate::iter::DocumentFieldIterator;

/// The default collection every [`MongoLike`] opens.
pub const DEFAULT_COLLECTION: &str = "default";

/// The column-family name backing a collection.
fn collection_cf_name(collection: &str) -> String {
    format!("mongo.collection.{collection}")
}

/// A document-store front end modelled on MongoDB.
///
/// Section 5.4 of the paper: "MongoDB itself adds a lot of latency to each
/// write (PebblesDB write constitutes only 28 % of latency of MongoDB write)
/// and provides requests to PebblesDB at a much lower rate than PebblesDB can
/// handle." The layer stores every value as an encoded [`Document`] and burns
/// `app_latency_micros` of application time per operation, so the relative
/// results across storage engines follow the paper's Figure 5.6(b) shape.
///
/// Collections are **real column families** (one per collection) instead of
/// the `col/<name>/_id/` key prefixes this layer used to fabricate: a
/// collection's documents live in their own namespace with their own
/// memtable and tree shape, cursors are confined to it structurally, and
/// dropping a collection is a metadata operation rather than a range delete.
pub struct MongoLike {
    db: Arc<dyn Db>,
    collection: ColumnFamilyHandle,
    app_latency: Duration,
}

impl MongoLike {
    /// Wraps `db` over the [`DEFAULT_COLLECTION`], adding
    /// `app_latency_micros` of client-side work per operation.
    pub fn new(db: Arc<dyn Db>, app_latency_micros: u64) -> Result<MongoLike> {
        MongoLike::with_collection(db, DEFAULT_COLLECTION, app_latency_micros)
    }

    /// Wraps `db` over the named collection, creating its column family if
    /// this is the first open.
    pub fn with_collection(
        db: Arc<dyn Db>,
        collection: &str,
        app_latency_micros: u64,
    ) -> Result<MongoLike> {
        let collection = db.cf_or_create(&collection_cf_name(collection))?;
        Ok(MongoLike {
            db,
            collection,
            app_latency: Duration::from_micros(app_latency_micros),
        })
    }

    /// A sibling handle onto another collection of the same database.
    pub fn collection(&self, name: &str) -> Result<MongoLike> {
        MongoLike::with_collection(
            Arc::clone(&self.db),
            name,
            self.app_latency.as_micros() as u64,
        )
    }

    /// The column family backing this collection (for tests and stats).
    pub fn collection_cf(&self) -> &ColumnFamilyHandle {
        &self.collection
    }

    fn simulate_application_work(&self) {
        if !self.app_latency.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.app_latency {
                std::hint::spin_loop();
            }
        }
    }

    /// The underlying store (for stats inspection).
    pub fn db(&self) -> &Arc<dyn Db> {
        &self.db
    }
}

impl KvStore for MongoLike {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.simulate_application_work();
        let doc = Document::from_value(key, value);
        self.collection.put_opts(opts, key, &doc.encode())
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.simulate_application_work();
        match self.collection.get_opts(opts, key)? {
            Some(raw) => Ok(Some(
                Document::decode(&raw)?
                    .field("value")
                    .unwrap_or_default()
                    .to_vec(),
            )),
            None => Ok(None),
        }
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.simulate_application_work();
        self.collection.delete_opts(opts, key)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                pebblesdb_common::ValueType::Value => {
                    self.put_opts(opts, record.key, record.value)?
                }
                pebblesdb_common::ValueType::Deletion => self.delete_opts(opts, record.key)?,
                // Engine-internal representation; never valid in a user batch.
                pebblesdb_common::ValueType::ValuePointer => {
                    return Err(pebblesdb_common::Error::invalid_argument(
                        "value pointers cannot be written directly",
                    ));
                }
            }
        }
        Ok(())
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.simulate_application_work();
        // The collection *is* a namespace: the cursor is structurally
        // confined to it, and "empty end = unbounded" stays inside the
        // collection with no prefix bookkeeping at all.
        Ok(Box::new(DocumentFieldIterator::new(
            self.collection.iter(opts)?,
            Vec::new(),
        )))
    }

    fn snapshot(&self) -> Snapshot {
        self.db.snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.db.flush()
    }

    fn stats(&self) -> StoreStats {
        self.db.stats()
    }

    fn engine_name(&self) -> String {
        format!("MongoDB({})", self.db.engine_name())
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.db.live_file_sizes()
    }
}
