//! A MongoDB-like layer: document encoding, `_id` keyed storage and
//! client-side latency.

use std::sync::Arc;
use std::time::Duration;

use pebblesdb_common::snapshot::Snapshot;
use pebblesdb_common::{
    DbIterator, KvStore, ReadOptions, Result, StoreStats, WriteBatch, WriteOptions,
};

use crate::document::Document;
use crate::iter::DocumentFieldIterator;

/// A document-store front end modelled on MongoDB.
///
/// Section 5.4 of the paper: "MongoDB itself adds a lot of latency to each
/// write (PebblesDB write constitutes only 28 % of latency of MongoDB write)
/// and provides requests to PebblesDB at a much lower rate than PebblesDB can
/// handle." The layer stores every value as an encoded [`Document`] under a
/// namespaced `_id` key and burns `app_latency_micros` of application time
/// per operation, so the relative results across storage engines follow the
/// paper's Figure 5.6(b) shape.
pub struct MongoLike {
    engine: Arc<dyn KvStore>,
    app_latency: Duration,
}

impl MongoLike {
    /// Wraps `engine`, adding `app_latency_micros` of client-side work per
    /// operation.
    pub fn new(engine: Arc<dyn KvStore>, app_latency_micros: u64) -> Self {
        MongoLike {
            engine,
            app_latency: Duration::from_micros(app_latency_micros),
        }
    }

    /// The engine key for a document `_id` (namespaced collection prefix).
    pub fn primary_key(id: &[u8]) -> Vec<u8> {
        let mut key = b"col/default/_id/".to_vec();
        key.extend_from_slice(id);
        key
    }

    fn simulate_application_work(&self) {
        if !self.app_latency.is_zero() {
            let start = std::time::Instant::now();
            while start.elapsed() < self.app_latency {
                std::hint::spin_loop();
            }
        }
    }

    /// The underlying engine (for stats inspection).
    pub fn engine(&self) -> &Arc<dyn KvStore> {
        &self.engine
    }
}

impl KvStore for MongoLike {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.simulate_application_work();
        let doc = Document::from_value(key, value);
        self.engine
            .put_opts(opts, &Self::primary_key(key), &doc.encode())
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.simulate_application_work();
        match self.engine.get_opts(opts, &Self::primary_key(key))? {
            Some(raw) => Ok(Some(
                Document::decode(&raw)?
                    .field("value")
                    .unwrap_or_default()
                    .to_vec(),
            )),
            None => Ok(None),
        }
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.simulate_application_work();
        self.engine.delete_opts(opts, &Self::primary_key(key))
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        for record in batch.iter() {
            let record = record?;
            match record.value_type {
                pebblesdb_common::ValueType::Value => {
                    self.put_opts(opts, record.key, record.value)?
                }
                pebblesdb_common::ValueType::Deletion => self.delete_opts(opts, record.key)?,
            }
        }
        Ok(())
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.simulate_application_work();
        // The namespaced adapter keeps the cursor inside the collection and
        // surfaces document ids as keys, so the default `scan` sees plain
        // user keys (and "empty end = unbounded" stays inside the
        // collection for free).
        Ok(Box::new(DocumentFieldIterator::new(
            self.engine.iter(opts)?,
            Self::primary_key(&[]),
        )))
    }

    fn snapshot(&self) -> Snapshot {
        self.engine.snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.engine.flush()
    }

    fn stats(&self) -> StoreStats {
        self.engine.stats()
    }

    fn engine_name(&self) -> String {
        format!("MongoDB({})", self.engine.engine_name())
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.engine.live_file_sizes()
    }
}
