//! Simulated NoSQL application layers over any [`KvStore`].
//!
//! Figure 5.6 of the paper evaluates PebblesDB *inside* two real
//! applications, HyperDex and MongoDB, and finds that the gains shrink
//! because (a) the applications add their own per-operation latency, so the
//! storage engine is no longer the bottleneck, and (b) HyperDex issues a read
//! before every write, which throttles the insert rate the engine sees.
//!
//! This crate reproduces those two decisive behaviours as thin, in-process
//! layers:
//!
//! * [`HyperDexLike`] — a searchable document store that checks whether a key
//!   exists before every put (read-before-write) and adds configurable
//!   client-side latency.
//! * [`MongoLike`] — a document store with a primary-`_id` index, a document
//!   encoding step and client-side latency, standing in for MongoDB whose
//!   default engine (WiredTiger) is modelled by the B+Tree crate.
//!
//! Both layers implement [`KvStore`](pebblesdb_common::KvStore) themselves,
//! so the YCSB runner drives "application + engine" stacks exactly like bare
//! engines — and both are built on real column families
//! ([`Db`](pebblesdb_common::Db)): HyperDex keeps its secondary index in its
//! own family, updated atomically with the primary row through cross-family
//! batches, and each Mongo collection is a family of its own. Engines
//! without native families run behind the shared
//! [`PrefixDb`](pebblesdb_common::PrefixDb) emulation.

pub mod document;
pub mod hyperdex;
mod iter;
pub mod mongo;

pub use document::Document;
pub use hyperdex::HyperDexLike;
pub use mongo::MongoLike;

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
    use pebblesdb_common::user_iter::UserEntriesIterator;
    use pebblesdb_common::{
        Db, DbIterator, KvStore, PrefixDb, ReadOptions, Result, StoreStats, WriteBatch,
        WriteOptions,
    };
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Minimal in-memory store for exercising the layers without an engine.
    #[derive(Default)]
    pub(crate) struct MapStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        pub gets: std::sync::atomic::AtomicU64,
        pub puts: std::sync::atomic::AtomicU64,
        snapshots: Arc<SnapshotList>,
    }

    impl KvStore for MapStore {
        fn put_opts(&self, _opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
            self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get_opts(&self, _opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete_opts(&self, _opts: &WriteOptions, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
            for record in batch.iter() {
                let record = record.unwrap();
                match record.value_type {
                    pebblesdb_common::ValueType::Value => {
                        self.put_opts(opts, record.key, record.value)?
                    }
                    pebblesdb_common::ValueType::Deletion => self.delete_opts(opts, record.key)?,
                    pebblesdb_common::ValueType::ValuePointer => {
                        unreachable!("test batches never carry value pointers")
                    }
                }
            }
            Ok(())
        }
        fn iter(&self, _opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
            let entries: Vec<(Vec<u8>, Vec<u8>)> = self
                .map
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            Ok(Box::new(UserEntriesIterator::new(entries)))
        }
        fn snapshot(&self) -> Snapshot {
            self.snapshots
                .acquire(self.puts.load(std::sync::atomic::Ordering::Relaxed))
        }
        fn flush(&self) -> Result<()> {
            Ok(())
        }
        fn stats(&self) -> StoreStats {
            StoreStats::default()
        }
        fn engine_name(&self) -> String {
            "MapStore".to_string()
        }
    }

    /// The engines the layers run over in these tests have no native
    /// column families; the shared prefix emulation supplies them.
    fn map_db() -> (Arc<MapStore>, Arc<dyn Db>) {
        let engine = Arc::new(MapStore::default());
        let db: Arc<dyn Db> = Arc::new(PrefixDb::new(engine.clone() as Arc<dyn KvStore>));
        (engine, db)
    }

    #[test]
    fn hyperdex_layer_reads_before_every_write() {
        let (engine, db) = map_db();
        let app = HyperDexLike::new(db, 0).unwrap();
        app.put(b"k1", b"v1").unwrap();
        app.put(b"k2", b"v2").unwrap();
        assert_eq!(app.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        // Two puts -> two existence checks, plus the explicit get above.
        let gets = engine.gets.load(std::sync::atomic::Ordering::Relaxed);
        // Primary rows plus their index entries reach the engine.
        let puts = engine.puts.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(puts, 4, "2 primary rows + 2 index entries");
        assert!(gets >= 3, "expected read-before-write gets, saw {gets}");
    }

    #[test]
    fn hyperdex_value_index_tracks_overwrites_and_deletes() {
        let (_, db) = map_db();
        let app = HyperDexLike::new(Arc::clone(&db), 0).unwrap();
        app.put(b"a", b"red").unwrap();
        app.put(b"b", b"red").unwrap();
        app.put(b"c", b"blue").unwrap();
        assert_eq!(
            app.search_by_value(b"red").unwrap(),
            vec![b"a".to_vec(), b"b".to_vec()]
        );
        // An overwrite retires the stale index entry atomically.
        app.put(b"a", b"blue").unwrap();
        assert_eq!(app.search_by_value(b"red").unwrap(), vec![b"b".to_vec()]);
        assert_eq!(
            app.search_by_value(b"blue").unwrap(),
            vec![b"a".to_vec(), b"c".to_vec()]
        );
        // A delete removes both the row and its index entry.
        app.delete(b"b").unwrap();
        assert!(app.search_by_value(b"red").unwrap().is_empty());
        // Values that are prefixes of each other do not alias in the index.
        app.put(b"d", b"blu").unwrap();
        assert_eq!(app.search_by_value(b"blu").unwrap(), vec![b"d".to_vec()]);
        assert_eq!(app.search_by_value(b"blue").unwrap().len(), 2);
    }

    #[test]
    fn mongo_layer_wraps_values_in_documents() {
        let (_, db) = map_db();
        let app = MongoLike::new(Arc::clone(&db), 0).unwrap();
        app.put(b"user1", b"profile-data").unwrap();
        // The raw value in the collection's column family is a document
        // envelope, not the bare bytes.
        let raw = app.collection_cf().get(b"user1").unwrap().unwrap();
        assert_ne!(raw, b"profile-data".to_vec());
        // Through the layer the original value round-trips.
        assert_eq!(app.get(b"user1").unwrap(), Some(b"profile-data".to_vec()));
        assert_eq!(app.get(b"missing").unwrap(), None);
        // The document never leaks into the default namespace.
        assert_eq!(db.get(b"user1").unwrap(), None);
    }

    #[test]
    fn mongo_collections_are_isolated_families() {
        let (_, db) = map_db();
        let users = MongoLike::new(Arc::clone(&db), 0).unwrap();
        let logs = users.collection("logs").unwrap();
        users.put(b"id1", b"alice").unwrap();
        logs.put(b"id1", b"login").unwrap();
        assert_eq!(users.get(b"id1").unwrap(), Some(b"alice".to_vec()));
        assert_eq!(logs.get(b"id1").unwrap(), Some(b"login".to_vec()));
        assert_eq!(users.scan(b"", &[], 100).unwrap().len(), 1);
        assert_eq!(logs.scan(b"", &[], 100).unwrap().len(), 1);
    }

    #[test]
    fn layers_support_scans_and_deletes() {
        let (_, db) = map_db();
        let app = MongoLike::new(db, 0).unwrap();
        for i in 0..20u32 {
            app.put(format!("doc{i:03}").as_bytes(), b"x").unwrap();
        }
        app.delete(b"doc005").unwrap();
        let results = app.scan(b"doc000", b"doc010", 100).unwrap();
        assert_eq!(results.len(), 9);
        assert!(results.iter().all(|(k, _)| k != b"doc005"));
    }
}
