//! Simulated NoSQL application layers over any [`KvStore`].
//!
//! Figure 5.6 of the paper evaluates PebblesDB *inside* two real
//! applications, HyperDex and MongoDB, and finds that the gains shrink
//! because (a) the applications add their own per-operation latency, so the
//! storage engine is no longer the bottleneck, and (b) HyperDex issues a read
//! before every write, which throttles the insert rate the engine sees.
//!
//! This crate reproduces those two decisive behaviours as thin, in-process
//! layers:
//!
//! * [`HyperDexLike`] — a searchable document store that checks whether a key
//!   exists before every put (read-before-write) and adds configurable
//!   client-side latency.
//! * [`MongoLike`] — a document store with a primary-`_id` index, a document
//!   encoding step and client-side latency, standing in for MongoDB whose
//!   default engine (WiredTiger) is modelled by the B+Tree crate.
//!
//! Both layers implement [`KvStore`] themselves, so the YCSB runner drives
//! "application + engine" stacks exactly like bare engines.

pub mod document;
pub mod hyperdex;
mod iter;
pub mod mongo;

pub use document::Document;
pub use hyperdex::HyperDexLike;
pub use mongo::MongoLike;

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
    use pebblesdb_common::user_iter::UserEntriesIterator;
    use pebblesdb_common::{
        DbIterator, KvStore, ReadOptions, Result, StoreStats, WriteBatch, WriteOptions,
    };
    use std::collections::BTreeMap;
    use std::sync::Arc;

    /// Minimal in-memory store for exercising the layers without an engine.
    #[derive(Default)]
    pub(crate) struct MapStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
        pub gets: std::sync::atomic::AtomicU64,
        pub puts: std::sync::atomic::AtomicU64,
        snapshots: Arc<SnapshotList>,
    }

    impl KvStore for MapStore {
        fn put_opts(&self, _opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
            self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.map.lock().insert(key.to_vec(), value.to_vec());
            Ok(())
        }
        fn get_opts(&self, _opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
            self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(self.map.lock().get(key).cloned())
        }
        fn delete_opts(&self, _opts: &WriteOptions, key: &[u8]) -> Result<()> {
            self.map.lock().remove(key);
            Ok(())
        }
        fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
            for record in batch.iter() {
                let record = record.unwrap();
                self.put_opts(opts, record.key, record.value)?;
            }
            Ok(())
        }
        fn iter(&self, _opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
            let entries: Vec<(Vec<u8>, Vec<u8>)> = self
                .map
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            Ok(Box::new(UserEntriesIterator::new(entries)))
        }
        fn snapshot(&self) -> Snapshot {
            self.snapshots
                .acquire(self.puts.load(std::sync::atomic::Ordering::Relaxed))
        }
        fn flush(&self) -> Result<()> {
            Ok(())
        }
        fn stats(&self) -> StoreStats {
            StoreStats::default()
        }
        fn engine_name(&self) -> String {
            "MapStore".to_string()
        }
    }

    #[test]
    fn hyperdex_layer_reads_before_every_write() {
        let engine = Arc::new(MapStore::default());
        let app = HyperDexLike::new(engine.clone() as Arc<dyn KvStore>, 0);
        app.put(b"k1", b"v1").unwrap();
        app.put(b"k2", b"v2").unwrap();
        assert_eq!(app.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        // Two puts -> two existence checks, plus the explicit get above.
        let gets = engine.gets.load(std::sync::atomic::Ordering::Relaxed);
        let puts = engine.puts.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(puts, 2);
        assert!(gets >= 3, "expected read-before-write gets, saw {gets}");
    }

    #[test]
    fn mongo_layer_wraps_values_in_documents() {
        let engine = Arc::new(MapStore::default());
        let app = MongoLike::new(engine.clone() as Arc<dyn KvStore>, 0);
        app.put(b"user1", b"profile-data").unwrap();
        // The raw engine value is a document envelope, not the bare bytes.
        let raw = engine
            .get(&MongoLike::primary_key(b"user1"))
            .unwrap()
            .unwrap();
        assert_ne!(raw, b"profile-data".to_vec());
        // Through the layer the original value round-trips.
        assert_eq!(app.get(b"user1").unwrap(), Some(b"profile-data".to_vec()));
        assert_eq!(app.get(b"missing").unwrap(), None);
    }

    #[test]
    fn layers_support_scans_and_deletes() {
        let engine = Arc::new(MapStore::default());
        let app = MongoLike::new(engine as Arc<dyn KvStore>, 0);
        for i in 0..20u32 {
            app.put(format!("doc{i:03}").as_bytes(), b"x").unwrap();
        }
        app.delete(b"doc005").unwrap();
        let results = app.scan(b"doc000", b"doc010", 100).unwrap();
        assert_eq!(results.len(), 9);
        assert!(results.iter().all(|(k, _)| k != b"doc005"));
    }
}
