//! Cursor adapter surfacing decoded documents from an engine cursor.

use pebblesdb_common::{DbIterator, Result};

use crate::document::Document;

/// Wraps an engine cursor whose values are encoded [`Document`]s, exposing
/// the document's `value` field and (for namespaced layers) the document id
/// as the key.
///
/// With a non-empty `key_prefix` the cursor is confined to that engine-key
/// namespace: seeks are translated into the namespace and entries outside it
/// terminate iteration, which is how the MongoDB-like layer keeps its
/// collection boundary without materialising ranges.
pub(crate) struct DocumentFieldIterator {
    inner: Box<dyn DbIterator>,
    key_prefix: Vec<u8>,
    key: Vec<u8>,
    value: Vec<u8>,
    valid: bool,
}

impl DocumentFieldIterator {
    pub(crate) fn new(inner: Box<dyn DbIterator>, key_prefix: Vec<u8>) -> Self {
        DocumentFieldIterator {
            inner,
            key_prefix,
            key: Vec::new(),
            value: Vec::new(),
            valid: false,
        }
    }

    /// Re-derives the decoded view from the inner cursor's position.
    fn refresh(&mut self) {
        self.valid = false;
        if !self.inner.valid() {
            return;
        }
        let engine_key = self.inner.key();
        if !engine_key.starts_with(&self.key_prefix) {
            return;
        }
        match Document::decode(self.inner.value()) {
            Ok(doc) => {
                self.key = if self.key_prefix.is_empty() {
                    engine_key.to_vec()
                } else {
                    doc.id.clone()
                };
                self.value = doc.field("value").unwrap_or_default().to_vec();
            }
            Err(_) => {
                // Surface the raw entry rather than silently skipping data
                // the layer cannot decode.
                self.key = engine_key[self.key_prefix.len()..].to_vec();
                self.value = self.inner.value().to_vec();
            }
        }
        self.valid = true;
    }
}

impl DbIterator for DocumentFieldIterator {
    fn valid(&self) -> bool {
        self.valid
    }

    fn seek_to_first(&mut self) {
        if self.key_prefix.is_empty() {
            self.inner.seek_to_first();
        } else {
            let prefix = self.key_prefix.clone();
            self.inner.seek(&prefix);
        }
        self.refresh();
    }

    fn seek_to_last(&mut self) {
        self.inner.seek_to_last();
        // Walk back over any engine keys after the namespace.
        while self.inner.valid() && !self.inner.key().starts_with(&self.key_prefix) {
            self.inner.prev();
        }
        self.refresh();
    }

    fn seek(&mut self, target: &[u8]) {
        let mut engine_target = self.key_prefix.clone();
        engine_target.extend_from_slice(target);
        self.inner.seek(&engine_target);
        self.refresh();
    }

    fn next(&mut self) {
        assert!(self.valid, "next() on invalid iterator");
        self.inner.next();
        self.refresh();
    }

    fn prev(&mut self) {
        assert!(self.valid, "prev() on invalid iterator");
        self.inner.prev();
        self.refresh();
    }

    fn key(&self) -> &[u8] {
        assert!(self.valid, "key() on invalid iterator");
        &self.key
    }

    fn value(&self) -> &[u8] {
        assert!(self.valid, "value() on invalid iterator");
        &self.value
    }

    fn status(&self) -> Result<()> {
        self.inner.status()
    }
}
