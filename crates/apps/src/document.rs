//! A tiny schemaless document model shared by the application layers.

use pebblesdb_common::{Error, Result};

/// A named-field document, the unit both application layers store.
///
/// YCSB models records as a set of named fields; HyperDex additionally
/// indexes attributes and MongoDB stores BSON documents. A compact
/// length-prefixed binary encoding keeps the layers dependency-light while
/// still paying a realistic serialisation cost per operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The primary key.
    pub id: Vec<u8>,
    /// Named fields.
    pub fields: Vec<(String, Vec<u8>)>,
}

impl Document {
    /// Creates a document with a single `value` field (how the YCSB adapter
    /// maps a key-value pair onto a document).
    pub fn from_value(id: &[u8], value: &[u8]) -> Document {
        Document {
            id: id.to_vec(),
            fields: vec![("value".to_string(), value.to_vec())],
        }
    }

    /// Returns the named field, if present.
    pub fn field(&self, name: &str) -> Option<&[u8]> {
        self.fields
            .iter()
            .find(|(field, _)| field == name)
            .map(|(_, value)| value.as_slice())
    }

    /// Serialises the document.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.id.len());
        out.extend_from_slice(&(self.id.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.id);
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (name, value) in &self.fields {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        out
    }

    /// Deserialises a document.
    pub fn decode(data: &[u8]) -> Result<Document> {
        let mut pos = 0usize;
        let read_len = |data: &[u8], pos: &mut usize| -> Result<usize> {
            if *pos + 4 > data.len() {
                return Err(Error::corruption("truncated document"));
            }
            let len =
                u32::from_le_bytes(data[*pos..*pos + 4].try_into().expect("4 bytes")) as usize;
            *pos += 4;
            Ok(len)
        };
        let read_bytes = |data: &[u8], pos: &mut usize, len: usize| -> Result<Vec<u8>> {
            if *pos + len > data.len() {
                return Err(Error::corruption("truncated document"));
            }
            let out = data[*pos..*pos + len].to_vec();
            *pos += len;
            Ok(out)
        };

        let id_len = read_len(data, &mut pos)?;
        let id = read_bytes(data, &mut pos, id_len)?;
        let field_count = read_len(data, &mut pos)?;
        let mut fields = Vec::with_capacity(field_count.min(64));
        for _ in 0..field_count {
            let name_len = read_len(data, &mut pos)?;
            let name = String::from_utf8(read_bytes(data, &mut pos, name_len)?)
                .map_err(|_| Error::corruption("document field name is not UTF-8"))?;
            let value_len = read_len(data, &mut pos)?;
            let value = read_bytes(data, &mut pos, value_len)?;
            fields.push((name, value));
        }
        Ok(Document { id, fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_field() {
        let doc = Document::from_value(b"user42", b"payload");
        let decoded = Document::decode(&doc.encode()).unwrap();
        assert_eq!(decoded, doc);
        assert_eq!(decoded.field("value"), Some(b"payload".as_slice()));
        assert_eq!(decoded.field("missing"), None);
    }

    #[test]
    fn roundtrip_many_fields() {
        let doc = Document {
            id: b"id".to_vec(),
            fields: (0..10)
                .map(|i| (format!("field{i}"), vec![i as u8; 100]))
                .collect(),
        };
        assert_eq!(Document::decode(&doc.encode()).unwrap(), doc);
    }

    #[test]
    fn truncated_documents_are_rejected() {
        let doc = Document::from_value(b"k", b"v");
        let encoded = doc.encode();
        assert!(Document::decode(&encoded[..encoded.len() - 1]).is_err());
        assert!(Document::decode(&[1, 2, 3]).is_err());
    }
}
