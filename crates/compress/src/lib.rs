//! An in-tree LZ77-style block codec.
//!
//! The offline workspace has no snappy/lz4 crate, so — like the RESP codec —
//! the compressor the sstable and value-log layers use is written here from
//! scratch. The format is a byte-oriented literal/copy stream in the LZ4
//! lineage, framed with the workspace's LEB128 varints:
//!
//! ```text
//! [varint uncompressed_len]
//! [op]*                         until the input is exhausted
//!
//! op := varint (len << 1) | 0, then `len` literal bytes
//!     | varint (len << 1) | 1, then varint `offset`   (a copy: repeat `len`
//!                                                      bytes from `offset`
//!                                                      back in the output)
//! ```
//!
//! Copies may overlap their own output (offset 1 + length N is run-length
//! encoding), the minimum match is [`MIN_MATCH`] bytes, and the encoder finds
//! matches with a single-probe hash table over 4-byte windows — greedy and
//! one pass, built for block-sized inputs (kilobytes to megabytes), not
//! archives.
//!
//! Decoding is strict: every length is validated against the claimed
//! uncompressed size *before* bytes are produced, copy offsets must land
//! inside the already-produced output, and the stream must decode to exactly
//! the claimed size with no trailing bytes. Any violation is an
//! [`Error::corruption`] — never a panic — and the decoder allocates no more
//! than the claimed size (itself capped by the caller), so a corrupt header
//! cannot balloon memory.
//!
//! The codec itself carries no checksum: every caller (sstable block
//! trailers, vlog record headers) already CRCs the stored bytes, so a
//! bit-flip is caught before or during decode, whichever comes first.

use pebblesdb_common::coding::{decode_varint64, put_varint64};
use pebblesdb_common::{Error, Result};

/// Minimum match length the encoder emits as a copy. Below this a copy op
/// (tag varint + offset varint) is no smaller than the literal bytes.
pub const MIN_MATCH: usize = 4;

/// log2 of the match-finder hash table size. 2^14 u32 slots = 64 KiB of
/// encoder scratch, enough that block-sized inputs rarely collide.
const HASH_BITS: u32 = 14;

const HASH_SIZE: usize = 1 << HASH_BITS;

/// Slot value meaning "no position recorded yet".
const EMPTY: u32 = u32::MAX;

/// Upper bound on the compressed size of `input_len` bytes: the
/// uncompressed-length varint, one worst-case literal op varint, and the
/// bytes themselves. Callers sizing output buffers can rely on this.
pub fn max_compressed_len(input_len: usize) -> usize {
    input_len + 20
}

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

fn emit_literal(out: &mut Vec<u8>, bytes: &[u8]) {
    put_varint64(out, (bytes.len() as u64) << 1);
    out.extend_from_slice(bytes);
}

fn emit_copy(out: &mut Vec<u8>, len: usize, offset: usize) {
    put_varint64(out, ((len as u64) << 1) | 1);
    put_varint64(out, offset as u64);
}

/// Compresses `input` into a fresh buffer.
///
/// Always succeeds; on incompressible input the result is the input plus a
/// few bytes of framing (see [`max_compressed_len`]). Callers that only want
/// the compressed form when it actually pays should use
/// [`compress_if_worthwhile`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    put_varint64(&mut out, input.len() as u64);
    if input.len() < MIN_MATCH {
        if !input.is_empty() {
            emit_literal(&mut out, input);
        }
        return out;
    }

    let mut table = vec![EMPTY; HASH_SIZE];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    // Last position where a full 4-byte window exists.
    let probe_end = input.len() - MIN_MATCH + 1;
    while i < probe_end {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i as u32;
        if candidate != EMPTY {
            let candidate = candidate as usize;
            if input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while i + len < input.len() && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                if literal_start < i {
                    emit_literal(&mut out, &input[literal_start..i]);
                }
                emit_copy(&mut out, len, i - candidate);
                i += len;
                literal_start = i;
                continue;
            }
        }
        i += 1;
    }
    if literal_start < input.len() {
        emit_literal(&mut out, &input[literal_start..]);
    }
    out
}

/// Compresses `input` and returns the result only when it saves at least
/// one eighth (12.5%) of the input — the threshold below which storing the
/// block raw is the better trade (decode cost for near-zero byte savings).
pub fn compress_if_worthwhile(input: &[u8]) -> Option<Vec<u8>> {
    if input.is_empty() {
        return None;
    }
    let out = compress(input);
    if out.len() < input.len() - input.len() / 8 {
        Some(out)
    } else {
        None
    }
}

/// Decompresses a buffer produced by [`compress`].
///
/// `max_output_len` bounds the allocation: a stream claiming a larger
/// uncompressed size is rejected as corruption before any buffer is sized
/// from it. Every malformed input — truncated varints, zero-length ops,
/// out-of-window copy offsets, output over- or under-run, trailing bytes —
/// returns [`Error::corruption`]; this function never panics on any input.
pub fn decompress(input: &[u8], max_output_len: usize) -> Result<Vec<u8>> {
    let (claimed, header_len) = decode_varint64(input)
        .map_err(|_| Error::corruption("compressed block: bad length header"))?;
    if claimed > max_output_len as u64 {
        return Err(Error::corruption(format!(
            "compressed block claims {claimed} bytes, cap is {max_output_len}"
        )));
    }
    let claimed = claimed as usize;
    let mut pos = header_len;
    // Reserve at most 64 KiB up front; growth beyond that is driven only by
    // ops that already validated against `claimed`, so a lying header can
    // never allocate more than the real decoded size.
    let mut out: Vec<u8> = Vec::with_capacity(claimed.min(64 << 10));
    while pos < input.len() {
        let (op, n) = decode_varint64(&input[pos..])
            .map_err(|_| Error::corruption("compressed block: truncated op"))?;
        pos += n;
        let len = (op >> 1) as usize;
        if len == 0 {
            return Err(Error::corruption("compressed block: zero-length op"));
        }
        if len > claimed - out.len() {
            return Err(Error::corruption(
                "compressed block: op overruns the claimed size",
            ));
        }
        if op & 1 == 0 {
            if len > input.len() - pos {
                return Err(Error::corruption(
                    "compressed block: literal overruns the input",
                ));
            }
            out.extend_from_slice(&input[pos..pos + len]);
            pos += len;
        } else {
            let (offset, n) = decode_varint64(&input[pos..])
                .map_err(|_| Error::corruption("compressed block: truncated copy offset"))?;
            pos += n;
            if offset == 0 || offset > out.len() as u64 {
                return Err(Error::corruption(
                    "compressed block: copy offset outside the output window",
                ));
            }
            let start = out.len() - offset as usize;
            // Byte-at-a-time because copies may overlap their own output
            // (offset < len is the RLE case).
            for j in 0..len {
                let byte = out[start + j];
                out.push(byte);
            }
        }
    }
    if out.len() != claimed {
        return Err(Error::corruption(format!(
            "compressed block decoded to {} bytes, header claims {claimed}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(input: &[u8]) {
        let compressed = compress(input);
        assert!(
            compressed.len() <= max_compressed_len(input.len()),
            "compressed {} bytes into {}, bound is {}",
            input.len(),
            compressed.len(),
            max_compressed_len(input.len())
        );
        let decoded = decompress(&compressed, input.len()).unwrap();
        assert_eq!(decoded, input);
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        roundtrip(&[0u8; 100_000]);
        roundtrip(b"abcdefgh".repeat(1000).as_slice());
        let mut ramp = Vec::new();
        for i in 0..70_000u32 {
            ramp.push((i % 251) as u8);
        }
        roundtrip(&ramp);
    }

    #[test]
    fn repeated_fragments_compress_well() {
        // The shape `--compressibility 0.25` generates: a random quarter
        // repeated to fill the value.
        let mut rng = StdRng::seed_from_u64(7);
        let fragment: Vec<u8> = (0..256).map(|_| rng.gen::<u8>()).collect();
        let input: Vec<u8> = fragment.iter().cycle().take(4096).copied().collect();
        let compressed = compress(&input);
        assert!(
            compressed.len() < input.len() / 3,
            "4 KiB of repeated 256 B fragments compressed to {} bytes",
            compressed.len()
        );
        assert_eq!(decompress(&compressed, input.len()).unwrap(), input);
    }

    #[test]
    fn incompressible_input_stays_within_bound_and_is_skipped() {
        let mut rng = StdRng::seed_from_u64(11);
        let input: Vec<u8> = (0..4096).map(|_| rng.gen::<u8>()).collect();
        let compressed = compress(&input);
        assert!(compressed.len() <= max_compressed_len(input.len()));
        assert_eq!(decompress(&compressed, input.len()).unwrap(), input);
        assert!(compress_if_worthwhile(&input).is_none());
    }

    #[test]
    fn worthwhile_threshold_is_one_eighth() {
        let compressible = b"0123456789abcdef".repeat(64);
        assert!(compress_if_worthwhile(&compressible).is_some());
        assert!(compress_if_worthwhile(b"").is_none());
        assert!(compress_if_worthwhile(b"xy").is_none());
    }

    #[test]
    fn fuzz_roundtrip_across_compressibilities() {
        let mut rng = StdRng::seed_from_u64(0xc0de);
        for round in 0..200 {
            let len = rng.gen_range(0..8192);
            let fragment_len = 1 + rng.gen_range(0..256usize);
            let fragment: Vec<u8> = (0..fragment_len).map(|_| rng.gen::<u8>()).collect();
            let input: Vec<u8> = if round % 3 == 0 {
                (0..len).map(|_| rng.gen::<u8>()).collect()
            } else {
                fragment.iter().cycle().take(len).copied().collect()
            };
            roundtrip(&input);
        }
    }

    #[test]
    fn every_truncation_of_a_valid_stream_is_rejected() {
        let input = b"the quick brown fox jumps over the lazy dog. ".repeat(40);
        let compressed = compress(&input);
        for cut in 0..compressed.len() {
            let result = decompress(&compressed[..cut], input.len());
            assert!(result.is_err(), "truncation at {cut} bytes decoded");
        }
    }

    #[test]
    fn bit_flips_never_panic_and_never_overrun_the_cap() {
        let input = b"abcdefgh12345678".repeat(64);
        let compressed = compress(&input);
        for byte in 0..compressed.len() {
            for bit in 0..8 {
                let mut mutated = compressed.clone();
                mutated[byte] ^= 1 << bit;
                // A flip may still decode (the block-layer CRC catches those
                // cases); what the codec itself guarantees is no panic and a
                // hard output cap.
                if let Ok(decoded) = decompress(&mutated, input.len()) {
                    assert!(decoded.len() <= input.len());
                }
            }
        }
    }

    #[test]
    fn oversized_claims_and_malformed_ops_are_corruption() {
        // Claims 1 MiB against a 4 KiB cap: rejected before allocating.
        let mut huge = Vec::new();
        put_varint64(&mut huge, 1 << 20);
        assert!(decompress(&huge, 4096).is_err());

        // Zero-length literal op.
        let mut zero_op = Vec::new();
        put_varint64(&mut zero_op, 4);
        put_varint64(&mut zero_op, 0);
        assert!(decompress(&zero_op, 4096).is_err());

        // Copy with offset 0 and with an offset beyond the produced output.
        for offset in [0u64, 9] {
            let mut bad_copy = Vec::new();
            put_varint64(&mut bad_copy, 8);
            put_varint64(&mut bad_copy, (4 << 1) | 1);
            put_varint64(&mut bad_copy, offset);
            assert!(decompress(&bad_copy, 4096).is_err());
        }

        // A stream that ends short of its claimed size.
        let mut short = Vec::new();
        put_varint64(&mut short, 10);
        put_varint64(&mut short, 3 << 1);
        short.extend_from_slice(b"abc");
        assert!(decompress(&short, 4096).is_err());

        // Garbage of every length: must error or produce bounded output.
        let mut rng = StdRng::seed_from_u64(99);
        for len in 0..512 {
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
            if let Ok(decoded) = decompress(&garbage, 1024) {
                assert!(decoded.len() <= 1024);
            }
        }
    }

    #[test]
    fn overlapping_copy_is_run_length_encoding() {
        // Hand-built stream: 2 literal bytes then a copy of 14 at offset 2.
        let mut stream = Vec::new();
        put_varint64(&mut stream, 16);
        put_varint64(&mut stream, 2 << 1);
        stream.extend_from_slice(b"ab");
        put_varint64(&mut stream, (14 << 1) | 1);
        put_varint64(&mut stream, 2);
        assert_eq!(decompress(&stream, 16).unwrap(), b"abababababababab");
    }
}
