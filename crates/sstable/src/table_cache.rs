//! A cache of open [`Table`] readers keyed by file number.

use std::path::PathBuf;
use std::sync::Arc;

use pebblesdb_common::filename::table_file_name;
use pebblesdb_common::{ReadOptions, Result, StoreOptions};
use pebblesdb_env::Env;

use crate::cache::LruCache;
use crate::table::{BlockCache, Table, TableIterator};

/// Keeps up to `max_open_files` sstables open, sharing one block cache.
pub struct TableCache {
    env: Arc<dyn Env>,
    db_path: PathBuf,
    options: StoreOptions,
    tables: LruCache<u64, Table>,
    block_cache: Arc<BlockCache>,
}

impl TableCache {
    /// Creates a table cache for the database at `db_path`.
    pub fn new(
        env: Arc<dyn Env>,
        db_path: PathBuf,
        options: StoreOptions,
        max_open_files: usize,
    ) -> Self {
        let block_cache = Arc::new(LruCache::new(options.block_cache_capacity.max(1)));
        TableCache {
            env,
            db_path,
            options,
            tables: LruCache::new(max_open_files.max(1)),
            block_cache,
        }
    }

    /// The shared block cache (exposed for memory accounting).
    pub fn block_cache(&self) -> &Arc<BlockCache> {
        &self.block_cache
    }

    /// Number of tables currently held open.
    pub fn open_tables(&self) -> usize {
        self.tables.len()
    }

    /// Approximate memory pinned by open tables and cached blocks.
    pub fn memory_usage(&self) -> usize {
        self.block_cache.usage()
    }

    /// Hit and miss counters of the shared block cache (sstable data
    /// blocks), surfaced in `StoreStats` and the bench reports.
    pub fn block_cache_hit_miss(&self) -> (u64, u64) {
        self.block_cache.hit_miss()
    }

    /// Hit and miss counters of the table cache (open sstable readers).
    pub fn table_cache_hit_miss(&self) -> (u64, u64) {
        self.tables.hit_miss()
    }

    /// Returns the open table for `file_number`, opening it if necessary.
    pub fn get_table(&self, file_number: u64, file_size: u64) -> Result<Arc<Table>> {
        if let Some(table) = self.tables.get(&file_number) {
            return Ok(table);
        }
        let path = table_file_name(&self.db_path, file_number);
        let file = self.env.new_random_access_file(&path)?;
        let table = Table::open(
            &self.options,
            file,
            file_size,
            file_number,
            Some(Arc::clone(&self.block_cache)),
        )?;
        Ok(self.tables.insert(file_number, table, 1))
    }

    /// Point lookup through the cached table.
    ///
    /// Returns the first entry with internal key `>= target` in that file.
    pub fn get(
        &self,
        read_options: &ReadOptions,
        file_number: u64,
        file_size: u64,
        target: &[u8],
    ) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let table = self.get_table(file_number, file_size)?;
        table.get(read_options, target)
    }

    /// Creates an iterator over the given file.
    pub fn iter(
        &self,
        read_options: &ReadOptions,
        file_number: u64,
        file_size: u64,
    ) -> Result<TableIterator> {
        let table = self.get_table(file_number, file_size)?;
        Ok(table.iter(read_options))
    }

    /// Drops the cached reader for `file_number` (after the file is deleted).
    pub fn evict(&self, file_number: u64) {
        self.tables.erase(&file_number);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_builder::TableBuilder;
    use pebblesdb_common::key::{encode_internal_key, ValueType};
    use pebblesdb_env::MemEnv;
    use std::path::Path;

    #[test]
    fn missing_files_surface_errors() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let cache = TableCache::new(
            Arc::clone(&env),
            PathBuf::from("/db"),
            StoreOptions::default(),
            4,
        );
        assert!(cache.get_table(99, 1234).is_err());
    }

    #[test]
    fn lru_eviction_limits_open_tables() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Path::new("/db");
        env.create_dir_all(db).unwrap();
        let opts = StoreOptions::default();

        let mut sizes = Vec::new();
        for number in 1..=4u64 {
            let path = table_file_name(db, number);
            let file = env.new_writable_file(&path).unwrap();
            let mut builder = TableBuilder::new(&opts, file);
            let key = encode_internal_key(format!("key{number}").as_bytes(), 1, ValueType::Value);
            builder.add(&key, b"v").unwrap();
            sizes.push(builder.finish().unwrap());
        }

        let cache = TableCache::new(Arc::clone(&env), db.to_path_buf(), opts, 2);
        for number in 1..=4u64 {
            cache
                .get_table(number, sizes[(number - 1) as usize])
                .unwrap();
        }
        assert!(cache.open_tables() <= 2);
    }
}
