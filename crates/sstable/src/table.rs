//! Reads entries back out of an sstable file.

use std::sync::Arc;
use std::time::Instant;

use pebblesdb_bloom::BloomFilterPolicy;
use pebblesdb_common::coding::decode_fixed32;
use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::{crc32c, CompressionStats, Error, ReadOptions, Result, StoreOptions};
use pebblesdb_env::RandomAccessFile;

use crate::block::{Block, BlockIterator};
use crate::cache::LruCache;
use crate::footer::{BlockHandle, Footer, FOOTER_SIZE};
use crate::BLOCK_TRAILER_SIZE;

/// A shared block cache keyed by `(table id, block offset)`.
///
/// Cached blocks are always the **uncompressed** bytes: decompression
/// happens once, on the device-read path, so cache hits never pay decode
/// cost.
pub type BlockCache = LruCache<(u64, u64), Block>;

/// Hard ceiling a compressed block's claimed uncompressed size may reach.
/// Real blocks top out around `block_size` (plus one oversized entry); this
/// only exists so a corrupt length header is rejected as corruption instead
/// of trusted.
const MAX_DECOMPRESSED_BLOCK: usize = u32::MAX as usize;

/// An open, immutable sstable.
pub struct Table {
    file: Arc<dyn RandomAccessFile>,
    index_block: Arc<Block>,
    filter: Option<Vec<u8>>,
    filter_policy: BloomFilterPolicy,
    block_cache: Option<Arc<BlockCache>>,
    /// Identifier used in block-cache keys (the engine's file number).
    cache_id: u64,
    verify_checksums_default: bool,
    size: u64,
    compression_stats: Arc<CompressionStats>,
}

impl Table {
    /// Opens a table of `size` bytes stored in `file`.
    ///
    /// `cache_id` must be unique per file (the engines use the file number);
    /// `block_cache` may be shared across tables.
    pub fn open(
        options: &StoreOptions,
        file: Arc<dyn RandomAccessFile>,
        size: u64,
        cache_id: u64,
        block_cache: Option<Arc<BlockCache>>,
    ) -> Result<Self> {
        if (size as usize) < FOOTER_SIZE {
            return Err(Error::corruption("file too small to be an sstable"));
        }
        let footer_data = file.read(size - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let footer = Footer::decode(&footer_data)?;

        let stats = &options.compression_stats;
        let index_contents =
            Self::read_block_contents(file.as_ref(), &footer.index_handle, true, stats)?;
        let index_block = Arc::new(Block::new(index_contents)?);

        let filter = if footer.filter_handle.size > 0 && options.bloom_bits_per_key > 0 {
            Some(Self::read_block_contents(
                file.as_ref(),
                &footer.filter_handle,
                true,
                stats,
            )?)
        } else {
            None
        };

        Ok(Table {
            file,
            index_block,
            filter,
            filter_policy: BloomFilterPolicy::new(options.bloom_bits_per_key.max(1)),
            block_cache,
            cache_id,
            verify_checksums_default: options.paranoid_checks,
            size,
            compression_stats: Arc::clone(stats),
        })
    }

    /// Total file size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Approximate memory pinned by this open table (index block + filter).
    pub fn memory_usage(&self) -> usize {
        self.index_block.size() + self.filter.as_ref().map_or(0, |f| f.len())
    }

    /// Returns `false` only if the sstable-level bloom filter proves the user
    /// key is absent from this table.
    pub fn may_contain_user_key(&self, user_key: &[u8]) -> bool {
        match &self.filter {
            Some(filter) => self.filter_policy.key_may_match(user_key, filter),
            None => true,
        }
    }

    /// Looks up the first entry with internal key `>= target`.
    ///
    /// Returns the entry's internal key and value; the caller decides whether
    /// the user key actually matches and whether the sequence number is
    /// visible.
    pub fn get(
        &self,
        read_options: &ReadOptions,
        target: &[u8],
    ) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let mut index_iter = self.index_block.iter();
        index_iter.seek(target);
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        let block = self.read_data_block(read_options, &handle)?;
        let mut block_iter = block.iter();
        block_iter.seek(target);
        if !block_iter.valid() {
            return Ok(None);
        }
        Ok(Some((
            block_iter.key().to_vec(),
            block_iter.value().to_vec(),
        )))
    }

    /// Creates a two-level iterator over the whole table.
    pub fn iter(self: &Arc<Self>, read_options: &ReadOptions) -> TableIterator {
        TableIterator {
            table: Arc::clone(self),
            read_options: read_options.clone(),
            index_iter: self.index_block.iter(),
            data_iter: None,
            error: None,
        }
    }

    /// Reads a block off the device and returns its **uncompressed**
    /// contents, dispatching on the per-block trailer tag. The CRC covers
    /// the stored (possibly compressed) bytes plus the tag, so it is checked
    /// before any decode; a tag this build does not know is corruption.
    fn read_block_contents(
        file: &dyn RandomAccessFile,
        handle: &BlockHandle,
        verify: bool,
        stats: &CompressionStats,
    ) -> Result<Vec<u8>> {
        let raw = file.read(handle.offset, handle.size as usize + BLOCK_TRAILER_SIZE)?;
        if raw.len() < handle.size as usize + BLOCK_TRAILER_SIZE {
            return Err(Error::corruption("truncated block read"));
        }
        let contents = &raw[..handle.size as usize];
        let compression = raw[handle.size as usize];
        if verify {
            let stored = decode_fixed32(&raw[handle.size as usize + 1..]);
            let mut crc = crc32c::crc32c(contents);
            crc = crc32c::extend(crc, &[compression]);
            if crc32c::mask(crc) != stored {
                return Err(Error::corruption("block checksum mismatch"));
            }
        }
        match compression {
            0 => Ok(contents.to_vec()),
            1 => {
                let start = Instant::now();
                let decoded = pebblesdb_compress::decompress(contents, MAX_DECOMPRESSED_BLOCK)?;
                stats.add_decompress_micros(start.elapsed().as_micros() as u64);
                Ok(decoded)
            }
            _ => Err(Error::corruption("unsupported compression type")),
        }
    }

    fn read_data_block(
        &self,
        read_options: &ReadOptions,
        handle: &BlockHandle,
    ) -> Result<Arc<Block>> {
        let cache_key = (self.cache_id, handle.offset);
        if let Some(cache) = &self.block_cache {
            if let Some(block) = cache.get(&cache_key) {
                return Ok(block);
            }
        }
        let verify = read_options.verify_checksums || self.verify_checksums_default;
        let contents =
            Self::read_block_contents(self.file.as_ref(), handle, verify, &self.compression_stats)?;
        // `contents` is already decompressed, so the cache below only ever
        // holds uncompressed blocks — a cache hit never decodes.
        let block = Block::new(contents)?;
        if let Some(cache) = &self.block_cache {
            if read_options.fill_cache {
                let charge = block.size();
                return Ok(cache.insert(cache_key, block, charge));
            }
        }
        Ok(Arc::new(block))
    }
}

/// A two-level iterator: index block entries point at data blocks.
pub struct TableIterator {
    table: Arc<Table>,
    read_options: ReadOptions,
    index_iter: BlockIterator,
    data_iter: Option<BlockIterator>,
    error: Option<Error>,
}

impl TableIterator {
    /// Returns any IO/corruption error hit while iterating.
    pub fn status(&self) -> Result<()> {
        match &self.error {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    fn load_data_block(&mut self) {
        self.data_iter = None;
        if !self.index_iter.valid() {
            return;
        }
        match BlockHandle::decode_from(self.index_iter.value())
            .and_then(|(handle, _)| self.table.read_data_block(&self.read_options, &handle))
        {
            Ok(block) => self.data_iter = Some(block.iter()),
            Err(err) => self.error = Some(err),
        }
    }

    fn skip_empty_data_blocks_forward(&mut self) {
        while self
            .data_iter
            .as_ref()
            .map(|it| !it.valid())
            .unwrap_or(true)
        {
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.next();
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.load_data_block();
            if let Some(iter) = self.data_iter.as_mut() {
                iter.seek_to_first();
            }
        }
    }

    fn skip_empty_data_blocks_backward(&mut self) {
        while self
            .data_iter
            .as_ref()
            .map(|it| !it.valid())
            .unwrap_or(true)
        {
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.prev();
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.load_data_block();
            if let Some(iter) = self.data_iter.as_mut() {
                iter.seek_to_last();
            }
        }
    }
}

impl DbIterator for TableIterator {
    fn status(&self) -> Result<()> {
        TableIterator::status(self)
    }

    fn valid(&self) -> bool {
        self.data_iter
            .as_ref()
            .map(|it| it.valid())
            .unwrap_or(false)
    }

    fn seek_to_first(&mut self) {
        self.index_iter.seek_to_first();
        self.load_data_block();
        if let Some(iter) = self.data_iter.as_mut() {
            iter.seek_to_first();
        }
        self.skip_empty_data_blocks_forward();
    }

    fn seek_to_last(&mut self) {
        self.index_iter.seek_to_last();
        self.load_data_block();
        if let Some(iter) = self.data_iter.as_mut() {
            iter.seek_to_last();
        }
        self.skip_empty_data_blocks_backward();
    }

    fn seek(&mut self, target: &[u8]) {
        self.index_iter.seek(target);
        self.load_data_block();
        if let Some(iter) = self.data_iter.as_mut() {
            iter.seek(target);
        }
        self.skip_empty_data_blocks_forward();
    }

    fn next(&mut self) {
        if let Some(iter) = self.data_iter.as_mut() {
            iter.next();
        }
        self.skip_empty_data_blocks_forward();
    }

    fn prev(&mut self) {
        if let Some(iter) = self.data_iter.as_mut() {
            iter.prev();
        }
        self.skip_empty_data_blocks_backward();
    }

    fn key(&self) -> &[u8] {
        self.data_iter.as_ref().expect("iterator not valid").key()
    }

    fn value(&self) -> &[u8] {
        self.data_iter.as_ref().expect("iterator not valid").value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table_builder::TableBuilder;
    use pebblesdb_common::key::{encode_internal_key, extract_user_key, ValueType};
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;

    fn build(env: &MemEnv, path: &Path, n: u32, opts: &StoreOptions) -> u64 {
        let file = env.new_writable_file(path).unwrap();
        let mut builder = TableBuilder::new(opts, file);
        for i in 0..n {
            let key = encode_internal_key(format!("k{i:05}").as_bytes(), 1, ValueType::Value);
            builder.add(&key, format!("v{i}").as_bytes()).unwrap();
        }
        builder.finish().unwrap()
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let env = MemEnv::new();
        let path = Path::new("/c.sst");
        let mut opts = StoreOptions::default();
        opts.block_size = 512;
        let size = build(&env, path, 500, &opts);

        let cache: Arc<BlockCache> = Arc::new(LruCache::new(1 << 20));
        let file = env.new_random_access_file(path).unwrap();
        let table = Arc::new(Table::open(&opts, file, size, 7, Some(Arc::clone(&cache))).unwrap());

        let target = encode_internal_key(b"k00100", u64::MAX >> 8, ValueType::Value);
        table
            .get(&ReadOptions::default(), &target)
            .unwrap()
            .unwrap();
        let misses_after_first = cache.hit_miss().1;
        table
            .get(&ReadOptions::default(), &target)
            .unwrap()
            .unwrap();
        let (hits, misses) = cache.hit_miss();
        assert!(hits >= 1);
        assert_eq!(misses, misses_after_first);
    }

    #[test]
    fn iterator_covers_block_boundaries() {
        let env = MemEnv::new();
        let path = Path::new("/b.sst");
        let mut opts = StoreOptions::default();
        opts.block_size = 256;
        let size = build(&env, path, 300, &opts);
        let file = env.new_random_access_file(path).unwrap();
        let table = Arc::new(Table::open(&opts, file, size, 1, None).unwrap());

        let mut iter = table.iter(&ReadOptions::default());
        iter.seek_to_first();
        let mut count = 0u32;
        while iter.valid() {
            let expected = format!("k{count:05}");
            assert_eq!(extract_user_key(iter.key()), expected.as_bytes());
            count += 1;
            iter.next();
        }
        assert_eq!(count, 300);
        assert!(iter.status().is_ok());

        iter.seek_to_last();
        assert_eq!(extract_user_key(iter.key()), b"k00299");
        iter.prev();
        assert_eq!(extract_user_key(iter.key()), b"k00298");
    }

    #[test]
    fn open_rejects_tiny_files() {
        let env = MemEnv::new();
        let path = Path::new("/tiny.sst");
        let mut f = env.new_writable_file(path).unwrap();
        f.append(b"tiny").unwrap();
        f.close().unwrap();
        let file = env.new_random_access_file(path).unwrap();
        assert!(Table::open(&StoreOptions::default(), file, 4, 1, None).is_err());
    }

    #[test]
    fn tables_without_bloom_filters_still_work() {
        let env = MemEnv::new();
        let path = Path::new("/nofilter.sst");
        let mut opts = StoreOptions::default();
        opts.bloom_bits_per_key = 0;
        let size = build(&env, path, 50, &opts);
        let file = env.new_random_access_file(path).unwrap();
        let table = Table::open(&opts, file, size, 1, None).unwrap();
        // Without a filter, everything "may" be present.
        assert!(table.may_contain_user_key(b"definitely-absent"));
        let target = encode_internal_key(b"k00010", u64::MAX >> 8, ValueType::Value);
        assert!(table
            .get(&ReadOptions::default(), &target)
            .unwrap()
            .is_some());
    }
}
