//! Sorted string tables: the immutable on-disk files both engines build.
//!
//! An sstable holds a sorted run of internal key/value pairs:
//!
//! ```text
//! +-----------------+
//! | data block 0    |   prefix-compressed entries + restart array
//! | data block 1    |
//! | ...             |
//! | filter block    |   sstable-level bloom filter over user keys
//! | index block     |   last-key-of-block -> block handle
//! | footer          |   handles of filter + index blocks, magic number
//! +-----------------+
//! ```
//!
//! Every block is followed by a one-byte compression tag (0 = raw, 1 = the
//! in-tree LZ codec from `pebblesdb-compress`) and a masked CRC32C over the
//! stored bytes plus the tag. Writers compress data/index blocks when
//! [`StoreOptions::compression`](pebblesdb_common::StoreOptions) (or its
//! per-level override) says so and it saves at least ~12.5%; readers always
//! dispatch on the stored tag, so raw and compressed blocks mix freely
//! within and across files, and tables written before compression existed
//! remain readable. The block cache only ever holds uncompressed bytes.
//!
//! The sstable-level bloom filter is the PebblesDB optimisation from section
//! 4.1 of the paper: a `get()` that must examine every sstable in a guard can
//! skip, in memory, the tables that cannot contain the key.

pub mod block;
pub mod cache;
pub mod footer;
pub mod table;
pub mod table_builder;
pub mod table_cache;

pub use block::{Block, BlockBuilder, BlockIterator};
pub use cache::LruCache;
pub use footer::{BlockHandle, Footer, TABLE_MAGIC};
pub use table::Table;
pub use table_builder::TableBuilder;
pub use table_cache::TableCache;

/// Number of trailer bytes appended to every block: 1-byte compression tag
/// plus a 4-byte masked CRC32C.
pub const BLOCK_TRAILER_SIZE: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::{encode_internal_key, parse_internal_key, ValueType};
    use pebblesdb_common::{DbIterator, ReadOptions, StoreOptions};
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;
    use std::sync::Arc;

    fn build_table(env: &MemEnv, path: &Path, n: u32) -> u64 {
        build_table_with(env, path, n, &StoreOptions::default())
    }

    fn build_table_with(env: &MemEnv, path: &Path, n: u32, opts: &StoreOptions) -> u64 {
        let file = env.new_writable_file(path).unwrap();
        let mut builder = TableBuilder::new(opts, file);
        for i in 0..n {
            let key = encode_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            builder.add(&key, format!("value-{i}").as_bytes()).unwrap();
        }
        builder.finish().unwrap()
    }

    #[test]
    fn build_and_read_back_all_entries() {
        let env = MemEnv::new();
        let path = Path::new("/sst/000001.sst");
        let size = build_table(&env, path, 1000);
        assert_eq!(size, env.file_size(path).unwrap());

        let file = env.new_random_access_file(path).unwrap();
        let table = Table::open(&StoreOptions::default(), file, size, 1, None).unwrap();
        let table = Arc::new(table);

        // Point lookups through the internal-key get path.
        for i in [0u32, 1, 57, 999] {
            let target = encode_internal_key(
                format!("key{i:06}").as_bytes(),
                u64::MAX >> 8,
                ValueType::Value,
            );
            let (found_key, value) = table
                .get(&ReadOptions::default(), &target)
                .unwrap()
                .expect("key should be found");
            let parsed = parse_internal_key(&found_key).unwrap();
            assert_eq!(parsed.user_key, format!("key{i:06}").as_bytes());
            assert_eq!(value, format!("value-{i}").into_bytes());
        }

        // Full scan through the iterator.
        let mut iter = table.iter(&ReadOptions::default());
        iter.seek_to_first();
        let mut count = 0;
        let mut last_key: Option<Vec<u8>> = None;
        while iter.valid() {
            if let Some(prev) = &last_key {
                assert!(prev.as_slice() < iter.key());
            }
            last_key = Some(iter.key().to_vec());
            count += 1;
            iter.next();
        }
        assert_eq!(count, 1000);
    }

    #[test]
    fn bloom_filter_excludes_absent_user_keys() {
        let env = MemEnv::new();
        let path = Path::new("/sst/000002.sst");
        let size = build_table(&env, path, 500);
        let file = env.new_random_access_file(path).unwrap();
        let table = Table::open(&StoreOptions::default(), file, size, 2, None).unwrap();

        assert!(table.may_contain_user_key(b"key000123"));
        let mut rejected = 0;
        for i in 0..200 {
            if !table.may_contain_user_key(format!("absent{i:06}").as_bytes()) {
                rejected += 1;
            }
        }
        assert!(rejected > 180, "bloom rejected only {rejected}/200");
    }

    #[test]
    fn seek_positions_at_lower_bound_and_supports_next() {
        let env = MemEnv::new();
        let path = Path::new("/sst/000003.sst");
        let size = build_table(&env, path, 100);
        let file = env.new_random_access_file(path).unwrap();
        let table = Arc::new(Table::open(&StoreOptions::default(), file, size, 3, None).unwrap());

        let mut iter = table.iter(&ReadOptions::default());
        let target = encode_internal_key(b"key000049x", u64::MAX >> 8, ValueType::Value);
        iter.seek(&target);
        assert!(iter.valid());
        let parsed = parse_internal_key(iter.key()).unwrap();
        assert_eq!(parsed.user_key, b"key000050");
        iter.next();
        let parsed = parse_internal_key(iter.key()).unwrap();
        assert_eq!(parsed.user_key, b"key000051");
    }

    #[test]
    fn corrupted_block_is_detected_with_paranoid_checks() {
        let env = MemEnv::new();
        let path = Path::new("/sst/000004.sst");
        let size = build_table(&env, path, 200);

        // Flip a byte early in the file (inside the first data block).
        let mut contents = env.read_file_to_vec(path).unwrap();
        contents[10] ^= 0xff;
        let mut f = env.new_writable_file(path).unwrap();
        f.append(&contents).unwrap();
        f.close().unwrap();

        let file = env.new_random_access_file(path).unwrap();
        let table = Table::open(&StoreOptions::default(), file, size, 4, None).unwrap();
        let read_opts = ReadOptions {
            verify_checksums: true,
            ..Default::default()
        };
        let target = encode_internal_key(b"key000000", u64::MAX >> 8, ValueType::Value);
        assert!(table.get(&read_opts, &target).is_err());
    }

    #[test]
    fn compressed_table_is_smaller_and_reads_back_identically() {
        let env = MemEnv::new();
        let raw_path = Path::new("/sst/raw.sst");
        let lz_path = Path::new("/sst/lz.sst");
        let raw_size = build_table(&env, raw_path, 1000);

        let mut lz_opts = StoreOptions::default();
        lz_opts.compression = pebblesdb_common::CompressionType::Lz;
        let lz_size = build_table_with(&env, lz_path, 1000, &lz_opts);

        // The key/value stream is highly repetitive, so the codec must pay.
        assert!(
            lz_size < raw_size,
            "compressed table ({lz_size}) not smaller than raw ({raw_size})"
        );
        let stats = &lz_opts.compression_stats;
        assert!(stats.input_bytes.load(std::sync::atomic::Ordering::Relaxed) > 0);

        // Every entry reads back bit-identically, with checksums verified.
        let file = env.new_random_access_file(lz_path).unwrap();
        let table = Arc::new(Table::open(&lz_opts, file, lz_size, 7, None).unwrap());
        let read_opts = ReadOptions {
            verify_checksums: true,
            ..Default::default()
        };
        let mut iter = table.iter(&read_opts);
        iter.seek_to_first();
        let mut count = 0;
        while iter.valid() {
            let parsed = parse_internal_key(iter.key()).unwrap();
            assert_eq!(parsed.user_key, format!("key{count:06}").as_bytes());
            assert_eq!(iter.value(), format!("value-{count}").as_bytes());
            count += 1;
            iter.next();
        }
        assert_eq!(count, 1000);
        assert!(
            stats
                .decompress_micros
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
                || stats.input_bytes.load(std::sync::atomic::Ordering::Relaxed) > 0
        );
    }

    #[test]
    fn tag_zero_tables_stay_readable_under_compression_enabled_options() {
        // A file written with compression off must open and read under
        // options that enable compression (the reader keys off the stored
        // per-block tag, not the option) — and vice versa.
        let env = MemEnv::new();
        let raw_path = Path::new("/sst/old-format.sst");
        let raw_size = build_table(&env, raw_path, 300);

        let mut lz_opts = StoreOptions::default();
        lz_opts.compression = pebblesdb_common::CompressionType::Lz;
        let file = env.new_random_access_file(raw_path).unwrap();
        let table = Table::open(&lz_opts, file, raw_size, 8, None).unwrap();
        let target = encode_internal_key(b"key000123", u64::MAX >> 8, ValueType::Value);
        let (_, value) = table
            .get(&ReadOptions::default(), &target)
            .unwrap()
            .expect("tag-0 file must stay readable");
        assert_eq!(value, b"value-123");

        let lz_path = Path::new("/sst/new-format.sst");
        let lz_size = build_table_with(&env, lz_path, 300, &lz_opts);
        let file = env.new_random_access_file(lz_path).unwrap();
        let table = Table::open(&StoreOptions::default(), file, lz_size, 9, None).unwrap();
        let (_, value) = table
            .get(&ReadOptions::default(), &target)
            .unwrap()
            .expect("compressed file must be readable under raw options");
        assert_eq!(value, b"value-123");
    }

    #[test]
    fn corrupted_compressed_block_is_detected_not_garbage() {
        let env = MemEnv::new();
        let path = Path::new("/sst/corrupt-lz.sst");
        let mut lz_opts = StoreOptions::default();
        lz_opts.compression = pebblesdb_common::CompressionType::Lz;
        let size = build_table_with(&env, path, 500, &lz_opts);

        let pristine = env.read_file_to_vec(path).unwrap();
        let read_opts = ReadOptions {
            verify_checksums: true,
            ..Default::default()
        };
        // Flip one bit at a spread of offsets across the file body. Every
        // flip must surface as an error or a clean miss — never a panic or a
        // wrong value.
        for pos in (0..pristine.len().saturating_sub(60)).step_by(97) {
            let mut contents = pristine.clone();
            contents[pos] ^= 1 << (pos % 8);
            let mut f = env.new_writable_file(path).unwrap();
            f.append(&contents).unwrap();
            f.close().unwrap();

            let file = env.new_random_access_file(path).unwrap();
            let Ok(table) = Table::open(&lz_opts, file, size, 10, None) else {
                continue; // corruption caught at open time: fine
            };
            let target = encode_internal_key(b"key000250", u64::MAX >> 8, ValueType::Value);
            match table.get(&read_opts, &target) {
                Err(_) | Ok(None) => {}
                Ok(Some((_, value))) => {
                    assert_eq!(value, b"value-250", "bit flip at {pos} corrupted a read");
                }
            }
        }
    }

    #[test]
    fn table_cache_reuses_open_tables() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = Path::new("/db");
        env.create_dir_all(db).unwrap();
        let opts = StoreOptions::default();

        let path = pebblesdb_common::filename::table_file_name(db, 9);
        let mem = MemEnv::new();
        // Build via the shared env (not `mem`) so the cache can open it.
        drop(mem);
        let file = env.new_writable_file(&path).unwrap();
        let mut builder = TableBuilder::new(&opts, file);
        for i in 0..50 {
            let key = encode_internal_key(format!("k{i:04}").as_bytes(), 1, ValueType::Value);
            builder.add(&key, b"v").unwrap();
        }
        let size = builder.finish().unwrap();

        let cache = TableCache::new(Arc::clone(&env), db.to_path_buf(), opts.clone(), 16);
        let t1 = cache.get_table(9, size).unwrap();
        let t2 = cache.get_table(9, size).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(cache.open_tables(), 1);

        let target = encode_internal_key(b"k0007", u64::MAX >> 8, ValueType::Value);
        let found = cache
            .get(&ReadOptions::default(), 9, size, &target)
            .unwrap()
            .expect("cached table lookup");
        assert_eq!(found.1, b"v");

        cache.evict(9);
        assert_eq!(cache.open_tables(), 0);
    }
}
