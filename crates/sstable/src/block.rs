//! Data and index blocks: prefix-compressed sorted entries with restarts.

use std::cmp::Ordering;
use std::sync::Arc;

use pebblesdb_common::coding::{decode_fixed32, decode_varint32, put_fixed32, put_varint32};
use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::key::compare_internal_keys;
use pebblesdb_common::{Error, Result};

/// Builds a block of sorted entries with shared-prefix compression.
///
/// Every `restart_interval` entries the shared prefix resets to zero and the
/// entry offset is recorded in the restart array, which the reader uses for
/// binary search.
pub struct BlockBuilder {
    buffer: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    counter: usize,
    last_key: Vec<u8>,
    num_entries: usize,
}

impl BlockBuilder {
    /// Creates a builder with the given restart interval.
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buffer: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            counter: 0,
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Appends an entry. Keys must be added in ascending order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.last_key.is_empty()
                || compare_internal_keys(&self.last_key, key) != Ordering::Greater
        );
        let mut shared = 0usize;
        if self.counter < self.restart_interval {
            let max_shared = self.last_key.len().min(key.len());
            while shared < max_shared && self.last_key[shared] == key[shared] {
                shared += 1;
            }
        } else {
            self.restarts.push(self.buffer.len() as u32);
            self.counter = 0;
        }
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buffer, shared as u32);
        put_varint32(&mut self.buffer, non_shared as u32);
        put_varint32(&mut self.buffer, value.len() as u32);
        self.buffer.extend_from_slice(&key[shared..]);
        self.buffer.extend_from_slice(value);

        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.num_entries += 1;
    }

    /// Estimated size of the finished block in bytes.
    pub fn current_size_estimate(&self) -> usize {
        self.buffer.len() + self.restarts.len() * 4 + 4
    }

    /// Returns `true` if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// Number of entries added.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// The last key added (empty before the first `add`).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finalises the block, appending the restart array, and returns its
    /// contents. The builder is left ready to build the next block after
    /// [`BlockBuilder::reset`].
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buffer);
        for &restart in &self.restarts {
            put_fixed32(&mut out, restart);
        }
        put_fixed32(&mut out, self.restarts.len() as u32);
        out
    }

    /// Clears the builder for reuse.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.restarts.clear();
        self.restarts.push(0);
        self.counter = 0;
        self.last_key.clear();
        self.num_entries = 0;
    }
}

/// An immutable, decoded block.
#[derive(Debug)]
pub struct Block {
    data: Vec<u8>,
    restart_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Wraps the raw contents produced by [`BlockBuilder::finish`].
    pub fn new(data: Vec<u8>) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::corruption("block too small for restart count"));
        }
        let num_restarts = decode_fixed32(&data[data.len() - 4..]) as usize;
        let restart_array_bytes = num_restarts
            .checked_mul(4)
            .and_then(|n| n.checked_add(4))
            .ok_or_else(|| Error::corruption("restart count overflow"))?;
        if restart_array_bytes > data.len() {
            return Err(Error::corruption("restart array larger than block"));
        }
        let restart_offset = data.len() - restart_array_bytes;
        Ok(Block {
            data,
            restart_offset,
            num_restarts,
        })
    }

    /// Size of the raw block contents in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_point(&self, index: usize) -> usize {
        decode_fixed32(&self.data[self.restart_offset + index * 4..]) as usize
    }

    /// Creates an iterator over the block.
    pub fn iter(self: &Arc<Self>) -> BlockIterator {
        BlockIterator {
            block: Arc::clone(self),
            offset: self.restart_offset,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }
}

/// Iterator over the entries of a [`Block`].
pub struct BlockIterator {
    block: Arc<Block>,
    /// Offset of the *next* entry to decode.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl BlockIterator {
    /// Decodes the entry starting at `self.offset`, updating `key`/`value`.
    ///
    /// Returns `false` at the end of the entry area.
    fn parse_next_entry(&mut self) -> bool {
        if self.offset >= self.block.restart_offset {
            self.valid = false;
            return false;
        }
        let data = &self.block.data;
        let mut pos = self.offset;
        let (shared, n1) = match decode_varint32(&data[pos..]) {
            Ok(v) => v,
            Err(_) => {
                self.valid = false;
                return false;
            }
        };
        pos += n1;
        let (non_shared, n2) = match decode_varint32(&data[pos..]) {
            Ok(v) => v,
            Err(_) => {
                self.valid = false;
                return false;
            }
        };
        pos += n2;
        let (value_len, n3) = match decode_varint32(&data[pos..]) {
            Ok(v) => v,
            Err(_) => {
                self.valid = false;
                return false;
            }
        };
        pos += n3;
        let shared = shared as usize;
        let non_shared = non_shared as usize;
        let value_len = value_len as usize;
        if pos + non_shared + value_len > self.block.restart_offset || shared > self.key.len() {
            self.valid = false;
            return false;
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&data[pos..pos + non_shared]);
        self.value_range = (pos + non_shared, pos + non_shared + value_len);
        self.offset = pos + non_shared + value_len;
        self.valid = true;
        true
    }

    fn seek_to_restart_point(&mut self, index: usize) {
        self.key.clear();
        self.offset = self.block.restart_point(index);
        self.valid = false;
    }

    /// The raw offset of the current entry's successor (used for tests).
    pub fn next_entry_offset(&self) -> usize {
        self.offset
    }
}

impl DbIterator for BlockIterator {
    fn valid(&self) -> bool {
        self.valid
    }

    fn seek_to_first(&mut self) {
        if self.block.num_restarts == 0 {
            self.valid = false;
            return;
        }
        self.seek_to_restart_point(0);
        self.parse_next_entry();
    }

    fn seek_to_last(&mut self) {
        if self.block.num_restarts == 0 {
            self.valid = false;
            return;
        }
        self.seek_to_restart_point(self.block.num_restarts - 1);
        // Walk forward to the final entry.
        while self.parse_next_entry() && self.offset < self.block.restart_offset {}
    }

    fn seek(&mut self, target: &[u8]) {
        if self.block.num_restarts == 0 {
            self.valid = false;
            return;
        }
        // Binary search the restart array for the last restart whose key is
        // strictly less than the target.
        let mut left = 0usize;
        let mut right = self.block.num_restarts - 1;
        while left < right {
            let mid = (left + right).div_ceil(2);
            self.seek_to_restart_point(mid);
            if !self.parse_next_entry() {
                right = mid - 1;
                continue;
            }
            if compare_internal_keys(&self.key, target) == Ordering::Less {
                left = mid;
            } else {
                right = mid - 1;
            }
        }
        self.seek_to_restart_point(left);
        // Linear scan forward to the first entry >= target.
        while self.parse_next_entry() {
            if compare_internal_keys(&self.key, target) != Ordering::Less {
                return;
            }
        }
    }

    fn next(&mut self) {
        assert!(self.valid, "next() on invalid block iterator");
        self.parse_next_entry();
    }

    fn prev(&mut self) {
        assert!(self.valid, "prev() on invalid block iterator");
        let original_key = self.key.clone();
        // Find the restart point strictly before the current entry, then walk
        // forward until the entry just before the original key.
        let mut restart = self.block.num_restarts - 1;
        loop {
            self.seek_to_restart_point(restart);
            self.parse_next_entry();
            if self.valid && compare_internal_keys(&self.key, &original_key) == Ordering::Less {
                break;
            }
            if restart == 0 {
                self.valid = false;
                return;
            }
            restart -= 1;
        }
        // Walk forward while the next entry remains before the original key.
        loop {
            let saved_key = self.key.clone();
            let saved_value = self.value_range;
            let saved_offset = self.offset;
            if !self.parse_next_entry()
                || compare_internal_keys(&self.key, &original_key) != Ordering::Less
            {
                self.key = saved_key;
                self.value_range = saved_value;
                self.offset = saved_offset;
                self.valid = true;
                return;
            }
        }
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_range.0..self.value_range.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::{encode_internal_key, extract_user_key, ValueType};

    fn ikey(user: &str) -> Vec<u8> {
        encode_internal_key(user.as_bytes(), 1, ValueType::Value)
    }

    fn build(keys: &[&str], restart_interval: usize) -> Arc<Block> {
        let mut builder = BlockBuilder::new(restart_interval);
        for k in keys {
            builder.add(&ikey(k), format!("val-{k}").as_bytes());
        }
        Arc::new(Block::new(builder.finish()).unwrap())
    }

    #[test]
    fn empty_block_iterates_nothing() {
        let mut builder = BlockBuilder::new(4);
        let block = Arc::new(Block::new(builder.finish()).unwrap());
        let mut iter = block.iter();
        iter.seek_to_first();
        assert!(!iter.valid());
        iter.seek(&ikey("a"));
        assert!(!iter.valid());
    }

    #[test]
    fn entries_roundtrip_with_prefix_compression() {
        let keys = ["apple", "application", "apply", "banana", "bandana"];
        let block = build(&keys, 2);
        let mut iter = block.iter();
        iter.seek_to_first();
        for k in keys {
            assert!(iter.valid());
            assert_eq!(extract_user_key(iter.key()), k.as_bytes());
            assert_eq!(iter.value(), format!("val-{k}").as_bytes());
            iter.next();
        }
        assert!(!iter.valid());
    }

    #[test]
    fn seek_finds_lower_bound_across_restarts() {
        let keys: Vec<String> = (0..100).map(|i| format!("key{i:04}")).collect();
        let refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        let block = build(&refs, 7);
        let mut iter = block.iter();

        iter.seek(&ikey("key0042"));
        assert!(iter.valid());
        assert_eq!(extract_user_key(iter.key()), b"key0042");

        iter.seek(&ikey("key0042x"));
        assert_eq!(extract_user_key(iter.key()), b"key0043");

        iter.seek(&ikey("zzz"));
        assert!(!iter.valid());

        iter.seek(&ikey(""));
        assert!(iter.valid());
        assert_eq!(extract_user_key(iter.key()), b"key0000");
    }

    #[test]
    fn seek_to_last_and_prev_walk_backwards() {
        let keys = ["a", "b", "c", "d", "e"];
        let block = build(&keys, 2);
        let mut iter = block.iter();
        iter.seek_to_last();
        assert!(iter.valid());
        assert_eq!(extract_user_key(iter.key()), b"e");
        for expected in ["d", "c", "b", "a"] {
            iter.prev();
            assert!(iter.valid());
            assert_eq!(extract_user_key(iter.key()), expected.as_bytes());
        }
        iter.prev();
        assert!(!iter.valid());
    }

    #[test]
    fn corrupt_restart_count_is_rejected() {
        assert!(Block::new(vec![1, 2]).is_err());
        // Restart count claims more restarts than bytes available.
        let mut data = vec![0u8; 8];
        data[4..].copy_from_slice(&100u32.to_le_bytes());
        assert!(Block::new(data).is_err());
    }

    #[test]
    fn builder_reset_allows_reuse() {
        let mut builder = BlockBuilder::new(4);
        builder.add(&ikey("a"), b"1");
        assert!(!builder.is_empty());
        let first = builder.finish();
        builder.reset();
        assert!(builder.is_empty());
        builder.add(&ikey("b"), b"2");
        let second = builder.finish();
        assert_ne!(first, second);
    }

    #[test]
    fn size_estimate_tracks_growth() {
        let mut builder = BlockBuilder::new(16);
        let empty = builder.current_size_estimate();
        builder.add(&ikey("abcdef"), &[0u8; 100]);
        assert!(builder.current_size_estimate() > empty + 100);
    }
}
