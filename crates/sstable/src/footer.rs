//! Block handles and the fixed-size table footer.

use pebblesdb_common::coding::{decode_fixed64, put_fixed64, put_varint64, Decoder};
use pebblesdb_common::{Error, Result};

/// Magic number identifying the end of an sstable produced by this workspace.
pub const TABLE_MAGIC: u64 = 0x7065_6262_6c65_7362; // "pebblesb"

/// Encoded length of the footer: two varint64 pairs padded to 40 bytes plus
/// the 8-byte magic number.
pub const FOOTER_SIZE: usize = 48;

/// The location (offset, size) of a block within the table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Size of the block contents, excluding the trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Creates a handle.
    pub fn new(offset: u64, size: u64) -> Self {
        BlockHandle { offset, size }
    }

    /// Appends the varint encoding of the handle to `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Returns the varint encoding of the handle.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        self.encode_to(&mut out);
        out
    }

    /// Decodes a handle from the front of `src`.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let mut dec = Decoder::new(src);
        let offset = dec.read_varint64()?;
        let size = dec.read_varint64()?;
        let used = src.len() - dec.remaining();
        Ok((BlockHandle { offset, size }, used))
    }
}

/// The footer written at the very end of every table file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Footer {
    /// Handle of the sstable-level bloom filter block (size 0 if absent).
    pub filter_handle: BlockHandle,
    /// Handle of the index block.
    pub index_handle: BlockHandle,
}

impl Footer {
    /// Serialises the footer to exactly [`FOOTER_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_SIZE);
        self.filter_handle.encode_to(&mut out);
        self.index_handle.encode_to(&mut out);
        out.resize(FOOTER_SIZE - 8, 0);
        put_fixed64(&mut out, TABLE_MAGIC);
        out
    }

    /// Decodes a footer from the last [`FOOTER_SIZE`] bytes of a file.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() < FOOTER_SIZE {
            return Err(Error::corruption("footer too small"));
        }
        let magic = decode_fixed64(&src[src.len() - 8..]);
        if magic != TABLE_MAGIC {
            return Err(Error::corruption("bad table magic number"));
        }
        let (filter_handle, used) = BlockHandle::decode_from(src)?;
        let (index_handle, _) = BlockHandle::decode_from(&src[used..])?;
        Ok(Footer {
            filter_handle,
            index_handle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_handle_roundtrip() {
        let handle = BlockHandle::new(1 << 40, 12345);
        let encoded = handle.encode();
        let (decoded, used) = BlockHandle::decode_from(&encoded).unwrap();
        assert_eq!(decoded, handle);
        assert_eq!(used, encoded.len());
    }

    #[test]
    fn footer_roundtrip_is_fixed_size() {
        let footer = Footer {
            filter_handle: BlockHandle::new(1000, 200),
            index_handle: BlockHandle::new(1200, 99),
        };
        let encoded = footer.encode();
        assert_eq!(encoded.len(), FOOTER_SIZE);
        assert_eq!(Footer::decode(&encoded).unwrap(), footer);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let footer = Footer::default();
        let mut encoded = footer.encode();
        let last = encoded.len() - 1;
        encoded[last] ^= 0xff;
        assert!(Footer::decode(&encoded).is_err());
        assert!(Footer::decode(&[0u8; 10]).is_err());
    }
}
