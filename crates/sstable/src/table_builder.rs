//! Builds an sstable file from a sorted stream of entries.

use std::sync::Arc;

use pebblesdb_bloom::BloomFilterPolicy;
use pebblesdb_common::coding::put_fixed32;
use pebblesdb_common::key::extract_user_key;
use pebblesdb_common::{crc32c, CompressionStats, CompressionType, Error, Result, StoreOptions};
use pebblesdb_env::WritableFile;

use crate::block::BlockBuilder;
use crate::footer::{BlockHandle, Footer};

/// Streams sorted internal key/value pairs into an sstable file.
///
/// Entries must be added in increasing internal-key order. Call
/// [`TableBuilder::finish`] to write the filter block, index block and footer
/// and obtain the final file size.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    offset: u64,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    /// User keys buffered for the sstable-level bloom filter. The filter is
    /// sized from the real key count at `finish` time, which keeps the false
    /// positive rate at the configured bits-per-key regardless of table size.
    filter_keys: Vec<Vec<u8>>,
    bloom_bits_per_key: usize,
    block_size: usize,
    num_entries: u64,
    /// Pending index entry: the last key of the block that was just flushed,
    /// written lazily so it could be shortened (we keep the full key).
    pending_index_entry: Option<(Vec<u8>, BlockHandle)>,
    first_key: Option<Vec<u8>>,
    last_key: Vec<u8>,
    closed: bool,
    /// Codec for data and index blocks (the filter block is raw bloom bits —
    /// incompressible by construction — and always stored with tag 0).
    compression: CompressionType,
    compression_stats: Arc<CompressionStats>,
}

impl TableBuilder {
    /// Creates a builder writing to `file` using the block parameters from
    /// `options`, compressing with [`StoreOptions::compression`] (per-level
    /// tiers require [`TableBuilder::new_for_level`]).
    pub fn new(options: &StoreOptions, file: Box<dyn WritableFile>) -> Self {
        Self::with_compression(options, file, options.compression)
    }

    /// Creates a builder for an sstable destined for `level`, resolving the
    /// codec through [`StoreOptions::compression_for_level`] — this is what
    /// the flush and compaction output paths use.
    pub fn new_for_level(
        options: &StoreOptions,
        file: Box<dyn WritableFile>,
        level: usize,
    ) -> Self {
        Self::with_compression(options, file, options.compression_for_level(level))
    }

    fn with_compression(
        options: &StoreOptions,
        file: Box<dyn WritableFile>,
        compression: CompressionType,
    ) -> Self {
        TableBuilder {
            file,
            offset: 0,
            data_block: BlockBuilder::new(options.block_restart_interval),
            index_block: BlockBuilder::new(1),
            filter_keys: Vec::new(),
            bloom_bits_per_key: options.bloom_bits_per_key,
            block_size: options.block_size.max(256),
            num_entries: 0,
            pending_index_entry: None,
            first_key: None,
            last_key: Vec::new(),
            closed: false,
            compression,
            compression_stats: Arc::clone(&options.compression_stats),
        }
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Approximate size of the file written so far.
    pub fn file_size(&self) -> u64 {
        self.offset + self.data_block.current_size_estimate() as u64
    }

    /// The first internal key added (if any).
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// The last internal key added (if any).
    pub fn last_key(&self) -> Option<&[u8]> {
        if self.last_key.is_empty() {
            None
        } else {
            Some(&self.last_key)
        }
    }

    /// Adds an entry. Keys must arrive in ascending internal-key order.
    pub fn add(&mut self, internal_key: &[u8], value: &[u8]) -> Result<()> {
        if self.closed {
            return Err(Error::internal("add() after finish()"));
        }
        self.maybe_flush_pending_index(internal_key)?;

        if self.first_key.is_none() {
            self.first_key = Some(internal_key.to_vec());
        }
        if self.bloom_bits_per_key > 0 {
            self.filter_keys
                .push(extract_user_key(internal_key).to_vec());
        }
        self.data_block.add(internal_key, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(internal_key);
        self.num_entries += 1;

        if self.data_block.current_size_estimate() >= self.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Finishes the table: flushes the last data block, writes the filter and
    /// index blocks and the footer, syncs the file and returns its size.
    pub fn finish(mut self) -> Result<u64> {
        if !self.data_block.is_empty() {
            self.flush_data_block()?;
        }
        self.maybe_flush_pending_index(&[])?;
        self.closed = true;

        // Filter block: raw bloom filter bytes (not block-formatted).
        let filter_handle = if self.bloom_bits_per_key > 0 && !self.filter_keys.is_empty() {
            let policy = BloomFilterPolicy::new(self.bloom_bits_per_key);
            let keys = std::mem::take(&mut self.filter_keys);
            let contents = policy.create_filter(&keys);
            let handle = BlockHandle::new(self.offset, contents.len() as u64);
            self.write_raw_block(&contents)?;
            handle
        } else {
            BlockHandle::default()
        };

        // Index block (compressed like data blocks when the codec pays).
        let index_contents = self.index_block.finish();
        let index_handle = self.write_block(&index_contents)?;

        let footer = Footer {
            filter_handle,
            index_handle,
        };
        let encoded = footer.encode();
        self.file.append(&encoded)?;
        self.offset += encoded.len() as u64;

        self.file.sync()?;
        self.file.close()?;
        Ok(self.offset)
    }

    /// Abandons the table without writing trailing metadata.
    pub fn abandon(mut self) -> Result<()> {
        self.closed = true;
        self.file.close()
    }

    fn maybe_flush_pending_index(&mut self, next_key: &[u8]) -> Result<()> {
        if let Some((last_key, handle)) = self.pending_index_entry.take() {
            let _ = next_key; // The full last key is used as the separator.
            self.index_block.add(&last_key, &handle.encode());
        }
        Ok(())
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let last_key = self.data_block.last_key().to_vec();
        let contents = self.data_block.finish();
        let handle = self.write_block(&contents)?;
        self.data_block.reset();
        self.pending_index_entry = Some((last_key, handle));
        Ok(())
    }

    /// Writes a data/index block through the configured codec, falling back
    /// to raw storage when compression saves less than ~12.5% — the stored
    /// trailer tag always matches what was actually written, so readers
    /// dispatch per block and a mixed-tag file is perfectly normal.
    fn write_block(&mut self, contents: &[u8]) -> Result<BlockHandle> {
        match self.compression {
            CompressionType::None => self.write_block_with_tag(contents, 0),
            CompressionType::Lz => match pebblesdb_compress::compress_if_worthwhile(contents) {
                Some(compressed) => {
                    self.compression_stats
                        .record_compressed(contents.len() as u64, compressed.len() as u64);
                    self.write_block_with_tag(&compressed, CompressionType::Lz.tag())
                }
                None => {
                    self.compression_stats.record_skipped();
                    self.write_block_with_tag(contents, 0)
                }
            },
        }
    }

    /// Writes block contents followed by the 5-byte trailer
    /// (compression tag + masked CRC of contents and tag).
    fn write_raw_block(&mut self, contents: &[u8]) -> Result<()> {
        self.write_block_with_tag(contents, 0)?;
        Ok(())
    }

    fn write_block_with_tag(&mut self, contents: &[u8], tag: u8) -> Result<BlockHandle> {
        let handle = BlockHandle::new(self.offset, contents.len() as u64);
        self.file.append(contents)?;
        let mut trailer = Vec::with_capacity(5);
        trailer.push(tag);
        let mut crc = crc32c::crc32c(contents);
        crc = crc32c::extend(crc, &[tag]);
        put_fixed32(&mut trailer, crc32c::mask(crc));
        self.file.append(&trailer)?;
        self.offset += (contents.len() + trailer.len()) as u64;
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::key::{encode_internal_key, ValueType};
    use pebblesdb_env::{Env, MemEnv};
    use std::path::Path;

    #[test]
    fn builder_tracks_entry_count_and_keys() {
        let env = MemEnv::new();
        let file = env.new_writable_file(Path::new("/t.sst")).unwrap();
        let mut builder = TableBuilder::new(&StoreOptions::default(), file);
        assert_eq!(builder.num_entries(), 0);
        assert!(builder.first_key().is_none());

        let k1 = encode_internal_key(b"aaa", 1, ValueType::Value);
        let k2 = encode_internal_key(b"bbb", 2, ValueType::Value);
        builder.add(&k1, b"1").unwrap();
        builder.add(&k2, b"2").unwrap();
        assert_eq!(builder.num_entries(), 2);
        assert_eq!(builder.first_key().unwrap(), k1.as_slice());
        assert_eq!(builder.last_key().unwrap(), k2.as_slice());
        let size = builder.finish().unwrap();
        assert_eq!(size, env.file_size(Path::new("/t.sst")).unwrap());
        assert!(size > 0);
    }

    #[test]
    fn add_after_finish_is_rejected() {
        let env = MemEnv::new();
        let file = env.new_writable_file(Path::new("/t2.sst")).unwrap();
        let builder = TableBuilder::new(&StoreOptions::default(), file);
        // `finish` consumes the builder, so "add after finish" is prevented at
        // compile time; `abandon` must also close cleanly.
        builder.abandon().unwrap();
    }

    #[test]
    fn small_blocks_force_multiple_data_blocks() {
        let env = MemEnv::new();
        let file = env.new_writable_file(Path::new("/t3.sst")).unwrap();
        let mut opts = StoreOptions::default();
        opts.block_size = 256;
        let mut builder = TableBuilder::new(&opts, file);
        for i in 0..200u32 {
            let key = encode_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value);
            builder.add(&key, &[b'v'; 64]).unwrap();
        }
        let size = builder.finish().unwrap();
        // 200 entries * ~80 bytes each cannot fit in a couple of 256-byte
        // blocks, so the file must be comfortably larger than one block.
        assert!(size > 10 * 256);
    }
}
