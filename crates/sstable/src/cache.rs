//! A thread-safe, sharded LRU cache with byte-size accounting.
//!
//! Used as the block cache (keyed by `(table id, block offset)`) and as the
//! table cache (keyed by file number). Capacity is expressed in abstract
//! "charge" units — bytes for blocks, entries for tables.
//!
//! Large caches are split into a power-of-two number of independently locked
//! shards selected by key hash, so concurrent readers hitting different
//! blocks do not serialise on a single mutex. Each shard owns an equal slice
//! of the total capacity and runs its own LRU list; hit/miss/usage totals
//! are exact sums over the shards. Small caches (where per-shard capacity
//! would be too small to behave like an LRU at all) stay single-sharded and
//! keep strict global LRU ordering.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

/// Upper bound on the number of shards (must be a power of two).
const MAX_SHARDS: usize = 16;

/// Minimum per-shard capacity required before the cache splits into more
/// than one shard. Below this, sharding would make eviction behaviour
/// erratic (single entries larger than a shard), so we keep one shard.
const MIN_SHARD_CAPACITY: usize = 4096;

struct Entry<K, V> {
    key: K,
    value: Arc<V>,
    charge: usize,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

struct LruInner<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    usage: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruInner<K, V> {
    fn new(capacity: usize) -> Self {
        LruInner {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            usage: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    fn insert(&mut self, key: K, value: Arc<V>, charge: usize) {
        if let Some(&slot) = self.map.get(&key) {
            self.detach(slot);
            self.remove_slot(slot);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            charge,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Some(entry);
                slot
            }
            None => {
                self.slab.push(Some(entry));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.usage += charge;
        self.attach_front(slot);
        self.evict_if_needed();
    }

    fn get(&mut self, key: &K) -> Option<Arc<V>> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.detach(slot);
                self.attach_front(slot);
                self.slab[slot].as_ref().map(|e| Arc::clone(&e.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn erase(&mut self, key: &K) {
        if let Some(&slot) = self.map.get(key) {
            self.detach(slot);
            self.remove_slot(slot);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.usage = 0;
    }

    fn attach_front(&mut self, slot: usize) {
        let old_head = self.head;
        if let Some(entry) = self.slab[slot].as_mut() {
            entry.prev = NIL;
            entry.next = old_head;
        }
        if old_head != NIL {
            if let Some(entry) = self.slab[old_head].as_mut() {
                entry.prev = slot;
            }
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = match self.slab[slot].as_ref() {
            Some(entry) => (entry.prev, entry.next),
            None => return,
        };
        if prev != NIL {
            if let Some(entry) = self.slab[prev].as_mut() {
                entry.next = next;
            }
        } else {
            self.head = next;
        }
        if next != NIL {
            if let Some(entry) = self.slab[next].as_mut() {
                entry.prev = prev;
            }
        } else {
            self.tail = prev;
        }
    }

    fn remove_slot(&mut self, slot: usize) {
        if let Some(entry) = self.slab[slot].take() {
            self.usage -= entry.charge;
            self.map.remove(&entry.key);
            self.free.push(slot);
        }
    }

    fn evict_if_needed(&mut self) {
        while self.usage > self.capacity && self.tail != NIL {
            let victim = self.tail;
            self.detach(victim);
            self.remove_slot(victim);
        }
    }
}

/// A sharded, mutex-per-shard LRU cache.
pub struct LruCache<K, V> {
    shards: Vec<Mutex<LruInner<K, V>>>,
    /// `shards.len() - 1`; valid as a bitmask because the count is a power
    /// of two.
    mask: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` units of charge, split
    /// evenly across a power-of-two number of shards chosen from the
    /// capacity (large byte-sized caches get [`MAX_SHARDS`]; small caches
    /// stay single-sharded so strict LRU order holds).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut shards = MAX_SHARDS;
        while shards > 1 && capacity / shards < MIN_SHARD_CAPACITY {
            shards /= 2;
        }
        let per_shard = capacity.div_ceil(shards);
        LruCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruInner::new(per_shard)))
                .collect(),
            mask: shards - 1,
        }
    }

    /// Number of independently locked shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &K) -> &Mutex<LruInner<K, V>> {
        if self.mask == 0 {
            return &self.shards[0];
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        // Fold the high bits in: the low bits of some keys (block offsets,
        // file numbers) are poorly distributed.
        let h = hasher.finish();
        &self.shards[((h ^ (h >> 32)) as usize) & self.mask]
    }

    /// Inserts `key -> value` with the given charge, evicting old entries
    /// from the key's shard if its capacity is exceeded. Returns the
    /// inserted value.
    pub fn insert(&self, key: K, value: V, charge: usize) -> Arc<V> {
        let value = Arc::new(value);
        self.shard(&key)
            .lock()
            .insert(key, Arc::clone(&value), charge);
        value
    }

    /// Returns the cached value for `key`, marking it most recently used
    /// within its shard.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.shard(key).lock().get(key)
    }

    /// Removes `key` from the cache if present.
    pub fn erase(&self, key: &K) {
        self.shard(key).lock().erase(key);
    }

    /// Number of entries currently cached, summed over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total charge of the cached entries, summed over all shards.
    pub fn usage(&self) -> usize {
        self.shards.iter().map(|s| s.lock().usage).sum()
    }

    /// Exact hit and miss counters since creation, summed over all shards.
    pub fn hit_miss(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for shard in &self.shards {
            let inner = shard.lock();
            hits += inner.hits;
            misses += inner.misses;
        }
        (hits, misses)
    }

    /// Removes every entry from every shard (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let cache: LruCache<u64, String> = LruCache::new(100);
        cache.insert(1, "one".to_string(), 10);
        cache.insert(2, "two".to_string(), 10);
        assert_eq!(cache.get(&1).unwrap().as_str(), "one");
        assert_eq!(cache.get(&2).unwrap().as_str(), "two");
        assert!(cache.get(&3).is_none());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.usage(), 20);
        let (hits, misses) = cache.hit_miss();
        assert_eq!(hits, 2);
        assert_eq!(misses, 1);
    }

    #[test]
    fn least_recently_used_entries_are_evicted_first() {
        let cache: LruCache<u32, u32> = LruCache::new(3);
        cache.insert(1, 10, 1);
        cache.insert(2, 20, 1);
        cache.insert(3, 30, 1);
        // Touch 1 so 2 becomes the LRU entry.
        cache.get(&1);
        cache.insert(4, 40, 1);
        assert!(cache.get(&2).is_none());
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert!(cache.get(&4).is_some());
    }

    #[test]
    fn oversized_entry_evicts_everything_else() {
        let cache: LruCache<u32, Vec<u8>> = LruCache::new(10);
        cache.insert(1, vec![0; 4], 4);
        cache.insert(2, vec![0; 4], 4);
        cache.insert(3, vec![0; 20], 20);
        // The oversized entry itself is evicted too (usage > capacity).
        assert!(cache.usage() <= 10 || cache.len() == 1);
        assert!(cache.get(&1).is_none());
        assert!(cache.get(&2).is_none());
    }

    #[test]
    fn reinserting_a_key_replaces_it() {
        let cache: LruCache<u32, u32> = LruCache::new(10);
        cache.insert(1, 100, 2);
        cache.insert(1, 200, 2);
        assert_eq!(*cache.get(&1).unwrap(), 200);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.usage(), 2);
    }

    #[test]
    fn erase_and_clear() {
        let cache: LruCache<u32, u32> = LruCache::new(10);
        cache.insert(1, 1, 1);
        cache.insert(2, 2, 1);
        cache.erase(&1);
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.usage(), 0);
    }

    #[test]
    fn value_survives_eviction_while_referenced() {
        let cache: LruCache<u32, String> = LruCache::new(1);
        let held = cache.insert(1, "held".to_string(), 1);
        cache.insert(2, "evictor".to_string(), 1);
        assert!(cache.get(&1).is_none());
        // The Arc we hold keeps the value alive even though it left the cache.
        assert_eq!(held.as_str(), "held");
    }

    #[test]
    fn small_capacities_stay_single_sharded_large_ones_split() {
        let small: LruCache<u32, u32> = LruCache::new(100);
        assert_eq!(small.shard_count(), 1);
        let large: LruCache<u32, u32> = LruCache::new(8 << 20);
        assert_eq!(large.shard_count(), MAX_SHARDS);
        assert!(large.shard_count().is_power_of_two());
    }

    #[test]
    fn sharded_cache_aggregates_exact_counters_and_bounds_usage() {
        let capacity = MAX_SHARDS * MIN_SHARD_CAPACITY * 4;
        let cache: LruCache<u64, Vec<u8>> = LruCache::new(capacity);
        assert_eq!(cache.shard_count(), MAX_SHARDS);

        for i in 0..1000u64 {
            cache.insert(i, vec![0u8; 512], 512);
        }
        let mut hits = 0u64;
        for i in 0..1000u64 {
            if cache.get(&i).is_some() {
                hits += 1;
            }
        }
        let (h, m) = cache.hit_miss();
        assert_eq!(h, hits);
        assert_eq!(m, 1000 - hits);
        assert_eq!(cache.usage(), cache.len() * 512);
        // Per-shard eviction keeps total usage within a rounding slop of
        // one entry per shard above the configured capacity.
        assert!(cache.usage() <= capacity + MAX_SHARDS * 512);

        cache.erase(&0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.usage(), 0);
    }

    #[test]
    fn concurrent_access_across_shards_is_safe() {
        let cache: std::sync::Arc<LruCache<u64, u64>> =
            std::sync::Arc::new(LruCache::new(MAX_SHARDS * MIN_SHARD_CAPACITY));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = std::sync::Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let key = t * 10_000 + i;
                    cache.insert(key, key, 1);
                    assert_eq!(cache.get(&key).as_deref(), Some(&key));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let (hits, misses) = cache.hit_miss();
        assert_eq!(hits + misses, 8000);
    }
}
