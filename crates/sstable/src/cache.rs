//! A thread-safe LRU cache with byte-size accounting.
//!
//! Used as the block cache (keyed by `(table id, block offset)`) and as the
//! table cache (keyed by file number). Capacity is expressed in abstract
//! "charge" units — bytes for blocks, entries for tables.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;

struct Entry<K, V> {
    key: K,
    value: Arc<V>,
    charge: usize,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

struct LruInner<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    usage: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// A sharded-free, mutex-protected LRU cache.
pub struct LruCache<K, V> {
    inner: Mutex<LruInner<K, V>>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` units of charge.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                slab: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                usage: 0,
                capacity: capacity.max(1),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Inserts `key -> value` with the given charge, evicting old entries if
    /// the capacity is exceeded. Returns the inserted value.
    pub fn insert(&self, key: K, value: V, charge: usize) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&key) {
            Self::detach(&mut inner, slot);
            Self::remove_slot(&mut inner, slot);
        }
        let entry = Entry {
            key: key.clone(),
            value: Arc::clone(&value),
            charge,
            prev: NIL,
            next: NIL,
        };
        let slot = match inner.free.pop() {
            Some(slot) => {
                inner.slab[slot] = Some(entry);
                slot
            }
            None => {
                inner.slab.push(Some(entry));
                inner.slab.len() - 1
            }
        };
        inner.map.insert(key, slot);
        inner.usage += charge;
        Self::attach_front(&mut inner, slot);
        Self::evict_if_needed(&mut inner);
        value
    }

    /// Returns the cached value for `key`, marking it most recently used.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).copied() {
            Some(slot) => {
                inner.hits += 1;
                Self::detach(&mut inner, slot);
                Self::attach_front(&mut inner, slot);
                inner.slab[slot].as_ref().map(|e| Arc::clone(&e.value))
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Removes `key` from the cache if present.
    pub fn erase(&self, key: &K) {
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(key) {
            Self::detach(&mut inner, slot);
            Self::remove_slot(&mut inner, slot);
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total charge of the cached entries.
    pub fn usage(&self) -> usize {
        self.inner.lock().usage
    }

    /// Hit and miss counters since creation.
    pub fn hit_miss(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Removes every entry.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.slab.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.usage = 0;
    }

    fn attach_front(inner: &mut LruInner<K, V>, slot: usize) {
        let old_head = inner.head;
        if let Some(entry) = inner.slab[slot].as_mut() {
            entry.prev = NIL;
            entry.next = old_head;
        }
        if old_head != NIL {
            if let Some(entry) = inner.slab[old_head].as_mut() {
                entry.prev = slot;
            }
        }
        inner.head = slot;
        if inner.tail == NIL {
            inner.tail = slot;
        }
    }

    fn detach(inner: &mut LruInner<K, V>, slot: usize) {
        let (prev, next) = match inner.slab[slot].as_ref() {
            Some(entry) => (entry.prev, entry.next),
            None => return,
        };
        if prev != NIL {
            if let Some(entry) = inner.slab[prev].as_mut() {
                entry.next = next;
            }
        } else {
            inner.head = next;
        }
        if next != NIL {
            if let Some(entry) = inner.slab[next].as_mut() {
                entry.prev = prev;
            }
        } else {
            inner.tail = prev;
        }
    }

    fn remove_slot(inner: &mut LruInner<K, V>, slot: usize) {
        if let Some(entry) = inner.slab[slot].take() {
            inner.usage -= entry.charge;
            inner.map.remove(&entry.key);
            inner.free.push(slot);
        }
    }

    fn evict_if_needed(inner: &mut LruInner<K, V>) {
        while inner.usage > inner.capacity && inner.tail != NIL {
            let victim = inner.tail;
            Self::detach(inner, victim);
            Self::remove_slot(inner, victim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let cache: LruCache<u64, String> = LruCache::new(100);
        cache.insert(1, "one".to_string(), 10);
        cache.insert(2, "two".to_string(), 10);
        assert_eq!(cache.get(&1).unwrap().as_str(), "one");
        assert_eq!(cache.get(&2).unwrap().as_str(), "two");
        assert!(cache.get(&3).is_none());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.usage(), 20);
        let (hits, misses) = cache.hit_miss();
        assert_eq!(hits, 2);
        assert_eq!(misses, 1);
    }

    #[test]
    fn least_recently_used_entries_are_evicted_first() {
        let cache: LruCache<u32, u32> = LruCache::new(3);
        cache.insert(1, 10, 1);
        cache.insert(2, 20, 1);
        cache.insert(3, 30, 1);
        // Touch 1 so 2 becomes the LRU entry.
        cache.get(&1);
        cache.insert(4, 40, 1);
        assert!(cache.get(&2).is_none());
        assert!(cache.get(&1).is_some());
        assert!(cache.get(&3).is_some());
        assert!(cache.get(&4).is_some());
    }

    #[test]
    fn oversized_entry_evicts_everything_else() {
        let cache: LruCache<u32, Vec<u8>> = LruCache::new(10);
        cache.insert(1, vec![0; 4], 4);
        cache.insert(2, vec![0; 4], 4);
        cache.insert(3, vec![0; 20], 20);
        // The oversized entry itself is evicted too (usage > capacity).
        assert!(cache.usage() <= 10 || cache.len() == 1);
        assert!(cache.get(&1).is_none());
        assert!(cache.get(&2).is_none());
    }

    #[test]
    fn reinserting_a_key_replaces_it() {
        let cache: LruCache<u32, u32> = LruCache::new(10);
        cache.insert(1, 100, 2);
        cache.insert(1, 200, 2);
        assert_eq!(*cache.get(&1).unwrap(), 200);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.usage(), 2);
    }

    #[test]
    fn erase_and_clear() {
        let cache: LruCache<u32, u32> = LruCache::new(10);
        cache.insert(1, 1, 1);
        cache.insert(2, 2, 1);
        cache.erase(&1);
        assert!(cache.get(&1).is_none());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.usage(), 0);
    }

    #[test]
    fn value_survives_eviction_while_referenced() {
        let cache: LruCache<u32, String> = LruCache::new(1);
        let held = cache.insert(1, "held".to_string(), 1);
        cache.insert(2, "evictor".to_string(), 1);
        assert!(cache.get(&1).is_none());
        // The Arc we hold keeps the value alive even though it left the cache.
        assert_eq!(held.as_str(), "held");
    }
}
