//! Key-to-shard routing.
//!
//! A [`Partitioner`] maps every user key to exactly one shard — the single
//! invariant the whole sharded store leans on: point operations touch one
//! engine, and a key's versions never straddle two sequence histories. The
//! choice is persisted in `shards.meta`, so a database can only ever be
//! reopened with the partitioner (and shard count) it was created with.

use pebblesdb_common::hash::murmur3_32;
use pebblesdb_common::{Error, Result};

/// Seed for the hash partitioner; fixed so routing is stable across opens.
///
/// This MUST differ from the FLSM's guard-selection seed (`0x9747_b28c` in
/// the core crate). Guards are keys whose murmur hash has enough trailing
/// one-bits; routing by the same hash modulo the shard count makes a shard's
/// keyspace correlated with guard eligibility — with 2 shards, shard 0 would
/// hold exactly the even-hash keys, none of which can ever become a guard,
/// degenerating that shard to a single sentinel guard and livelocking its
/// compaction picker. An independent seed keeps the two hashes uncorrelated.
const PARTITION_SEED: u32 = 0x1b87_3593;

/// Maps a user key to the index of its owning shard.
pub trait Partitioner: Send + Sync {
    /// The shard (in `0..shards`) that owns `key`. Must be deterministic:
    /// the same key always routes to the same shard for a given count.
    fn shard_of(&self, key: &[u8], shards: usize) -> usize;
}

/// Uniform routing by key hash — the default. Spreads any workload evenly
/// but gives up range locality: a scan touches every shard.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn shard_of(&self, key: &[u8], shards: usize) -> usize {
        murmur3_32(key, PARTITION_SEED) as usize % shards
    }
}

/// Routing by the key's leading byte, scaled over the shard count. Keeps
/// contiguous key ranges on one shard (scans mostly hit one engine) at the
/// cost of skew when the keyspace is not uniform in its first byte.
#[derive(Debug, Default, Clone, Copy)]
pub struct RangePartitioner;

impl Partitioner for RangePartitioner {
    fn shard_of(&self, key: &[u8], shards: usize) -> usize {
        let first = key.first().copied().unwrap_or(0) as usize;
        first * shards / 256
    }
}

/// The partitioner choices a [`crate::ShardConfig`] can name; persisted by
/// name in `shards.meta`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// [`HashPartitioner`].
    Hash,
    /// [`RangePartitioner`].
    Range,
}

impl PartitionerKind {
    /// The stable on-disk name.
    pub fn name(&self) -> &'static str {
        match self {
            PartitionerKind::Hash => "hash",
            PartitionerKind::Range => "range",
        }
    }

    /// Parses a name written by [`PartitionerKind::name`].
    pub fn parse(name: &str) -> Result<PartitionerKind> {
        match name {
            "hash" => Ok(PartitionerKind::Hash),
            "range" => Ok(PartitionerKind::Range),
            other => Err(Error::invalid_argument(format!(
                "unknown partitioner {other:?}"
            ))),
        }
    }

    /// Instantiates the partitioner.
    pub fn build(&self) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::Hash => Box::new(HashPartitioner),
            PartitionerKind::Range => Box::new(RangePartitioner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_stable_and_in_range() {
        let part = HashPartitioner;
        for i in 0..1000u32 {
            let key = format!("key{i:05}");
            let shard = part.shard_of(key.as_bytes(), 4);
            assert!(shard < 4);
            assert_eq!(shard, part.shard_of(key.as_bytes(), 4), "deterministic");
        }
    }

    #[test]
    fn hash_routing_spreads_keys() {
        let part = HashPartitioner;
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[part.shard_of(format!("key{i:05}").as_bytes(), 4)] += 1;
        }
        for count in counts {
            assert!(count > 500, "no shard starves: {counts:?}");
        }
    }

    #[test]
    fn hash_routing_is_uncorrelated_with_guard_selection() {
        // The FLSM picks guards from keys whose murmur hash under the guard
        // seed has enough trailing one-bits. Every shard must keep receiving
        // guard-eligible keys, or its compaction shape degenerates into one
        // sentinel guard (see the PARTITION_SEED docs).
        const GUARD_HASH_SEED: u32 = 0x9747_b28c;
        for shards in [2usize, 3, 4, 8] {
            let mut guardable = vec![0usize; shards];
            for i in 0..16_000u32 {
                let key = format!("key{i:07}");
                let shard = HashPartitioner.shard_of(key.as_bytes(), shards);
                if murmur3_32(key.as_bytes(), GUARD_HASH_SEED).trailing_ones() >= 4 {
                    guardable[shard] += 1;
                }
            }
            for (shard, count) in guardable.iter().enumerate() {
                assert!(
                    *count > 0,
                    "shard {shard} of {shards} never sees a guard-eligible key"
                );
            }
        }
    }

    #[test]
    fn range_routing_is_monotone_in_the_leading_byte() {
        let part = RangePartitioner;
        assert_eq!(part.shard_of(b"", 4), 0);
        assert_eq!(part.shard_of(&[0x00], 4), 0);
        assert_eq!(part.shard_of(&[0x40], 4), 1);
        assert_eq!(part.shard_of(&[0x80], 4), 2);
        assert_eq!(part.shard_of(&[0xff], 4), 3);
        let mut last = 0;
        for byte in 0..=255u8 {
            let shard = part.shard_of(&[byte], 7);
            assert!(shard >= last && shard < 7);
            last = shard;
        }
    }

    #[test]
    fn kind_roundtrips_through_its_name() {
        for kind in [PartitionerKind::Hash, PartitionerKind::Range] {
            assert_eq!(PartitionerKind::parse(kind.name()).unwrap(), kind);
        }
        assert!(PartitionerKind::parse("modulo").is_err());
    }
}
