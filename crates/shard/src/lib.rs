//! `pebblesdb-shard`: horizontal write scaling inside one process.
//!
//! Every plain engine funnels all writers through one WAL, one commit queue
//! and one flush thread. [`ShardedDb`] lifts that ceiling by partitioning
//! the keyspace across N independent [`EngineDb`] instances (`shard-<i>/`
//! subdirectories), each owning its own WAL, group-commit queue, flush
//! thread and compaction pool — writers on different shards never contend
//! on a mutex or serialize through one WAL leader.
//!
//! # The global sequence and two-phase publish
//!
//! Snapshots must still be one number that is consistent across shards, so
//! the coordinator owns the sequence space: an atomic allocator hands each
//! write a contiguous range, sub-batches are written *pre-sequenced* into
//! their shards ([`EngineDb::write_presequenced`]), and the range only
//! becomes readable when it is **published** to the visibility watermark.
//! The watermark advances in allocation order (out-of-order completions
//! wait in a pending set), so a reader pinning the watermark observes every
//! batch entirely or not at all:
//!
//! * single-shard batches (the common case — and all point writes) skip the
//!   coordination entirely: allocate, stage on the one shard, publish;
//! * cross-shard batches first append the whole batch to a coordinator
//!   journal (`journal-*.log` in the store root), then stage every
//!   sub-batch, then publish. A crash between staging and publish is rolled
//!   *forward* on reopen by replaying the journal with the same
//!   deterministic sequence-slice assignment — re-staged records are
//!   idempotent (same key, same sequence). A mid-stream staging *error*
//!   poisons the store and freezes the watermark, so the half-staged batch
//!   stays unreadable until a reopen completes it.
//!
//! Reads route point gets to the owning shard; cursors merge one per-shard
//! cursor each, all pinned at a single watermark sequence
//! ([`ShardMergeIterator`]). Column-family operations are mirrored to every
//! shard in shard order (ids stay identical), and a batch's records keep
//! their per-record family routing when the batch is split.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use pebblesdb_common::cf::{CfOps, CfStats, ColumnFamilyHandle, Db};
use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::key::{SequenceNumber, ValueType};
use pebblesdb_common::snapshot::{Snapshot, SnapshotList};
use pebblesdb_common::{
    CfId, Error, KvStore, ReadOptions, Result, StoreOptions, StoreStats, WriteBatch, WriteOptions,
};
use pebblesdb_engine::chassis::EngineDb;
use pebblesdb_engine::policy::ShapePolicy;
use pebblesdb_wal::{LogReader, LogWriter};

mod merge;
mod partition;

pub use merge::ShardMergeIterator;
pub use partition::{HashPartitioner, Partitioner, PartitionerKind, RangePartitioner};

/// The metadata file naming the shard count and partitioner, written once at
/// creation; reopening with a different topology is refused.
const SHARDS_META: &str = "shards.meta";

/// Upper bound on the shard count — far above any sensible configuration,
/// it only guards against a typo'd `--shards` allocating thousands of
/// engines (each costs a WAL, a flush thread and a compaction pool).
const MAX_SHARDS: usize = 64;

/// Topology of a [`ShardedDb`]: fixed at creation, checked on reopen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of independent engine instances (1..=64).
    pub shards: usize,
    /// How keys route to shards.
    pub partitioner: PartitionerKind,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 4,
            partitioner: PartitionerKind::Hash,
        }
    }
}

fn missing_cf_error(cf: CfId) -> Error {
    Error::invalid_argument(format!("column family {cf} does not exist (dropped?)"))
}

// ---------------------------------------------------------------------------
// shards.meta
// ---------------------------------------------------------------------------

fn write_meta(env: &dyn pebblesdb_env::Env, path: &Path, config: &ShardConfig) -> Result<()> {
    let text = format!(
        "shards={}\npartitioner={}\n",
        config.shards,
        config.partitioner.name()
    );
    env.write_string_to_file_sync(&path.join(SHARDS_META), text.as_bytes())?;
    env.sync_dir(path)
}

fn read_meta(env: &dyn pebblesdb_env::Env, path: &Path) -> Result<Option<ShardConfig>> {
    let meta = path.join(SHARDS_META);
    if !env.file_exists(&meta) {
        return Ok(None);
    }
    let data = env.read_file_to_vec(&meta)?;
    let text = String::from_utf8(data)
        .map_err(|_| Error::corruption(format!("{SHARDS_META} is not UTF-8")))?;
    let mut shards: Option<usize> = None;
    let mut partitioner: Option<PartitionerKind> = None;
    for line in text.lines() {
        match line.split_once('=') {
            Some(("shards", value)) => {
                shards = Some(value.parse().map_err(|_| {
                    Error::corruption(format!("bad shard count {value:?} in {SHARDS_META}"))
                })?);
            }
            Some(("partitioner", value)) => partitioner = Some(PartitionerKind::parse(value)?),
            _ => {}
        }
    }
    match (shards, partitioner) {
        (Some(shards), Some(partitioner)) => Ok(Some(ShardConfig {
            shards,
            partitioner,
        })),
        _ => Err(Error::corruption(format!("incomplete {SHARDS_META}"))),
    }
}

// ---------------------------------------------------------------------------
// The visibility watermark
// ---------------------------------------------------------------------------

/// Tracks which prefix of the allocated sequence space is readable.
///
/// Ranges are allocated contiguously but complete out of order; a completed
/// range waits in `pending` until everything before it has published, so
/// `visible` only ever advances over fully staged batches.
struct SequenceFrontier {
    /// The highest sequence every reader may observe.
    visible: SequenceNumber,
    /// Completed ranges (start -> end) waiting on an earlier range.
    pending: BTreeMap<SequenceNumber, SequenceNumber>,
}

impl SequenceFrontier {
    fn publish(&mut self, start: SequenceNumber, end: SequenceNumber) {
        self.pending.insert(start, end);
        while let Some((&start, &end)) = self.pending.iter().next() {
            if start != self.visible + 1 {
                break;
            }
            self.visible = end;
            self.pending.remove(&start);
        }
    }
}

// ---------------------------------------------------------------------------
// The cross-shard coordinator journal
// ---------------------------------------------------------------------------

fn journal_file_name(root: &Path, number: u64) -> PathBuf {
    root.join(format!("journal-{number:06}.log"))
}

fn parse_journal_name(name: &str) -> Option<u64> {
    name.strip_prefix("journal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// The write-ahead record of cross-shard batches. A batch is journaled
/// (with its global base sequence) *before* any shard stages it, so the
/// all-or-nothing guarantee survives a crash mid-staging: reopen replays
/// the journal into every shard with the same deterministic sequence
/// assignment. Rotated (and its files deleted) once a full flush has moved
/// every journaled record into shard sstables.
struct Journal {
    env: Arc<dyn pebblesdb_env::Env>,
    root: PathBuf,
    writer: Option<LogWriter>,
    number: u64,
}

impl Journal {
    fn create(env: Arc<dyn pebblesdb_env::Env>, root: PathBuf, number: u64) -> Result<Journal> {
        let file = env.new_writable_file(&journal_file_name(&root, number))?;
        env.sync_dir(&root)?;
        Ok(Journal {
            env,
            root,
            writer: Some(LogWriter::new(file)),
            number,
        })
    }

    fn append(&mut self, record: &[u8]) -> Result<()> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| Error::internal("coordinator journal is closed"))?;
        writer.add_record(record)?;
        writer.flush()
    }

    fn sync(&mut self) -> Result<()> {
        self.writer
            .as_mut()
            .ok_or_else(|| Error::internal("coordinator journal is closed"))?
            .sync()
    }

    /// Deletes every journal file and starts a fresh one. Callers must have
    /// flushed all shards first (the journaled records are then covered by
    /// sstables).
    fn rotate(&mut self) -> Result<()> {
        self.writer = None;
        for name in self.env.children(&self.root)? {
            if parse_journal_name(&name).is_some() {
                self.env.remove_file(&self.root.join(&name))?;
            }
        }
        self.number += 1;
        let file = self
            .env
            .new_writable_file(&journal_file_name(&self.root, self.number))?;
        self.writer = Some(LogWriter::new(file));
        self.env.sync_dir(&self.root)
    }
}

/// Replays (then deletes) every coordinator journal at open: each record is
/// a full cross-shard batch that may have staged on only some shards before
/// a crash. Re-splitting with the same partitioner and the same shard-order
/// slice assignment reproduces the exact (key, sequence) pairs, so replay
/// is idempotent on shards that already hold the data. Records addressed at
/// families dropped since are skipped (their sequence slots stay consumed).
fn replay_journals<P: ShapePolicy>(
    env: &Arc<dyn pebblesdb_env::Env>,
    root: &Path,
    shards: &[EngineDb<P>],
    partitioner: &dyn Partitioner,
    live_cfs: &BTreeSet<CfId>,
) -> Result<()> {
    let mut files: Vec<(u64, String)> = env
        .children(root)?
        .into_iter()
        .filter_map(|name| parse_journal_name(&name).map(|number| (number, name)))
        .collect();
    files.sort();
    let durable = WriteOptions { sync: true };
    for (_, name) in &files {
        let file = env.new_sequential_file(&root.join(name))?;
        let mut reader = LogReader::new(file);
        // A torn tail ends replay of this journal, exactly like WAL replay.
        while let Ok(Some(record)) = reader.read_record() {
            let Ok(batch) = WriteBatch::from_contents(record) else {
                break;
            };
            let base = batch.sequence();
            // Rebuild the per-shard record lists in record order.
            type ShardRecords = Vec<(CfId, ValueType, Vec<u8>, Vec<u8>)>;
            let mut per_shard: Vec<ShardRecords> = vec![Vec::new(); shards.len()];
            let mut intact = true;
            for item in batch.iter() {
                let Ok(item) = item else {
                    intact = false;
                    break;
                };
                per_shard[partitioner.shard_of(item.key, shards.len())].push((
                    item.cf,
                    item.value_type,
                    item.key.to_vec(),
                    item.value.to_vec(),
                ));
            }
            if !intact {
                break;
            }
            // Stage each shard's slice. Skipped (dropped-family) records
            // still consume their sequence slots, so surviving records keep
            // the sequences the original staging assigned them; a skip
            // splits the slice into separately sequenced runs.
            let mut slice_start = base;
            for (index, records) in per_shard.iter().enumerate() {
                let mut run: Option<(SequenceNumber, WriteBatch)> = None;
                for (offset, (cf, value_type, key, value)) in records.iter().enumerate() {
                    if !live_cfs.contains(cf) {
                        if let Some((seq, mut sub)) = run.take() {
                            sub.set_sequence(seq);
                            shards[index].write_presequenced(&durable, sub)?;
                        }
                        continue;
                    }
                    let (_, sub) =
                        run.get_or_insert_with(|| (slice_start + offset as u64, WriteBatch::new()));
                    match value_type {
                        ValueType::Value => sub.put_cf(*cf, key, value),
                        ValueType::Deletion => sub.delete_cf(*cf, key),
                        // The coordinator journal holds user batches as
                        // submitted; value separation happens inside each
                        // engine's commit, after this replay hand-off.
                        ValueType::ValuePointer => {
                            return Err(Error::corruption("value pointer in coordinator journal"));
                        }
                    }
                }
                if let Some((seq, mut sub)) = run.take() {
                    sub.set_sequence(seq);
                    shards[index].write_presequenced(&durable, sub)?;
                }
                slice_start += records.len() as u64;
            }
        }
        env.remove_file(&root.join(name))?;
    }
    if !files.is_empty() {
        env.sync_dir(root)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The sharded core
// ---------------------------------------------------------------------------

/// The shared state behind a [`ShardedDb`] and its column-family handles.
struct ShardedCore<P: ShapePolicy> {
    shards: Vec<EngineDb<P>>,
    /// Each shard's namespace-scoped operations (same engines, pre-cast).
    shard_ops: Vec<Arc<dyn CfOps>>,
    partitioner: Box<dyn Partitioner>,
    config: ShardConfig,
    /// The next global sequence to hand out (ranges are contiguous).
    next_seq: AtomicU64,
    /// The visibility watermark (see [`SequenceFrontier`]).
    frontier: Mutex<SequenceFrontier>,
    /// The cross-shard journal; its lock also serializes cross-shard
    /// writers and keeps rotation out of a staging window. Single-shard
    /// writes never touch it.
    journal: Mutex<Journal>,
    /// Live families (id -> name), mirrored on every shard; doubles as the
    /// create/drop serialization lock.
    cfs: Mutex<BTreeMap<CfId, String>>,
    /// Pins of composite snapshots (each also pins every shard's list).
    snapshots: Arc<SnapshotList>,
    /// First coordinator-level failure (a partially staged cross-shard
    /// batch); poisons the store like an engine's background error.
    bg_error: Mutex<Option<Error>>,
}

impl<P: ShapePolicy> ShardedCore<P> {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn watermark(&self) -> SequenceNumber {
        self.frontier.lock().visible
    }

    fn publish(&self, start: SequenceNumber, end: SequenceNumber) {
        self.frontier.lock().publish(start, end);
    }

    fn alloc(&self, count: u64) -> SequenceNumber {
        self.next_seq.fetch_add(count, Ordering::Relaxed)
    }

    fn check_poisoned(&self) -> Result<()> {
        match &*self.bg_error.lock() {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    fn poison(&self, err: &Error) {
        let mut slot = self.bg_error.lock();
        if slot.is_none() {
            *slot = Some(err.clone());
        }
    }

    fn check_cf(&self, cf: CfId) -> Result<()> {
        if self.cfs.lock().contains_key(&cf) {
            Ok(())
        } else {
            Err(missing_cf_error(cf))
        }
    }

    /// Read options pinned at an explicit sequence: the caller's snapshot,
    /// or the current watermark — never a shard's own `last_sequence`,
    /// which may already include staged-but-unpublished records.
    fn pin_read(&self, opts: &ReadOptions) -> ReadOptions {
        let mut pinned = opts.clone();
        pinned.snapshot = Some(opts.snapshot.unwrap_or_else(|| self.watermark()));
        pinned
    }

    // ------------------------------------------------------------- writes

    /// Stages a batch that touches exactly one shard: allocate, stage,
    /// publish — no journal, no coordination with other writers.
    fn write_single(&self, shard: usize, opts: &WriteOptions, mut batch: WriteBatch) -> Result<()> {
        self.check_poisoned()?;
        let count = u64::from(batch.count());
        let base = self.alloc(count);
        batch.set_sequence(base);
        let result = self.shards[shard].write_presequenced(opts, batch);
        // Publish even on error: the engine's group commit is atomic, so a
        // failed sub-write applied nothing and the range is simply empty.
        // Holding it back would stall the watermark for every later writer.
        self.publish(base, base + count - 1);
        result
    }

    /// Routes a batch's records to their shards and commits it atomically.
    fn write_sharded(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let shard_count = self.shard_count();
        let mut subs: Vec<WriteBatch> = (0..shard_count).map(|_| WriteBatch::new()).collect();
        {
            let cfs = self.cfs.lock();
            for record in batch.iter() {
                let record = record?;
                if !cfs.contains_key(&record.cf) {
                    return Err(missing_cf_error(record.cf));
                }
                let shard = self.partitioner.shard_of(record.key, shard_count);
                match record.value_type {
                    ValueType::Value => subs[shard].put_cf(record.cf, record.key, record.value),
                    ValueType::Deletion => subs[shard].delete_cf(record.cf, record.key),
                    // Pointers are an engine-internal representation; a user
                    // batch never carries one.
                    ValueType::ValuePointer => {
                        return Err(Error::invalid_argument(
                            "value pointers cannot be written directly",
                        ));
                    }
                }
            }
        }
        let touched: Vec<usize> = subs
            .iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .map(|(index, _)| index)
            .collect();
        match touched.len() {
            0 => Ok(()),
            1 => {
                let index = touched[0];
                let sub = std::mem::replace(&mut subs[index], WriteBatch::new());
                self.write_single(index, opts, sub)
            }
            _ => self.write_multi(opts, batch, subs),
        }
    }

    /// Commits a batch spanning several shards: journal, stage every
    /// sub-batch, publish. The journal lock is held across all three so
    /// rotation never races a staging window; only cross-shard writers pay
    /// for that serialization.
    fn write_multi(
        &self,
        opts: &WriteOptions,
        mut batch: WriteBatch,
        mut subs: Vec<WriteBatch>,
    ) -> Result<()> {
        let mut journal = self.journal.lock();
        self.check_poisoned()?;
        let count = u64::from(batch.count());
        let base = self.alloc(count);
        batch.set_sequence(base);

        // Journal first: once any shard stages, the record must already be
        // on its way to disk so a crash rolls the batch forward, never into
        // a half-applied state. Sync writers get the journal fsynced before
        // the first shard is touched.
        let journaled = journal.append(batch.contents()).and_then(|()| {
            if opts.sync {
                journal.sync()
            } else {
                Ok(())
            }
        });
        if let Err(err) = journaled {
            self.poison(&err);
            // Nothing staged: the range is empty, publishing it keeps the
            // watermark moving for writers that raced this failure.
            self.publish(base, base + count - 1);
            return Err(err);
        }

        // Hand each shard its contiguous slice of the range, in shard
        // order — the same deterministic assignment replay reproduces.
        let mut next = base;
        for sub in &mut subs {
            if sub.is_empty() {
                continue;
            }
            sub.set_sequence(next);
            next += u64::from(sub.count());
        }
        for (index, sub) in subs.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            if let Err(err) = self.shards[index].write_presequenced(opts, sub) {
                // Partially staged: the range must never publish (a
                // snapshot would see half a batch). Freeze the watermark
                // and poison the store; reopen completes the batch from
                // the journal.
                self.poison(&err);
                return Err(err);
            }
        }
        self.publish(base, base + count - 1);
        Ok(())
    }

    // -------------------------------------------------------------- reads

    fn get_cf(&self, cf: CfId, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let shard = self.partitioner.shard_of(key, self.shard_count());
        self.shard_ops[shard].cf_get_opts(cf, &self.pin_read(opts), key)
    }

    fn iter_cf(&self, cf: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        let pinned = self.pin_read(opts);
        let mut children = Vec::with_capacity(self.shard_count());
        for ops in &self.shard_ops {
            children.push(ops.cf_iter(cf, &pinned)?);
        }
        Ok(Box::new(ShardMergeIterator::new(children)))
    }

    fn composite_snapshot(&self) -> Snapshot {
        let sequence = self.watermark();
        let children: Vec<Snapshot> = self
            .shards
            .iter()
            .map(|shard| shard.core().snapshots.acquire(sequence))
            .collect();
        self.snapshots.acquire(sequence).with_children(children)
    }

    // -------------------------------------------------------------- admin

    fn flush_all(&self) -> Result<()> {
        // Under the journal lock no cross-shard batch can be mid-staging;
        // after every shard flushes, all journaled records live in
        // sstables and the journal files can go.
        let mut journal = self.journal.lock();
        for shard in &self.shards {
            shard.flush()?;
        }
        journal.rotate()
    }

    fn aggregate(&self, per_shard: &[StoreStats]) -> StoreStats {
        let mut total = StoreStats::default();
        for (index, stats) in per_shard.iter().enumerate() {
            if index == 0 {
                // Device IO counters are environment-wide: every shard
                // shares one Env, so each reports identical store-wide
                // figures — summing would multiply them by the shard count.
                total.bytes_written = stats.bytes_written;
                total.bytes_read = stats.bytes_read;
            }
            total.user_bytes_written += stats.user_bytes_written;
            total.disk_bytes_live += stats.disk_bytes_live;
            total.num_files += stats.num_files;
            total.compactions += stats.compactions;
            total.flushes += stats.flushes;
            total.max_concurrent_compactions = total
                .max_concurrent_compactions
                .max(stats.max_concurrent_compactions);
            total.compaction_micros += stats.compaction_micros;
            total.compaction_bytes_read += stats.compaction_bytes_read;
            total.compaction_bytes_written += stats.compaction_bytes_written;
            total.memory_usage_bytes += stats.memory_usage_bytes;
            total.gets += stats.gets;
            total.seeks += stats.seeks;
            total.write_stalls += stats.write_stalls;
            total.write_stall_micros += stats.write_stall_micros;
            total.memtable_clones += stats.memtable_clones;
            total.block_cache_hits += stats.block_cache_hits;
            total.block_cache_misses += stats.block_cache_misses;
            total.table_cache_hits += stats.table_cache_hits;
            total.table_cache_misses += stats.table_cache_misses;
            total.num_column_families = total.num_column_families.max(stats.num_column_families);
        }
        total.num_shards = self.shard_count() as u64;
        total
    }

    fn sharded_engine_name(&self) -> String {
        format!(
            "{}[{} shards]",
            self.shards[0].engine_name(),
            self.shard_count()
        )
    }
}

impl<P: ShapePolicy> CfOps for ShardedCore<P> {
    fn cf_put_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.check_cf(cf)?;
        let shard = self.partitioner.shard_of(key, self.shard_count());
        let mut batch = WriteBatch::new();
        batch.put_cf(cf, key, value);
        self.write_single(shard, opts, batch)
    }

    fn cf_get_opts(&self, cf: CfId, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_cf(cf, opts, key)
    }

    fn cf_delete_opts(&self, cf: CfId, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.check_cf(cf)?;
        let shard = self.partitioner.shard_of(key, self.shard_count());
        let mut batch = WriteBatch::new();
        batch.delete_cf(cf, key);
        self.write_single(shard, opts, batch)
    }

    fn cf_write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.write_sharded(opts, batch)
    }

    fn cf_iter(&self, cf: CfId, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.iter_cf(cf, opts)
    }

    fn cf_snapshot(&self) -> Snapshot {
        self.composite_snapshot()
    }

    fn cf_flush(&self) -> Result<()> {
        self.flush_all()
    }

    fn cf_kv_stats(&self, cf: CfId) -> StoreStats {
        let per_shard: Vec<StoreStats> = self
            .shard_ops
            .iter()
            .map(|ops| ops.cf_kv_stats(cf))
            .collect();
        self.aggregate(&per_shard)
    }

    fn cf_live_file_sizes(&self, cf: CfId) -> Vec<u64> {
        self.shard_ops
            .iter()
            .flat_map(|ops| ops.cf_live_file_sizes(cf))
            .collect()
    }

    fn cf_engine_name(&self) -> String {
        self.sharded_engine_name()
    }
}

// ---------------------------------------------------------------------------
// The public handle
// ---------------------------------------------------------------------------

/// A [`Db`] hash- or range-partitioned across N independent engine
/// instances. See the crate docs for the commit protocol.
pub struct ShardedDb<P: ShapePolicy> {
    core: Arc<ShardedCore<P>>,
}

impl<P: ShapePolicy> ShardedDb<P> {
    /// Opens (creating if necessary) a sharded store at `path`, building
    /// each shard's policy with `make_policy`. A store can only be reopened
    /// with the shard count and partitioner it was created with (they are
    /// recorded in `shards.meta`).
    pub fn open_with(
        mut make_policy: impl FnMut(&StoreOptions) -> P,
        env: Arc<dyn pebblesdb_env::Env>,
        path: &Path,
        options: StoreOptions,
        config: ShardConfig,
    ) -> Result<ShardedDb<P>> {
        if config.shards == 0 || config.shards > MAX_SHARDS {
            return Err(Error::invalid_argument(format!(
                "shard count must be 1..={MAX_SHARDS}, got {}",
                config.shards
            )));
        }
        env.create_dir_all(path)?;
        match read_meta(env.as_ref(), path)? {
            Some(on_disk) => {
                if on_disk != config {
                    return Err(Error::invalid_argument(format!(
                        "store was created with {} {} shards; reopen asked for {} {}",
                        on_disk.shards,
                        on_disk.partitioner.name(),
                        config.shards,
                        config.partitioner.name(),
                    )));
                }
            }
            None => write_meta(env.as_ref(), path, &config)?,
        }

        let partitioner = config.partitioner.build();
        let mut shards = Vec::with_capacity(config.shards);
        for index in 0..config.shards {
            let policy = make_policy(&options);
            shards.push(EngineDb::open(
                policy,
                Arc::clone(&env),
                &path.join(format!("shard-{index}")),
                options.clone(),
            )?);
        }

        // Family sets can diverge across shards if a crash interrupted the
        // create/drop mirroring; shard 0 commits first both ways, so its
        // catalog is authoritative — drop strays, recreate stragglers.
        let authoritative = shards[0].list_cfs();
        for shard in &shards[1..] {
            for name in shard.list_cfs() {
                if !authoritative.contains(&name) {
                    shard.drop_cf(&name)?;
                }
            }
            for name in &authoritative {
                if shard.cf(name).is_none() {
                    shard.create_cf(name)?;
                }
            }
        }
        let mut cfs: BTreeMap<CfId, String> = BTreeMap::new();
        for name in &authoritative {
            let id = shards[0].cf(name).expect("listed family exists").id();
            for (index, shard) in shards.iter().enumerate().skip(1) {
                let shard_id = shard.cf(name).expect("healed above").id();
                if shard_id != id {
                    return Err(Error::corruption(format!(
                        "family {name:?} has id {id} on shard 0 but {shard_id} on shard {index}"
                    )));
                }
            }
            cfs.insert(id, name.clone());
        }

        let live: BTreeSet<CfId> = cfs.keys().copied().collect();
        replay_journals(&env, path, &shards, partitioner.as_ref(), &live)?;

        let last = shards
            .iter()
            .map(|shard| shard.last_sequence())
            .max()
            .unwrap_or(0);
        let journal = Journal::create(Arc::clone(&env), path.to_path_buf(), 1)?;
        let shard_ops = shards.iter().map(|shard| shard.cf_ops()).collect();
        Ok(ShardedDb {
            core: Arc::new(ShardedCore {
                shards,
                shard_ops,
                partitioner,
                config,
                next_seq: AtomicU64::new(last + 1),
                frontier: Mutex::new(SequenceFrontier {
                    visible: last,
                    pending: BTreeMap::new(),
                }),
                journal: Mutex::new(journal),
                cfs: Mutex::new(cfs),
                snapshots: SnapshotList::new(),
                bg_error: Mutex::new(None),
            }),
        })
    }

    /// The topology this store was opened with.
    pub fn config(&self) -> ShardConfig {
        self.core.config
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.core.shard_count()
    }

    /// The current visibility watermark (the sequence a fresh snapshot
    /// would pin). Exposed for tests and introspection.
    pub fn watermark(&self) -> SequenceNumber {
        self.core.watermark()
    }

    fn handle(&self, id: CfId, name: &str) -> ColumnFamilyHandle {
        ColumnFamilyHandle::new(Arc::clone(&self.core) as Arc<dyn CfOps>, id, name)
    }
}

impl<P: ShapePolicy> KvStore for ShardedDb<P> {
    fn put_opts(&self, opts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        self.core.cf_put_opts(0, opts, key, value)
    }

    fn get_opts(&self, opts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.get_cf(0, opts, key)
    }

    fn delete_opts(&self, opts: &WriteOptions, key: &[u8]) -> Result<()> {
        self.core.cf_delete_opts(0, opts, key)
    }

    fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        self.core.write_sharded(opts, batch)
    }

    fn iter(&self, opts: &ReadOptions) -> Result<Box<dyn DbIterator>> {
        self.core.iter_cf(0, opts)
    }

    fn snapshot(&self) -> Snapshot {
        self.core.composite_snapshot()
    }

    fn flush(&self) -> Result<()> {
        self.core.flush_all()
    }

    fn stats(&self) -> StoreStats {
        let per_shard: Vec<StoreStats> =
            self.core.shards.iter().map(|shard| shard.stats()).collect();
        self.core.aggregate(&per_shard)
    }

    fn engine_name(&self) -> String {
        self.core.sharded_engine_name()
    }

    fn live_file_sizes(&self) -> Vec<u64> {
        self.core
            .shards
            .iter()
            .flat_map(|shard| shard.live_file_sizes())
            .collect()
    }
}

impl<P: ShapePolicy> Db for ShardedDb<P> {
    fn create_cf(&self, name: &str) -> Result<ColumnFamilyHandle> {
        let mut cfs = self.core.cfs.lock();
        if cfs.values().any(|existing| existing == name) {
            return Err(Error::invalid_argument(format!(
                "column family {name:?} already exists"
            )));
        }
        // Mirror to every shard in shard order; ids stay identical because
        // every shard has seen the same creation history.
        let mut id: Option<CfId> = None;
        for (index, shard) in self.core.shards.iter().enumerate() {
            let handle = shard.create_cf(name)?;
            match id {
                None => id = Some(handle.id()),
                Some(expected) if expected == handle.id() => {}
                Some(expected) => {
                    return Err(Error::corruption(format!(
                        "family {name:?} got id {} on shard {index}, expected {expected}",
                        handle.id()
                    )));
                }
            }
        }
        let id = id.expect("at least one shard");
        cfs.insert(id, name.to_string());
        Ok(self.handle(id, name))
    }

    fn drop_cf(&self, name: &str) -> Result<()> {
        let mut cfs = self.core.cfs.lock();
        let id = cfs
            .iter()
            .find(|(_, existing)| existing.as_str() == name)
            .map(|(id, _)| *id)
            .ok_or_else(|| Error::invalid_argument(format!("no column family {name:?}")))?;
        for shard in &self.core.shards {
            shard.drop_cf(name)?;
        }
        cfs.remove(&id);
        Ok(())
    }

    fn list_cfs(&self) -> Vec<String> {
        self.core.cfs.lock().values().cloned().collect()
    }

    fn cf(&self, name: &str) -> Option<ColumnFamilyHandle> {
        let id = {
            let cfs = self.core.cfs.lock();
            cfs.iter()
                .find(|(_, existing)| existing.as_str() == name)
                .map(|(id, _)| *id)
        }?;
        Some(self.handle(id, name))
    }

    fn cf_stats(&self) -> Vec<CfStats> {
        // Sum each family's figures across shards, keyed by id.
        let mut merged: BTreeMap<CfId, CfStats> = BTreeMap::new();
        for shard in &self.core.shards {
            for stats in shard.cf_stats() {
                let entry = merged.entry(stats.id).or_insert_with(|| CfStats {
                    id: stats.id,
                    name: stats.name.clone(),
                    num_files: 0,
                    live_bytes: 0,
                    flushes: 0,
                    memtable_bytes: 0,
                });
                entry.num_files += stats.num_files;
                entry.live_bytes += stats.live_bytes;
                entry.flushes += stats.flushes;
                entry.memtable_bytes += stats.memtable_bytes;
            }
        }
        merged.into_values().collect()
    }

    fn shard_stats(&self) -> Vec<StoreStats> {
        self.core.shards.iter().map(|shard| shard.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_env::Env;

    #[test]
    fn frontier_publishes_only_contiguous_prefixes() {
        let mut frontier = SequenceFrontier {
            visible: 0,
            pending: BTreeMap::new(),
        };
        frontier.publish(4, 6); // out of order: waits
        assert_eq!(frontier.visible, 0);
        frontier.publish(1, 3); // fills the gap: both ranges go visible
        assert_eq!(frontier.visible, 6);
        frontier.publish(10, 10); // gap at 7..=9
        assert_eq!(frontier.visible, 6);
        frontier.publish(7, 9);
        assert_eq!(frontier.visible, 10);
        assert!(frontier.pending.is_empty());
    }

    #[test]
    fn meta_roundtrips_and_rejects_garbage() {
        let env = pebblesdb_env::MemEnv::new();
        let path = Path::new("/meta-test");
        env.create_dir_all(path).unwrap();
        assert_eq!(read_meta(&env, path).unwrap(), None);
        let config = ShardConfig {
            shards: 4,
            partitioner: PartitionerKind::Range,
        };
        write_meta(&env, path, &config).unwrap();
        assert_eq!(read_meta(&env, path).unwrap(), Some(config));

        env.write_string_to_file_sync(&path.join(SHARDS_META), b"shards=4\n")
            .unwrap();
        assert!(read_meta(&env, path).is_err(), "missing partitioner");
    }

    #[test]
    fn journal_names_roundtrip() {
        assert_eq!(parse_journal_name("journal-000007.log"), Some(7));
        assert_eq!(
            journal_file_name(Path::new("/db"), 7),
            PathBuf::from("/db/journal-000007.log")
        );
        assert_eq!(parse_journal_name("journal-x.log"), None);
        assert_eq!(parse_journal_name("000007.log"), None);
    }
}
