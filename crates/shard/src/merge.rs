//! A k-way merged cursor over per-shard user-key cursors.
//!
//! Each child is a full [`DbIterator`] over one shard's user keys, already
//! pinned at the same global sequence, so merging them by user key yields a
//! consistent whole-store cursor. The merge cannot reuse the engine's
//! internal-key `MergingIterator`: these children surface *user* keys (no
//! sequence suffix), and because the partitioner assigns every key to
//! exactly one shard the children's key sets are disjoint — no tie-breaking
//! is ever needed.
//!
//! Direction switching follows the LevelDB pattern: when a forward cursor is
//! asked to step backwards, every non-current child is repositioned to just
//! before the current key first (and vice versa), so `next`/`prev` stay
//! O(shards) comparisons without a heap — shard counts are small.

use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::Result;

#[derive(PartialEq, Eq, Clone, Copy)]
enum Direction {
    Forward,
    Reverse,
}

/// The merged user-key cursor over all shards of a sharded store.
pub struct ShardMergeIterator {
    children: Vec<Box<dyn DbIterator>>,
    current: Option<usize>,
    direction: Direction,
}

impl ShardMergeIterator {
    /// Merges `children` (one cursor per shard, all pinned at one sequence).
    pub fn new(children: Vec<Box<dyn DbIterator>>) -> ShardMergeIterator {
        ShardMergeIterator {
            children,
            current: None,
            direction: Direction::Forward,
        }
    }

    fn find_smallest(&mut self) {
        self.current = self
            .children
            .iter()
            .enumerate()
            .filter(|(_, child)| child.valid())
            .min_by(|(_, a), (_, b)| a.key().cmp(b.key()))
            .map(|(index, _)| index);
    }

    fn find_largest(&mut self) {
        self.current = self
            .children
            .iter()
            .enumerate()
            .filter(|(_, child)| child.valid())
            .max_by(|(_, a), (_, b)| a.key().cmp(b.key()))
            .map(|(index, _)| index);
    }
}

impl DbIterator for ShardMergeIterator {
    fn valid(&self) -> bool {
        self.current
            .is_some_and(|index| self.children[index].valid())
    }

    fn seek_to_first(&mut self) {
        for child in &mut self.children {
            child.seek_to_first();
        }
        self.direction = Direction::Forward;
        self.find_smallest();
    }

    fn seek_to_last(&mut self) {
        for child in &mut self.children {
            child.seek_to_last();
        }
        self.direction = Direction::Reverse;
        self.find_largest();
    }

    fn seek(&mut self, target: &[u8]) {
        for child in &mut self.children {
            child.seek(target);
        }
        self.direction = Direction::Forward;
        self.find_smallest();
    }

    fn next(&mut self) {
        assert!(self.valid(), "next() on invalid iterator");
        let current = self.current.expect("valid implies a current child");
        if self.direction == Direction::Reverse {
            // The non-current children sit at or before the current key;
            // bring each to the first key after it. Key sets are disjoint,
            // so a seek lands strictly past the key already (the equality
            // step guards a child that somehow shares it).
            let key = self.children[current].key().to_vec();
            for (index, child) in self.children.iter_mut().enumerate() {
                if index == current {
                    continue;
                }
                child.seek(&key);
                if child.valid() && child.key() == key.as_slice() {
                    child.next();
                }
            }
            self.direction = Direction::Forward;
        }
        self.children[current].next();
        self.find_smallest();
    }

    fn prev(&mut self) {
        assert!(self.valid(), "prev() on invalid iterator");
        let current = self.current.expect("valid implies a current child");
        if self.direction == Direction::Forward {
            // Bring every non-current child to the last key before the
            // current one.
            let key = self.children[current].key().to_vec();
            for (index, child) in self.children.iter_mut().enumerate() {
                if index == current {
                    continue;
                }
                child.seek(&key);
                if child.valid() {
                    child.prev();
                } else {
                    child.seek_to_last();
                }
            }
            self.direction = Direction::Reverse;
        }
        self.children[current].prev();
        self.find_largest();
    }

    fn key(&self) -> &[u8] {
        assert!(self.valid(), "key() on invalid iterator");
        self.children[self.current.expect("valid")].key()
    }

    fn value(&self) -> &[u8] {
        assert!(self.valid(), "value() on invalid iterator");
        self.children[self.current.expect("valid")].value()
    }

    fn status(&self) -> Result<()> {
        for child in &self.children {
            child.status()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::user_iter::UserEntriesIterator;

    fn entries(keys: &[&str]) -> Box<dyn DbIterator> {
        Box::new(UserEntriesIterator::new(
            keys.iter()
                .map(|k| (k.as_bytes().to_vec(), format!("v-{k}").into_bytes()))
                .collect(),
        ))
    }

    fn merged() -> ShardMergeIterator {
        // Disjoint key sets, interleaved in order — like hash shards.
        ShardMergeIterator::new(vec![
            entries(&["a", "d", "g"]),
            entries(&["b", "e"]),
            entries(&["c", "f", "h"]),
        ])
    }

    #[test]
    fn forward_scan_is_globally_sorted() {
        let mut iter = merged();
        iter.seek_to_first();
        let mut got = Vec::new();
        while iter.valid() {
            got.push(String::from_utf8(iter.key().to_vec()).unwrap());
            assert_eq!(
                iter.value(),
                format!("v-{}", got.last().unwrap()).as_bytes()
            );
            iter.next();
        }
        assert_eq!(got, ["a", "b", "c", "d", "e", "f", "g", "h"]);
    }

    #[test]
    fn reverse_scan_is_globally_sorted() {
        let mut iter = merged();
        iter.seek_to_last();
        let mut got = Vec::new();
        while iter.valid() {
            got.push(String::from_utf8(iter.key().to_vec()).unwrap());
            iter.prev();
        }
        assert_eq!(got, ["h", "g", "f", "e", "d", "c", "b", "a"]);
    }

    #[test]
    fn seek_lands_on_the_global_successor() {
        let mut iter = merged();
        iter.seek(b"d");
        assert_eq!(iter.key(), b"d");
        iter.seek(b"dd");
        assert_eq!(iter.key(), b"e");
        iter.seek(b"z");
        assert!(!iter.valid());
    }

    #[test]
    fn direction_switches_mid_stream() {
        let mut iter = merged();
        iter.seek(b"e");
        assert_eq!(iter.key(), b"e");
        iter.prev();
        assert_eq!(iter.key(), b"d", "forward -> reverse at e");
        iter.prev();
        assert_eq!(iter.key(), b"c");
        iter.next();
        assert_eq!(iter.key(), b"d", "reverse -> forward at c");
        iter.next();
        assert_eq!(iter.key(), b"e");
        // Flip repeatedly on the same key pair.
        iter.prev();
        iter.next();
        iter.prev();
        assert_eq!(iter.key(), b"d");
    }

    #[test]
    fn prev_from_first_key_invalidates() {
        let mut iter = merged();
        iter.seek_to_first();
        assert_eq!(iter.key(), b"a");
        iter.prev();
        assert!(!iter.valid());
    }

    #[test]
    fn empty_children_are_harmless() {
        let mut iter = ShardMergeIterator::new(vec![entries(&[]), entries(&["k"]), entries(&[])]);
        iter.seek_to_first();
        assert_eq!(iter.key(), b"k");
        iter.next();
        assert!(!iter.valid());
        iter.seek_to_last();
        assert_eq!(iter.key(), b"k");
    }
}
