//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API the workspace benches use —
//! `Criterion::bench_function`, `benchmark_group`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple fixed-iteration timer instead of criterion's statistical
//! machinery. Good enough to keep the benches compiling and runnable
//! without network access; swap in the real crate for publishable numbers.

use std::time::{Duration, Instant};

/// How a batched benchmark sizes its batches. Ignored by this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup cost.
    SmallInput,
    /// Large per-iteration setup cost.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Runs closures and measures their wall-clock time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Bencher {
            iterations,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` input per iteration; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the number of iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(iterations);
    f(&mut bencher);
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    println!("bench {name:<50} {per_iter:>12.3?} / iter ({iterations} iters)");
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(10);
        c.bench_function("shim/self_test", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 10);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("shim/batched", |b| {
            b.iter_batched(
                Vec::<u32>::new,
                |mut v| {
                    assert!(v.is_empty());
                    v.push(1);
                    v
                },
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 3);
    }
}
