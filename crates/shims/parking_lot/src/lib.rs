//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library synchronisation primitives behind the
//! `parking_lot` API the workspace uses: non-poisoning `lock()`, guards
//! without `Result`, `MutexGuard::unlocked`, and a `Condvar` that takes the
//! guard by mutable reference. Poisoned locks are treated as recovered — a
//! panicking thread already aborts the test that observed it.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            mutex: self,
            guard: ManuallyDrop::new(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    guard: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily releases the lock while running `f`, then re-acquires it.
    pub fn unlocked<F, U>(s: &mut Self, f: F) -> U
    where
        F: FnOnce() -> U,
    {
        /// Re-arms the outer guard on drop, so the re-lock happens on both
        /// the normal and the unwinding path — without it, a panic in `f`
        /// would leave the `ManuallyDrop` empty and the outer guard's
        /// `Drop` would double-drop the inner std guard.
        struct Relock<'a, 'g, T: ?Sized> {
            guard: &'g mut MutexGuard<'a, T>,
        }
        impl<T: ?Sized> Drop for Relock<'_, '_, T> {
            fn drop(&mut self) {
                self.guard.guard = ManuallyDrop::new(
                    self.guard
                        .mutex
                        .inner
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
        }

        // Safety: `Relock` re-initialises the guard before it can be
        // observed again, panic or not.
        unsafe {
            ManuallyDrop::drop(&mut s.guard);
        }
        let _relock = Relock { guard: s };
        f()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Safety: the inner guard is live except transiently inside
        // `unlocked`, which restores it before returning.
        unsafe {
            ManuallyDrop::drop(&mut self.guard);
        }
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety: the guard is replaced with the one returned by the wait.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.guard) };
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = ManuallyDrop::new(std_guard);
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// giving up after `timeout`. Spurious wakeups are possible either way;
    /// callers should re-check their condition (and their deadline) in a
    /// loop, as with [`Condvar::wait`].
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // Safety: the guard is replaced with the one returned by the wait.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.guard) };
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = ManuallyDrop::new(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

/// RAII guard for shared access to an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// RAII guard for exclusive access to an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut guard = m.lock();
        let other = Arc::clone(&m);
        MutexGuard::unlocked(&mut guard, move || {
            // The lock must be free here.
            *other.lock() = 7;
        });
        assert_eq!(*guard, 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let woken = Arc::new(AtomicUsize::new(0));
        let (pair2, woken2) = (Arc::clone(&pair), Arc::clone(&woken));
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            woken2.fetch_add(1, Ordering::SeqCst);
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        handle.join().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unlocked_relocks_when_the_closure_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let result = std::thread::spawn(move || {
            let mut guard = m2.lock();
            MutexGuard::unlocked(&mut guard, || panic!("boom"));
        })
        .join();
        assert!(result.is_err());
        // The mutex must be usable afterwards (no double drop, not held).
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
