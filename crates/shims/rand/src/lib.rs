//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so instead of the real
//! `rand` this small crate provides the exact API surface the workspace
//! uses: `StdRng` (a xoshiro256** generator), the `Rng`/`RngCore`/
//! `SeedableRng` traits, and `seq::SliceRandom::shuffle`. The generator is
//! deterministic for a given seed, which is all the benchmarks and tests
//! rely on; it makes no cryptographic claims.

/// A source of random 32/64-bit values. Object-safe, like `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy {
    /// Converts to the `u64` domain used for sampling.
    fn to_u64(self) -> u64;
    /// Converts back from the `u64` domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Half-open bounds `[low, high)` in the `u64` sampling domain.
    fn bounds_u64(&self) -> (u64, u64);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds_u64(&self) -> (u64, u64) {
        (self.start.to_u64(), self.end.to_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds_u64(&self) -> (u64, u64) {
        (self.start().to_u64(), self.end().to_u64().saturating_add(1))
    }
}

/// Convenience sampling methods, like `rand::Rng`.
///
/// Implemented for every `RngCore`, including `dyn RngCore`.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (low, high) = range.bounds_u64();
        assert!(low < high, "gen_range called with an empty range");
        let span = high - low;
        // Multiply-shift mapping of a 64-bit draw onto [0, span); the bias is
        // at most span/2^64, far below anything the workloads can observe.
        let draw = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(low + draw)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio with zero denominator");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3usize);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ratio_is_roughly_honoured() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((1500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..100u64);
        assert!(v < 100);
    }
}
