//! Leader-side replication streaming: the `SYNC` verb's second half.
//!
//! After the dispatcher acknowledges `SYNC <from_seq>`, the connection
//! layer hands the socket here and the conversation inverts: the server
//! pushes [`ReplicationFrame`]s and the follower only reads. The stream
//! opens with the column-family catalog (creates and drops do not ride the
//! WAL), then ships every committed batch with `last_seq >= from_seq` in
//! commit order, interleaving keep-alive pings while idle so the follower
//! can track the leader's frontier — and so a dead peer is noticed by the
//! failed write rather than hanging the stream forever.
//!
//! Termination is always in-band: a reclaimed cursor sends a `TRUNCATED`
//! frame (fatal for the cursor — the follower must re-seed), any other
//! stream failure an `-ERR` reply, and server shutdown simply closes the
//! socket (the follower resumes from its durable applied sequence).

use std::collections::HashSet;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use pebblesdb_common::replication::poll_interval;
use pebblesdb_common::resp::RespValue;
use pebblesdb_common::{CfId, Db, Error, ReplicationFrame, SequenceNumber, WriteBatch};

use crate::connection::{write_reply, ConnShared};

/// Streams replication frames over `stream` until the peer disconnects, the
/// cursor's history is truncated, the stream fails, or the server shuts
/// down. The `+OK` for the `SYNC` command has already been flushed.
pub(crate) fn serve_sync(
    stream: &mut TcpStream,
    db: &Arc<dyn Db>,
    from_seq: SequenceNumber,
    shared: &ConnShared,
) {
    let mut advertised: HashSet<CfId> = HashSet::new();
    if !send_catalog(stream, db, &mut advertised, shared) {
        return;
    }
    let mut changes = match db.stream(from_seq) {
        Ok(changes) => changes,
        Err(err) => {
            send_failure(stream, &err, shared);
            return;
        }
    };
    loop {
        if shared.kill.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match changes.next_event(poll_interval()) {
            Ok(Some(event)) => {
                // Re-advertise the catalog before any batch that references
                // a family the follower has not been told about.
                if has_unseen_cf(&event.batch, &advertised)
                    && !send_catalog(stream, db, &mut advertised, shared)
                {
                    return;
                }
                // A family dropped on the leader can still appear in older
                // batches; mark its id seen so one drop does not re-send the
                // catalog for every batch that follows.
                for record in event.batch.iter().flatten() {
                    advertised.insert(record.cf);
                }
                let frame = ReplicationFrame::Batch {
                    last_seq: event.last_seq,
                    backlog: changes.backlog(),
                    contents: event.batch.contents().to_vec(),
                };
                if !send_frame(stream, &frame, shared) {
                    return;
                }
            }
            Ok(None) => {
                let frame = ReplicationFrame::Ping {
                    last_seq: db.committed_sequence(),
                    backlog: changes.backlog(),
                };
                if !send_frame(stream, &frame, shared) {
                    return;
                }
            }
            Err(err) => {
                send_failure(stream, &err, shared);
                return;
            }
        }
    }
}

/// Sends the current catalog, recording every advertised family id.
/// Returns `false` when the connection is gone.
fn send_catalog(
    stream: &mut TcpStream,
    db: &Arc<dyn Db>,
    advertised: &mut HashSet<CfId>,
    shared: &ConnShared,
) -> bool {
    let cfs: Vec<(CfId, String)> = db
        .cf_stats()
        .iter()
        .map(|cf| (cf.id, cf.name.clone()))
        .collect();
    for (id, _) in &cfs {
        advertised.insert(*id);
    }
    send_frame(stream, &ReplicationFrame::Catalog(cfs), shared)
}

/// Whether `batch` routes any record to a family id not yet advertised.
fn has_unseen_cf(batch: &WriteBatch, advertised: &HashSet<CfId>) -> bool {
    batch
        .iter()
        .flatten()
        .any(|record| !advertised.contains(&record.cf))
}

/// Terminal in-band report: `TRUNCATED` for a reclaimed cursor, `-ERR`
/// otherwise. Delivery is best-effort — the stream is over either way.
fn send_failure(stream: &mut TcpStream, err: &Error, shared: &ConnShared) {
    let value = if let Error::SequenceTruncated { floor, .. } = err {
        ReplicationFrame::Truncated { floor: *floor }.encode()
    } else {
        RespValue::error(format!("ERR {err}"))
    };
    let mut bytes = Vec::new();
    value.encode_into(&mut bytes);
    let _ = write_reply(stream, &bytes, shared);
}

fn send_frame(stream: &mut TcpStream, frame: &ReplicationFrame, shared: &ConnShared) -> bool {
    let mut bytes = Vec::new();
    frame.encode().encode_into(&mut bytes);
    write_reply(stream, &bytes, shared)
}
