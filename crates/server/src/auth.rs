//! Pluggable authentication for the network front-end.
//!
//! The server itself only knows the *hook*: when a [`AuthProvider`] is
//! configured, every connection starts unauthenticated and all commands
//! except `AUTH`, `PING` and `QUIT` are denied until a credential is
//! accepted — deny-by-default. With no provider configured the server is
//! open (the embedded-store trust model, for local benchmarking).

/// Validates client credentials presented via the `AUTH` command.
pub trait AuthProvider: Send + Sync {
    /// Returns `true` if `credential` grants access.
    fn authenticate(&self, credential: &[u8]) -> bool;
}

/// The simplest provider: one shared static token (a `requirepass`-style
/// deployment secret).
pub struct StaticTokenAuth {
    token: Vec<u8>,
}

impl StaticTokenAuth {
    /// Creates a provider accepting exactly `token`.
    pub fn new(token: impl Into<Vec<u8>>) -> StaticTokenAuth {
        StaticTokenAuth {
            token: token.into(),
        }
    }
}

impl AuthProvider for StaticTokenAuth {
    fn authenticate(&self, credential: &[u8]) -> bool {
        // Constant-time comparison: always fold over the full stored token
        // so rejection latency does not leak the matching prefix length.
        if credential.len() != self.token.len() {
            return false;
        }
        credential
            .iter()
            .zip(self.token.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_token_matches_exactly() {
        let auth = StaticTokenAuth::new("sesame");
        assert!(auth.authenticate(b"sesame"));
        assert!(!auth.authenticate(b"sesam"));
        assert!(!auth.authenticate(b"sesame "));
        assert!(!auth.authenticate(b""));
        assert!(!auth.authenticate(b"SESAME"));
    }
}
