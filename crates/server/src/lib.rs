//! `pebblesdb-server`: a RESP network front-end for any [`Db`].
//!
//! The crate turns the workspace's embedded stores into a networked
//! key-value service, in layers that mirror the module layout:
//!
//! - [`pebblesdb_common::resp`] — the wire codec (shared with the bench
//!   client, so both ends speak from one implementation);
//! - [`connection`] (private) — accept loop, thread-per-connection reads
//!   with idle timeouts, bounded pipelining, graceful-drain shutdown;
//! - [`dispatch`] — the command surface (`GET`/`SET`/`DEL`/`SCAN` pages,
//!   `MULTI`/`EXEC` cross-family batches, `SELECT`, `INFO`, and the `SYNC`
//!   verb that hands a connection to the replication streamer);
//! - [`rate_limit`] + [`auth`] — per-client token buckets (`BUSY`
//!   backpressure, never disconnects) and a deny-by-default credential hook;
//! - [`metrics`] — server counters plus the shared store/family stat fields,
//!   rendered by `INFO` and by a Prometheus text endpoint on a side
//!   listener.
//!
//! ```no_run
//! use std::sync::Arc;
//! use pebblesdb_server::{RespClient, Server, ServerConfig};
//!
//! let env: Arc<dyn pebblesdb_env::Env> = Arc::new(pebblesdb_env::MemEnv::new());
//! let db = Arc::new(pebblesdb::PebblesDb::open(env, std::path::Path::new("/db")).unwrap());
//! let server = Server::start(db, ServerConfig::default()).unwrap();
//!
//! let mut client = RespClient::connect(server.local_addr()).unwrap();
//! client.command(&[b"SET", b"key", b"value"]).unwrap();
//! server.shutdown();
//! ```

pub mod auth;
pub mod client;
mod connection;
pub mod dispatch;
pub mod metrics;
pub mod rate_limit;
mod replicate;

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use pebblesdb_common::resp::{RespLimits, RespValue};
use pebblesdb_common::Db;

pub use auth::{AuthProvider, StaticTokenAuth};
pub use client::RespClient;
pub use dispatch::{Session, SessionOptions};
pub use metrics::{render_prometheus, ServerCounters};
pub use rate_limit::{RateLimit, TokenBucket};

use connection::ConnShared;
use dispatch::Session as DispatchSession;

/// Everything configurable about a [`Server`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Address to listen on; port `0` picks an ephemeral port.
    pub addr: String,
    /// Side listener for Prometheus metrics; `None` disables it.
    pub metrics_addr: Option<String>,
    /// Concurrent-connection cap; excess connects get an error reply and
    /// are closed.
    pub max_connections: usize,
    /// Connections idle longer than this are closed (with an error reply).
    pub idle_timeout: Duration,
    /// Commands answered per reply flush; bounds the in-flight pipeline.
    pub max_pipeline: usize,
    /// Per-connection rate limit; `None` means unlimited.
    pub rate_limit: Option<RateLimit>,
    /// Credential hook; `Some` makes the server deny-by-default.
    pub auth: Option<Arc<dyn AuthProvider>>,
    /// Frame-size bounds for the decoder.
    pub limits: RespLimits,
    /// Dispatcher knobs (scan page caps, sync writes).
    pub session: SessionOptions,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            max_connections: 256,
            idle_timeout: Duration::from_secs(300),
            max_pipeline: 128,
            rate_limit: None,
            auth: None,
            limits: RespLimits::default(),
            session: SessionOptions::default(),
        }
    }
}

/// A running server: an accept thread, one thread per connection, and an
/// optional metrics thread. Dropping it performs a graceful [`Server::stop`].
pub struct Server {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept_handle: Option<JoinHandle<()>>,
    metrics_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener(s) and spawns the accept loop over `db`.
    pub fn start(db: Arc<dyn Db>, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerCounters::default());
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));

        let (metrics_addr, metrics_handle) = match &config.metrics_addr {
            Some(addr) => {
                let metrics_listener = TcpListener::bind(addr)?;
                let metrics_addr = metrics_listener.local_addr()?;
                let counters = Arc::clone(&counters);
                let db = Arc::clone(&db);
                let shutdown = Arc::clone(&shutdown);
                let handle = std::thread::Builder::new()
                    .name("pebblesdb-metrics".to_string())
                    .spawn(move || metrics::serve_metrics(metrics_listener, counters, db, shutdown))
                    .expect("spawn metrics thread");
                (Some(metrics_addr), Some(handle))
            }
            None => (None, None),
        };

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let kill = Arc::clone(&kill);
            let counters = Arc::clone(&counters);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("pebblesdb-accept".to_string())
                .spawn(move || accept_loop(listener, db, config, shutdown, kill, counters, conns))
                .expect("spawn accept thread")
        };

        Ok(Server {
            local_addr,
            metrics_addr,
            shutdown,
            kill,
            counters,
            conns,
            accept_handle: Some(accept_handle),
            metrics_handle,
        })
    }

    /// The address the command listener bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The address of the metrics listener, if one was configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The server-layer counters (shared with `INFO` and `/metrics`).
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.counters)
    }

    /// Graceful shutdown: stop accepting, let every connection drain its
    /// in-flight commands and flush replies, join all threads. The caller
    /// keeps the `Arc<dyn Db>`, so the store can be closed (or reopened)
    /// after this returns with no command still running.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Abrupt termination for crash testing: severs every client socket
    /// without draining, so commands in flight are lost exactly as they
    /// would be if the process died.
    pub fn kill(mut self) {
        self.kill.store(true, Ordering::Release);
        for (_, stream) in self.conns.lock().iter() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.metrics_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    db: Arc<dyn Db>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id: u64 = 0;
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                handles.retain(|h| !h.is_finished());
                if conns.lock().len() >= config.max_connections {
                    counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().insert(id, clone);
                }
                let session = DispatchSession::new(
                    Arc::clone(&db),
                    Arc::clone(&counters),
                    config.auth.clone(),
                    config.rate_limit.map(TokenBucket::new),
                    config.session.clone(),
                );
                let shared = ConnShared {
                    shutdown: Arc::clone(&shutdown),
                    kill: Arc::clone(&kill),
                    counters: Arc::clone(&counters),
                    idle_timeout: config.idle_timeout,
                    max_pipeline: config.max_pipeline.max(1),
                    limits: config.limits.clone(),
                };
                let conns = Arc::clone(&conns);
                let counters = Arc::clone(&counters);
                let handle = std::thread::Builder::new()
                    .name(format!("pebblesdb-conn-{id}"))
                    .spawn(move || {
                        connection::serve_connection(stream, session, &shared);
                        conns.lock().remove(&id);
                        counters.connections_closed.fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                handles.push(handle);
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

/// Tells an over-cap client why it is being turned away, then closes.
fn refuse(mut stream: TcpStream) {
    use std::io::Write;
    let mut reply = Vec::new();
    RespValue::error("ERR max connections reached").encode_into(&mut reply);
    let _ = stream.write_all(&reply);
}
