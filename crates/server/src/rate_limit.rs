//! Per-client token-bucket rate limiting.
//!
//! Every connection owns one bucket; each command costs one token. When the
//! bucket is empty the dispatcher replies with a `BUSY` *error* and keeps the
//! connection open — backpressure, not punishment — so a well-behaved client
//! can back off and retry without paying a reconnect (and without losing its
//! selected column family or transaction state).

use std::time::Instant;

/// Rate-limit parameters, per connection.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Sustained command rate (tokens refilled per second).
    pub ops_per_sec: f64,
    /// Burst allowance (bucket capacity).
    pub burst: f64,
}

/// A classic token bucket: `burst` capacity, `ops_per_sec` refill.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// Creates a full bucket.
    pub fn new(limit: RateLimit) -> TokenBucket {
        let capacity = limit.burst.max(1.0);
        TokenBucket {
            capacity,
            refill_per_sec: limit.ops_per_sec.max(0.0),
            tokens: capacity,
            last_refill: Instant::now(),
        }
    }

    /// Takes `cost` tokens if available, refilling for elapsed time first.
    pub fn try_acquire(&mut self, cost: f64) -> bool {
        self.try_acquire_at(cost, Instant::now())
    }

    /// [`TokenBucket::try_acquire`] with an injected clock, for tests.
    pub fn try_acquire_at(&mut self, cost: f64, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens =
            (self.tokens + elapsed.as_secs_f64() * self.refill_per_sec).min(self.capacity);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_is_granted_then_rate_enforced() {
        let mut bucket = TokenBucket::new(RateLimit {
            ops_per_sec: 10.0,
            burst: 5.0,
        });
        let t0 = Instant::now();
        // The full burst is available immediately.
        for _ in 0..5 {
            assert!(bucket.try_acquire_at(1.0, t0));
        }
        // The sixth command in the same instant is rejected.
        assert!(!bucket.try_acquire_at(1.0, t0));
        // 100 ms later one token (10/s) has been refilled.
        let t1 = t0 + Duration::from_millis(100);
        assert!(bucket.try_acquire_at(1.0, t1));
        assert!(!bucket.try_acquire_at(1.0, t1));
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let mut bucket = TokenBucket::new(RateLimit {
            ops_per_sec: 1000.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        assert!(bucket.try_acquire_at(1.0, t0));
        // A long idle period refills to the cap, not beyond it.
        let t1 = t0 + Duration::from_secs(60);
        assert!(bucket.try_acquire_at(1.0, t1));
        assert!(bucket.try_acquire_at(1.0, t1));
        assert!(!bucket.try_acquire_at(1.0, t1));
    }
}
