//! The per-connection read loop.
//!
//! One thread per connection (the workspace has no async runtime — and a
//! storage server's connection counts are small enough that threads are the
//! simpler, debuggable choice). The loop polls the socket with a short read
//! timeout so it can notice the server-wide shutdown and kill flags between
//! reads, feeds bytes into a resumable [`RespCodec`], and answers complete
//! frames in bounded pipeline batches.
//!
//! Shutdown semantics:
//! - *graceful* (`shutdown` flag): drain whatever complete frames are
//!   already buffered or sitting in the socket, flush their replies, then
//!   close — in-flight commands finish, new bytes after the drain are
//!   abandoned.
//! - *kill* (`kill` flag): return immediately without draining; the crash
//!   tests use this to model a server process dying mid-write.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pebblesdb_common::resp::{RespCodec, RespLimits, RespValue};

use crate::dispatch::Session;
use crate::metrics::ServerCounters;

/// Shared state the connection loop needs from the server.
pub(crate) struct ConnShared {
    pub shutdown: Arc<AtomicBool>,
    pub kill: Arc<AtomicBool>,
    pub counters: Arc<ServerCounters>,
    pub idle_timeout: Duration,
    pub max_pipeline: usize,
    pub limits: RespLimits,
}

/// Outcome of handling buffered frames: keep serving or close.
enum Flow {
    Continue,
    Close,
}

/// Runs one connection to completion. Returns when the peer disconnects, a
/// protocol violation closes the connection, the session requests close
/// (`QUIT`), the idle timeout fires, or the server shuts down.
pub(crate) fn serve_connection(mut stream: TcpStream, mut session: Session, shared: &ConnShared) {
    // A short poll interval, not a real deadline: the loop must keep
    // noticing the shutdown/kill flags even on an idle socket.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);

    let mut codec = RespCodec::new(shared.limits.clone());
    let mut read_buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();

    loop {
        if shared.kill.load(Ordering::Acquire) {
            return;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            drain_and_close(&mut stream, &mut codec, &mut session, shared);
            return;
        }
        match stream.read(&mut read_buf) {
            Ok(0) => return,
            Ok(n) => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                codec.feed(&read_buf[..n]);
                last_activity = Instant::now();
                match answer_ready_frames(&mut stream, &mut codec, &mut session, shared) {
                    Flow::Continue => {}
                    Flow::Close => return,
                }
            }
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if last_activity.elapsed() >= shared.idle_timeout {
                    let mut reply = Vec::new();
                    RespValue::error("ERR idle timeout, closing connection")
                        .encode_into(&mut reply);
                    write_reply(&mut stream, &reply, shared);
                    return;
                }
            }
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Executes every complete frame currently buffered, flushing replies every
/// `max_pipeline` commands so a deep pipeline cannot build an unbounded
/// reply buffer.
fn answer_ready_frames(
    stream: &mut TcpStream,
    codec: &mut RespCodec,
    session: &mut Session,
    shared: &ConnShared,
) -> Flow {
    let mut replies = Vec::new();
    let mut in_flight = 0usize;
    loop {
        match codec.next_frame() {
            Ok(Some(frame)) => {
                let reply = match frame.into_command() {
                    Ok(args) => session.execute(args),
                    Err(err) => {
                        // A frame that decoded but is not a command array is
                        // a protocol violation: reply, then close.
                        shared
                            .counters
                            .protocol_errors
                            .fetch_add(1, Ordering::Relaxed);
                        RespValue::error(format!("ERR {err}")).encode_into(&mut replies);
                        write_reply(stream, &replies, shared);
                        return Flow::Close;
                    }
                };
                reply.encode_into(&mut replies);
                if session.close_requested() {
                    write_reply(stream, &replies, shared);
                    return Flow::Close;
                }
                // An acknowledged `SYNC` inverts the connection: flush the
                // `+OK` (and anything pipelined before it), then the socket
                // becomes a one-way replication stream until it closes.
                // Commands pipelined *after* SYNC are never executed.
                if let Some(from_seq) = session.take_pending_sync() {
                    if !write_reply(stream, &replies, shared) {
                        return Flow::Close;
                    }
                    crate::replicate::serve_sync(stream, session.db(), from_seq, shared);
                    return Flow::Close;
                }
                in_flight += 1;
                if in_flight >= shared.max_pipeline {
                    if !write_reply(stream, &replies, shared) {
                        return Flow::Close;
                    }
                    replies.clear();
                    in_flight = 0;
                }
            }
            Ok(None) => break,
            Err(err) => {
                // Framing is unrecoverable mid-stream: error reply, close.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                RespValue::error(format!("ERR {err}")).encode_into(&mut replies);
                write_reply(stream, &replies, shared);
                return Flow::Close;
            }
        }
    }
    if !replies.is_empty() && !write_reply(stream, &replies, shared) {
        return Flow::Close;
    }
    Flow::Continue
}

/// Graceful-shutdown drain: pull whatever bytes are already in the socket,
/// answer the complete frames, flush, close.
fn drain_and_close(
    stream: &mut TcpStream,
    codec: &mut RespCodec,
    session: &mut Session,
    shared: &ConnShared,
) {
    let _ = stream.set_nonblocking(true);
    let mut read_buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut read_buf) {
            Ok(0) => break,
            Ok(n) => {
                shared
                    .counters
                    .bytes_in
                    .fetch_add(n as u64, Ordering::Relaxed);
                codec.feed(&read_buf[..n]);
            }
            Err(err) if err.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    match answer_ready_frames(stream, codec, session, shared) {
        Flow::Continue => {
            let mut farewell = Vec::new();
            RespValue::error("ERR server shutting down").encode_into(&mut farewell);
            if !write_reply(stream, &farewell, shared) {
                shared
                    .counters
                    .shutdown_drain_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        // The client asked to close (`QUIT`) while we drained: its reply was
        // delivered and the close is clean, not a failed drain.
        Flow::Close if session.close_requested() => {}
        // The socket died (or framing broke) mid-drain: in-flight replies
        // were lost and a farewell would go into a dead pipe. Skip it and
        // record the failed drain instead of pretending it completed.
        Flow::Close => {
            shared
                .counters
                .shutdown_drain_failures
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Writes a buffered reply batch; `false` means the connection is gone.
pub(crate) fn write_reply(stream: &mut TcpStream, bytes: &[u8], shared: &ConnShared) -> bool {
    if bytes.is_empty() {
        return true;
    }
    match stream.write_all(bytes).and_then(|()| stream.flush()) {
        Ok(()) => {
            shared
                .counters
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}
