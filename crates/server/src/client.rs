//! A small blocking RESP client.
//!
//! Shares the codec with the server, so the bench client and the
//! integration tests exercise the same framing code the server trusts.
//! Supports both request/reply ([`RespClient::command`]) and explicit
//! pipelining ([`RespClient::send`] + [`RespClient::read_reply`]).

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pebblesdb_common::resp::{RespCodec, RespLimits, RespValue};

/// One blocking connection to a `pebblesdb-server`.
pub struct RespClient {
    stream: TcpStream,
    codec: RespCodec,
    read_buf: Vec<u8>,
}

impl RespClient {
    /// Connects and prepares a codec with default limits.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<RespClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RespClient {
            stream,
            codec: RespCodec::new(RespLimits::default()),
            read_buf: vec![0u8; 16 * 1024],
        })
    }

    /// Sets a read timeout for replies (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one command without waiting for the reply (pipelining).
    pub fn send(&mut self, args: &[&[u8]]) -> io::Result<()> {
        let frame = RespValue::command(args).encode();
        self.stream.write_all(&frame)
    }

    /// Reads the next reply frame.
    pub fn read_reply(&mut self) -> io::Result<RespValue> {
        loop {
            match self.codec.next_frame() {
                Ok(Some(frame)) => return Ok(frame),
                Ok(None) => {}
                Err(err) => return Err(io::Error::new(ErrorKind::InvalidData, err.to_string())),
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.codec.feed(&self.read_buf[..n]);
        }
    }

    /// Sends one command and waits for its reply.
    pub fn command(&mut self, args: &[&[u8]]) -> io::Result<RespValue> {
        self.send(args)?;
        self.read_reply()
    }

    /// [`RespClient::command`], but any error *reply* becomes an `Err` too —
    /// for call sites that treat `-ERR`/`-BUSY` as failures.
    pub fn command_ok(&mut self, args: &[&[u8]]) -> io::Result<RespValue> {
        match self.command(args)? {
            RespValue::Error(msg) => Err(io::Error::other(msg)),
            reply => Ok(reply),
        }
    }
}
