//! The `pebblesdb-server` binary: serve a store over RESP.
//!
//! ```text
//! pebblesdb-server --addr 127.0.0.1:6380 --db /tmp/pdb \
//!     --metrics-addr 127.0.0.1:9181 --auth-token sesame \
//!     --rate-limit 50000 --burst 1000
//! ```
//!
//! `--mem` serves an in-memory store (optionally with `--write-latency-us`
//! injected per-sstable-write, the single-core benchmarking caveat from the
//! roadmap); otherwise `--db PATH` serves a disk store. `--engine lsm`
//! swaps in the degenerate-guard LSM instead of the FLSM.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use pebblesdb_common::{Args, Db};
use pebblesdb_env::{DiskEnv, Env, MemEnv};
use pebblesdb_server::{RateLimit, Server, ServerConfig, StaticTokenAuth};

const USAGE: &str = "pebblesdb-server [options]
  --addr HOST:PORT          listen address (default 127.0.0.1:6380)
  --metrics-addr HOST:PORT  Prometheus text endpoint (disabled by default)
  --db PATH                 serve a disk store rooted at PATH
  --mem                     serve an in-memory store (default when no --db)
  --engine NAME             pebbles | lsm (default pebbles)
  --auth-token TOKEN        require AUTH TOKEN before any command
  --rate-limit OPS          per-connection sustained ops/sec (0 = unlimited)
  --burst OPS               per-connection burst allowance (default rate/10)
  --max-connections N       concurrent connection cap (default 256)
  --idle-timeout-ms MS      close idle connections (default 300000)
  --sync                    fsync every acknowledged write
  --write-latency-us US     with --mem: inject latency per sstable write
  --help                    print this help";

fn main() {
    let args = Args::parse();
    if args.has_flag("help") {
        println!("{USAGE}");
        return;
    }

    let engine = args.get_str("engine", "pebbles");
    let db_path = args.get_str("db", "");
    let use_mem = args.has_flag("mem") || db_path.is_empty();

    let (env, mem): (Arc<dyn Env>, Option<Arc<MemEnv>>) = if use_mem {
        let mem = Arc::new(MemEnv::new());
        (mem.clone(), Some(mem))
    } else {
        (Arc::new(DiskEnv::new()), None)
    };
    if let Some(mem) = &mem {
        let write_latency_us = args.get_u64("write-latency-us", 0);
        if write_latency_us > 0 {
            mem.set_write_latency_micros_for(".sst", write_latency_us);
        }
    }
    let path_str = if use_mem {
        "/pebblesdb-server".to_string()
    } else {
        db_path
    };
    let path = Path::new(&path_str);

    let db: Arc<dyn Db> = match engine.as_str() {
        "pebbles" => Arc::new(pebblesdb::PebblesDb::open(env, path).unwrap_or_else(|err| {
            eprintln!("error: cannot open pebbles store at {path_str}: {err}");
            std::process::exit(1);
        })),
        "lsm" => Arc::new(pebblesdb_lsm::LsmDb::open(env, path).unwrap_or_else(|err| {
            eprintln!("error: cannot open lsm store at {path_str}: {err}");
            std::process::exit(1);
        })),
        other => {
            eprintln!("error: unknown engine {other:?} (expected pebbles or lsm)");
            std::process::exit(2);
        }
    };

    let rate = args.get_u64("rate-limit", 0);
    let mut config = ServerConfig {
        addr: args.get_str("addr", "127.0.0.1:6380"),
        max_connections: args.get_u64("max-connections", 256) as usize,
        idle_timeout: Duration::from_millis(args.get_u64("idle-timeout-ms", 300_000)),
        ..ServerConfig::default()
    };
    config.session.sync_writes = args.has_flag("sync");
    let metrics = args.get_str("metrics-addr", "");
    if !metrics.is_empty() {
        config.metrics_addr = Some(metrics);
    }
    if rate > 0 {
        config.rate_limit = Some(RateLimit {
            ops_per_sec: rate as f64,
            burst: args.get_u64("burst", (rate / 10).max(1)) as f64,
        });
    }
    let token = args.get_str("auth-token", "");
    if !token.is_empty() {
        config.auth = Some(Arc::new(StaticTokenAuth::new(token)));
    }

    let server = Server::start(db, config).unwrap_or_else(|err| {
        eprintln!("error: cannot start server: {err}");
        std::process::exit(1);
    });
    println!("pebblesdb-server listening on {}", server.local_addr());
    if let Some(addr) = server.metrics_addr() {
        println!("metrics on http://{addr}/metrics");
    }

    // Serve until the process is terminated; the accept thread owns the
    // actual work, this thread just keeps the server alive.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
