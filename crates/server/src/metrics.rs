//! Server counters and the Prometheus text endpoint.
//!
//! The counter *names* come from one place: [`ServerCounters::fields`] here
//! and [`pebblesdb_common::stats_text`] for the store/per-family counters.
//! The `INFO` command and this module's Prometheus rendering both iterate
//! those lists, so a counter added in one surface cannot silently be missing
//! from the other.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pebblesdb_common::stats_text::{cf_stat_fields, store_stat_fields, StatField, StatUnit};
use pebblesdb_common::Db;

/// Monotonic counters of the serving layer (the store's own counters live in
/// [`pebblesdb_common::StoreStats`]).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted by the listener.
    pub connections_accepted: AtomicU64,
    /// Connections that have terminated (any reason).
    pub connections_closed: AtomicU64,
    /// Connections refused because the connection cap was reached.
    pub connections_rejected: AtomicU64,
    /// Commands executed (including ones that returned an error reply).
    pub commands: AtomicU64,
    /// Commands rejected with `BUSY` by the per-client rate limiter.
    pub rate_limited: AtomicU64,
    /// Failed `AUTH` attempts.
    pub auth_failures: AtomicU64,
    /// Connections closed because of a RESP framing violation.
    pub protocol_errors: AtomicU64,
    /// Graceful-shutdown drains that could not deliver their in-flight
    /// replies or farewell because the peer was already gone.
    pub shutdown_drain_failures: AtomicU64,
    /// Raw bytes received from clients.
    pub bytes_in: AtomicU64,
    /// Raw bytes sent to clients.
    pub bytes_out: AtomicU64,
}

impl ServerCounters {
    /// The counters as the shared field list (the `INFO` command and the
    /// Prometheus endpoint render exactly these).
    pub fn fields(&self) -> Vec<StatField> {
        let accepted = self.connections_accepted.load(Ordering::Relaxed);
        let closed = self.connections_closed.load(Ordering::Relaxed);
        let field = |name, value, unit| StatField { name, value, unit };
        vec![
            field(
                "connections_open",
                accepted.saturating_sub(closed),
                StatUnit::Count,
            ),
            field("connections_accepted", accepted, StatUnit::Count),
            field("connections_closed", closed, StatUnit::Count),
            field(
                "connections_rejected",
                self.connections_rejected.load(Ordering::Relaxed),
                StatUnit::Count,
            ),
            field(
                "commands",
                self.commands.load(Ordering::Relaxed),
                StatUnit::Count,
            ),
            field(
                "rate_limited",
                self.rate_limited.load(Ordering::Relaxed),
                StatUnit::Count,
            ),
            field(
                "auth_failures",
                self.auth_failures.load(Ordering::Relaxed),
                StatUnit::Count,
            ),
            field(
                "protocol_errors",
                self.protocol_errors.load(Ordering::Relaxed),
                StatUnit::Count,
            ),
            field(
                "shutdown_drain_failures",
                self.shutdown_drain_failures.load(Ordering::Relaxed),
                StatUnit::Count,
            ),
            field(
                "bytes_in",
                self.bytes_in.load(Ordering::Relaxed),
                StatUnit::Bytes,
            ),
            field(
                "bytes_out",
                self.bytes_out.load(Ordering::Relaxed),
                StatUnit::Bytes,
            ),
        ]
    }
}

/// Renders every server, store and per-family counter in the Prometheus
/// text exposition format.
pub fn render_prometheus(counters: &ServerCounters, db: &dyn Db) -> String {
    let mut out = String::new();
    let mut gauge = |name: &str, labels: &str, value: u64| {
        out.push_str(&format!("# TYPE {name} gauge\n{name}{labels} {value}\n"));
    };
    for field in counters.fields() {
        gauge(&format!("pebblesdb_server_{}", field.name), "", field.value);
    }
    for field in store_stat_fields(&db.stats()) {
        gauge(&format!("pebblesdb_store_{}", field.name), "", field.value);
    }
    for cf in db.cf_stats() {
        for field in cf_stat_fields(&cf) {
            gauge(
                &format!("pebblesdb_cf_{}", field.name),
                &format!("{{cf=\"{}\"}}", cf.name),
                field.value,
            );
        }
    }
    // Per-shard breakdown of a sharded store, same field list as the
    // aggregate `pebblesdb_store_*` gauges; empty for unsharded stores.
    for (index, stats) in db.shard_stats().iter().enumerate() {
        for field in store_stat_fields(stats) {
            gauge(
                &format!("pebblesdb_shard_{}", field.name),
                &format!("{{shard=\"{index}\"}}"),
                field.value,
            );
        }
    }
    out
}

/// Serves `GET /metrics`-style requests on `listener` until `shutdown` is
/// signalled. Minimal HTTP/1.0: any request gets the full metrics body.
pub(crate) fn serve_metrics(
    listener: TcpListener,
    counters: Arc<ServerCounters>,
    db: Arc<dyn Db>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("set metrics listener nonblocking");
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                // Read until the end of the request headers (or timeout) —
                // the request itself is ignored.
                let mut buf = [0u8; 1024];
                let mut request = Vec::new();
                loop {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            request.extend_from_slice(&buf[..n]);
                            if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 8192
                            {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                let body = render_prometheus(&counters, db.as_ref());
                let response = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::{KvStore, PrefixDb};

    #[test]
    fn prometheus_rendering_covers_all_surfaces() {
        let counters = ServerCounters::default();
        counters.commands.store(7, Ordering::Relaxed);
        counters.connections_accepted.store(3, Ordering::Relaxed);
        counters.connections_closed.store(1, Ordering::Relaxed);

        let env = std::sync::Arc::new(pebblesdb_env::MemEnv::new());
        let store = pebblesdb::PebblesDb::open(env, std::path::Path::new("/metrics-test")).unwrap();
        store.put(b"k", b"v").unwrap();
        let db = PrefixDb::new(std::sync::Arc::new(store));

        let text = render_prometheus(&counters, &db);
        assert!(text.contains("pebblesdb_server_commands 7\n"));
        assert!(text.contains("pebblesdb_server_connections_open 2\n"));
        assert!(text.contains("pebblesdb_store_user_bytes_written "));
        assert!(text.contains("pebblesdb_cf_num_files{cf=\"default\"} "));
        // An unsharded store renders no per-shard gauges.
        assert!(!text.contains("pebblesdb_shard_"));
        // Exposition-format sanity: every non-comment line is `name[labels] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<u64>().is_ok(), "bad line: {line}");
        }
    }

    #[test]
    fn prometheus_rendering_breaks_out_shards() {
        let counters = ServerCounters::default();
        let env = std::sync::Arc::new(pebblesdb_env::MemEnv::new());
        let store = pebblesdb::PebblesDb::open_sharded(
            env,
            std::path::Path::new("/metrics-shard-test"),
            pebblesdb_common::StoreOptions::default(),
            pebblesdb_shard::ShardConfig {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        store.put(b"k", b"v").unwrap();

        let text = render_prometheus(&counters, &store);
        assert!(text.contains("pebblesdb_store_num_shards 2\n"));
        assert!(text.contains("pebblesdb_shard_user_bytes_written{shard=\"0\"} "));
        assert!(text.contains("pebblesdb_shard_user_bytes_written{shard=\"1\"} "));
        assert!(!text.contains("{shard=\"2\"}"));
    }
}
