//! The command dispatcher: RESP commands onto [`Db`]/[`KvStore`] operations.
//!
//! A [`Session`] is one client's protocol state — selected column family,
//! authentication status, queued transaction, rate-limit bucket — and is
//! deliberately connection-agnostic: the TCP layer feeds it parsed command
//! frames and writes back whatever reply it returns, so the whole command
//! surface is unit-testable without sockets (and the connection layer can be
//! swapped for an async one without touching command semantics).
//!
//! Command subset:
//!
//! | command | reply | notes |
//! |---|---|---|
//! | `PING` / `ECHO msg` | `+PONG` / bulk | liveness, rate-limit exempt probe |
//! | `AUTH token` | `+OK` | deny-by-default when a provider is configured |
//! | `SELECT cf` | `+OK` | selects an existing column family by name |
//! | `CFCREATE` / `CFDROP` / `CFLIST` | `+OK` / array | family lifecycle |
//! | `GET k` / `SET k v` / `DEL k...` | bulk / `+OK` / `:n` | point ops on the selected family |
//! | `SCAN cursor [END e] [COUNT n]` | `[next, [k,v,...]]` | bounded page; empty `next` = done |
//! | `MULTI` .. `EXEC` / `DISCARD` | `+QUEUED`.. | atomic batch; `SELECT` inside retargets, so batches span families |
//! | `INFO` | bulk | shared stats field lists |
//! | `FLUSH` | `+OK` | flush memtables (bench phase boundary) |
//! | `SYNC seq` | `+OK`, then frames | hands the connection to the replication streamer |
//! | `QUIT` | `+OK` | close after the reply |
//!
//! `SCAN` pages are *cursor-backed*: every page opens its own iterator,
//! reads at most a bounded count and returns a resume key. Nothing server
//! side outlives the command, so a slow client can never pin a snapshot (and
//! the obsolete sstables it holds alive) between pages.

use std::sync::Arc;

use pebblesdb_common::resp::RespValue;
use pebblesdb_common::stats_text::{cf_stat_fields, render_info, store_stat_fields};
use pebblesdb_common::{
    ColumnFamilyHandle, Db, Error, KvStore, SequenceNumber, WriteBatch, WriteOptions,
};

use crate::auth::AuthProvider;
use crate::metrics::ServerCounters;
use crate::rate_limit::TokenBucket;

/// The dispatcher knobs a [`Session`] needs (a subset of the server config).
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Hard cap on `SCAN` page sizes (requested `COUNT` is clamped to this).
    pub max_scan_page: usize,
    /// Default `SCAN` page size when the client sends no `COUNT`.
    pub default_scan_page: usize,
    /// Force `sync` on every acknowledged write.
    pub sync_writes: bool,
}

impl Default for SessionOptions {
    fn default() -> SessionOptions {
        SessionOptions {
            max_scan_page: 1024,
            default_scan_page: 128,
            sync_writes: false,
        }
    }
}

/// A queued `MULTI` transaction: one cross-family atomic batch in the
/// making, plus how many replies `EXEC` owes.
struct Txn {
    batch: WriteBatch,
    queued: usize,
    /// A queue-time error poisons the transaction; `EXEC` must refuse it.
    aborted: bool,
}

/// One client's protocol state.
pub struct Session {
    db: Arc<dyn Db>,
    counters: Arc<ServerCounters>,
    auth: Option<Arc<dyn AuthProvider>>,
    limiter: Option<TokenBucket>,
    options: SessionOptions,
    cf: ColumnFamilyHandle,
    authenticated: bool,
    txn: Option<Txn>,
    close_requested: bool,
    /// Set by `SYNC`: the connection layer flushes the `+OK` and hands the
    /// socket to the replication streamer starting at this sequence.
    pending_sync: Option<SequenceNumber>,
    /// Scratch for SCAN resume keys, reused across pages so a client
    /// paging through a large range does not reallocate the cursor buffer
    /// on every page.
    scan_cursor: Vec<u8>,
}

impl Session {
    /// Creates a session for one connection. `auth = Some` puts the session
    /// in deny-by-default mode until `AUTH` succeeds.
    pub fn new(
        db: Arc<dyn Db>,
        counters: Arc<ServerCounters>,
        auth: Option<Arc<dyn AuthProvider>>,
        limiter: Option<TokenBucket>,
        options: SessionOptions,
    ) -> Session {
        let cf = db.default_cf();
        let authenticated = auth.is_none();
        Session {
            db,
            counters,
            auth,
            limiter,
            options,
            cf,
            authenticated,
            txn: None,
            close_requested: false,
            pending_sync: None,
            scan_cursor: Vec::new(),
        }
    }

    /// `true` once the client asked to close (`QUIT`); the connection layer
    /// flushes pending replies and disconnects.
    pub fn close_requested(&self) -> bool {
        self.close_requested
    }

    /// Takes the cursor of a just-acknowledged `SYNC`, if any. The
    /// connection layer polls this after every command; `Some` means "flush
    /// replies, then switch this socket into a one-way replication stream".
    pub fn take_pending_sync(&mut self) -> Option<SequenceNumber> {
        self.pending_sync.take()
    }

    /// The store this session dispatches to (for the replication streamer).
    pub fn db(&self) -> &Arc<dyn Db> {
        &self.db
    }

    /// Executes one parsed command and returns its reply.
    ///
    /// Never panics and never returns transport errors: every failure mode
    /// is an error *reply*. (Framing violations are handled one layer down,
    /// before a command exists.)
    pub fn execute(&mut self, args: Vec<Vec<u8>>) -> RespValue {
        let Some(first) = args.first() else {
            return RespValue::error("ERR empty command");
        };
        let cmd = String::from_utf8_lossy(first).to_ascii_uppercase();

        // Auth gate: deny-by-default when a provider is configured.
        if !self.authenticated && !matches!(cmd.as_str(), "AUTH" | "PING" | "QUIT") {
            return RespValue::error("NOAUTH authentication required");
        }

        // Rate limiting: every command except the QUIT farewell costs one
        // token. Rejection is an error reply — backpressure — never a
        // disconnect.
        if cmd != "QUIT" {
            if let Some(limiter) = &mut self.limiter {
                if !limiter.try_acquire(1.0) {
                    self.counters
                        .rate_limited
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return RespValue::error("BUSY rate limit exceeded, retry later");
                }
            }
        }
        self.counters
            .commands
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        // Inside MULTI, write commands queue instead of executing. SELECT
        // still executes immediately so later queued ops target another
        // family — that is how a batch comes to span families.
        if self.txn.is_some() && matches!(cmd.as_str(), "SET" | "DEL") {
            return self.queue_in_txn(&cmd, &args);
        }

        match cmd.as_str() {
            "PING" => match args.len() {
                1 => RespValue::Simple("PONG".to_string()),
                2 => RespValue::bulk(args[1].clone()),
                _ => wrong_arity("PING"),
            },
            "ECHO" => match args.len() {
                2 => RespValue::bulk(args[1].clone()),
                _ => wrong_arity("ECHO"),
            },
            "QUIT" => {
                self.close_requested = true;
                RespValue::ok()
            }
            "AUTH" => self.cmd_auth(&args),
            "SELECT" => self.cmd_select(&args),
            "CFCREATE" => self.cmd_cf_create(&args),
            "CFDROP" => self.cmd_cf_drop(&args),
            "CFLIST" => RespValue::Array(
                self.db
                    .list_cfs()
                    .into_iter()
                    .map(RespValue::bulk)
                    .collect(),
            ),
            "GET" => self.cmd_get(&args),
            "SET" => self.cmd_set(&args),
            "DEL" => self.cmd_del(&args),
            "SCAN" => self.cmd_scan(&args),
            "MULTI" => {
                if self.txn.is_some() {
                    return RespValue::error("ERR MULTI calls can not be nested");
                }
                self.txn = Some(Txn {
                    batch: WriteBatch::new(),
                    queued: 0,
                    aborted: false,
                });
                RespValue::ok()
            }
            "EXEC" => self.cmd_exec(),
            "DISCARD" => {
                if self.txn.take().is_none() {
                    return RespValue::error("ERR DISCARD without MULTI");
                }
                RespValue::ok()
            }
            "INFO" => self.cmd_info(),
            "SYNC" => self.cmd_sync(&args),
            "FLUSH" => match self.db.flush() {
                Ok(()) => RespValue::ok(),
                Err(err) => store_error(&err),
            },
            _ => {
                // An unknown command inside a transaction poisons it, like
                // a queue-time error would.
                if let Some(txn) = &mut self.txn {
                    txn.aborted = true;
                }
                RespValue::error(format!("ERR unknown command {cmd:?}"))
            }
        }
    }

    fn write_options(&self) -> WriteOptions {
        WriteOptions {
            sync: self.options.sync_writes,
        }
    }

    fn cmd_auth(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 2 {
            return wrong_arity("AUTH");
        }
        let Some(provider) = &self.auth else {
            return RespValue::error(
                "ERR Client sent AUTH, but no credential provider is configured",
            );
        };
        if provider.authenticate(&args[1]) {
            self.authenticated = true;
            RespValue::ok()
        } else {
            self.counters
                .auth_failures
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            RespValue::error("WRONGPASS invalid credential")
        }
    }

    fn cmd_select(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 2 {
            return wrong_arity("SELECT");
        }
        let name = String::from_utf8_lossy(&args[1]).into_owned();
        match self.db.cf(&name) {
            Some(handle) => {
                self.cf = handle;
                RespValue::ok()
            }
            None => RespValue::error(format!("ERR no such column family {name:?}")),
        }
    }

    fn cmd_cf_create(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 2 {
            return wrong_arity("CFCREATE");
        }
        let name = String::from_utf8_lossy(&args[1]).into_owned();
        match self.db.create_cf(&name) {
            Ok(_) => RespValue::ok(),
            Err(err) => store_error(&err),
        }
    }

    fn cmd_cf_drop(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 2 {
            return wrong_arity("CFDROP");
        }
        let name = String::from_utf8_lossy(&args[1]).into_owned();
        if self.cf.name() == name {
            // Dropping the family the session sits in would leave every
            // later command failing; fall back to the default family first.
            self.cf = self.db.default_cf();
        }
        match self.db.drop_cf(&name) {
            Ok(()) => RespValue::ok(),
            Err(err) => store_error(&err),
        }
    }

    fn cmd_get(&self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 2 {
            return wrong_arity("GET");
        }
        match self.cf.get(&args[1]) {
            Ok(Some(value)) => RespValue::Bulk(value),
            Ok(None) => RespValue::NullBulk,
            Err(err) => store_error(&err),
        }
    }

    fn cmd_set(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 3 {
            return wrong_arity("SET");
        }
        match self.cf.put_opts(&self.write_options(), &args[1], &args[2]) {
            Ok(()) => RespValue::ok(),
            Err(err) => store_error(&err),
        }
    }

    fn cmd_del(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() < 2 {
            return wrong_arity("DEL");
        }
        let mut batch = WriteBatch::new();
        for key in &args[1..] {
            batch.delete_cf(self.cf.id(), key);
        }
        match self.db.write_opts(&self.write_options(), batch) {
            Ok(()) => RespValue::Integer((args.len() - 1) as i64),
            Err(err) => store_error(&err),
        }
    }

    /// `SCAN cursor [END end] [COUNT n]` — one bounded page of the selected
    /// family, resumable via the returned cursor.
    fn cmd_scan(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() < 2 {
            return wrong_arity("SCAN");
        }
        let start: &[u8] = &args[1];
        let mut end: &[u8] = &[];
        let mut count = self.options.default_scan_page;
        let mut rest = args[2..].iter();
        while let Some(word) = rest.next() {
            match word.to_ascii_uppercase().as_slice() {
                b"END" => match rest.next() {
                    Some(value) => end = value,
                    None => return RespValue::error("ERR SCAN END requires a key"),
                },
                b"COUNT" => match rest.next().and_then(|v| {
                    std::str::from_utf8(v)
                        .ok()
                        .and_then(|s| s.parse::<usize>().ok())
                }) {
                    Some(value) if value > 0 => count = value,
                    _ => return RespValue::error("ERR SCAN COUNT requires a positive integer"),
                },
                _ => {
                    return RespValue::error(format!(
                        "ERR unknown SCAN option {:?}",
                        String::from_utf8_lossy(word)
                    ))
                }
            }
        }
        let count = count.min(self.options.max_scan_page);
        // The iterator lives only for this call: the page is consistent
        // (one cursor), but nothing is pinned once the reply is written.
        let entries = match self.cf.scan(start, end, count) {
            Ok(entries) => entries,
            Err(err) => return store_error(&err),
        };
        // A full page may have more data behind it: resume just after the
        // last returned key (its smallest strict successor). Built in the
        // session scratch so paging keeps one buffer at page-key capacity.
        let next_cursor = if entries.len() == count {
            self.scan_cursor.clear();
            self.scan_cursor
                .extend_from_slice(&entries.last().expect("non-empty full page").0);
            self.scan_cursor.push(0);
            self.scan_cursor.clone()
        } else {
            Vec::new()
        };
        let mut flat = Vec::with_capacity(entries.len() * 2);
        for (key, value) in entries {
            flat.push(RespValue::Bulk(key));
            flat.push(RespValue::Bulk(value));
        }
        RespValue::Array(vec![RespValue::Bulk(next_cursor), RespValue::Array(flat)])
    }

    fn queue_in_txn(&mut self, cmd: &str, args: &[Vec<u8>]) -> RespValue {
        let cf_id = self.cf.id();
        let txn = self.txn.as_mut().expect("queue_in_txn requires a txn");
        match cmd {
            "SET" if args.len() == 3 => {
                txn.batch.put_cf(cf_id, &args[1], &args[2]);
                txn.queued += 1;
            }
            "DEL" if args.len() >= 2 => {
                for key in &args[1..] {
                    txn.batch.delete_cf(cf_id, key);
                }
                txn.queued += 1;
            }
            _ => {
                txn.aborted = true;
                return wrong_arity(cmd);
            }
        }
        RespValue::Simple("QUEUED".to_string())
    }

    fn cmd_exec(&mut self) -> RespValue {
        let Some(txn) = self.txn.take() else {
            return RespValue::error("ERR EXEC without MULTI");
        };
        if txn.aborted {
            return RespValue::error("EXECABORT transaction discarded because of previous errors");
        }
        if txn.queued == 0 {
            return RespValue::Array(Vec::new());
        }
        // One atomic cross-family batch: all families share the WAL and the
        // sequence space, so the whole transaction commits or none of it.
        match self.db.write_opts(&self.write_options(), txn.batch) {
            Ok(()) => RespValue::Array(vec![RespValue::ok(); txn.queued]),
            Err(err) => store_error(&err),
        }
    }

    /// `SYNC from_seq` — request a replication stream from `from_seq`.
    ///
    /// The dispatcher only validates and records the request; the connection
    /// layer flushes the `+OK` and inverts the conversation (server pushes
    /// frames, the session never executes another command). Validating the
    /// cursor against retained history happens when the stream opens, so a
    /// truncated cursor is reported in-band as a `TRUNCATED` frame.
    fn cmd_sync(&mut self, args: &[Vec<u8>]) -> RespValue {
        if args.len() != 2 {
            return wrong_arity("SYNC");
        }
        if self.txn.is_some() {
            return RespValue::error("ERR SYNC inside MULTI is not allowed");
        }
        let from_seq = std::str::from_utf8(&args[1])
            .ok()
            .and_then(|s| s.parse::<SequenceNumber>().ok());
        match from_seq {
            Some(seq) => {
                self.pending_sync = Some(seq);
                RespValue::ok()
            }
            None => RespValue::error("ERR SYNC requires a non-negative integer sequence"),
        }
    }

    fn cmd_info(&self) -> RespValue {
        let server_fields = self.counters.fields();
        let store_fields = store_stat_fields(&self.db.stats());
        let cf_stats = self.db.cf_stats();
        let cf_sections: Vec<(String, Vec<_>)> = cf_stats
            .iter()
            .map(|cf| (format!("cf:{}", cf.name), cf_stat_fields(cf)))
            .collect();
        // Sharded stores get one section per shard (same field list as the
        // aggregate `store` section); unsharded stores render none.
        let shard_sections: Vec<(String, Vec<_>)> = self
            .db
            .shard_stats()
            .iter()
            .enumerate()
            .map(|(index, stats)| (format!("shard:{index}"), store_stat_fields(stats)))
            .collect();
        let mut sections: Vec<(&str, &[_])> = vec![
            ("server", server_fields.as_slice()),
            ("store", store_fields.as_slice()),
        ];
        for (title, fields) in &cf_sections {
            sections.push((title.as_str(), fields.as_slice()));
        }
        for (title, fields) in &shard_sections {
            sections.push((title.as_str(), fields.as_slice()));
        }
        let mut body = format!(
            "# engine\r\nname:{}\r\nselected_cf:{}\r\n\r\n",
            self.db.engine_name(),
            self.cf.name()
        );
        body.push_str(&render_info(&sections));
        RespValue::Bulk(body.into_bytes())
    }
}

fn wrong_arity(cmd: &str) -> RespValue {
    RespValue::error(format!("ERR wrong number of arguments for {cmd:?}"))
}

fn store_error(err: &Error) -> RespValue {
    RespValue::error(format!("ERR {err}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb::PebblesDb;
    use pebblesdb_env::MemEnv;
    use std::path::Path;

    fn session() -> Session {
        session_with(None, None)
    }

    fn session_with(auth: Option<Arc<dyn AuthProvider>>, limiter: Option<TokenBucket>) -> Session {
        let env = Arc::new(MemEnv::new());
        let db: Arc<dyn Db> = Arc::new(PebblesDb::open(env, Path::new("/dispatch")).unwrap());
        Session::new(
            db,
            Arc::new(ServerCounters::default()),
            auth,
            limiter,
            SessionOptions::default(),
        )
    }

    fn run(session: &mut Session, args: &[&[u8]]) -> RespValue {
        session.execute(args.iter().map(|a| a.to_vec()).collect())
    }

    #[test]
    fn info_breaks_out_shards_of_a_sharded_store() {
        let env = Arc::new(MemEnv::new());
        let db: Arc<dyn Db> = Arc::new(
            PebblesDb::open_sharded(
                env,
                Path::new("/dispatch-sharded"),
                pebblesdb_common::StoreOptions::default(),
                pebblesdb_shard::ShardConfig {
                    shards: 2,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let mut s = Session::new(
            db,
            Arc::new(ServerCounters::default()),
            None,
            None,
            SessionOptions::default(),
        );
        assert_eq!(run(&mut s, &[b"SET", b"k", b"v"]), RespValue::ok());
        let RespValue::Bulk(body) = run(&mut s, &[b"INFO"]) else {
            panic!("INFO must return a bulk string");
        };
        let body = String::from_utf8(body).unwrap();
        assert!(body.contains("# shard:0\r\n"), "{body}");
        assert!(body.contains("# shard:1\r\n"), "{body}");
        assert!(!body.contains("# shard:2\r\n"), "{body}");
        // Unsharded stores keep rendering no shard sections.
        let RespValue::Bulk(plain) = run(&mut session(), &[b"INFO"]) else {
            panic!("INFO must return a bulk string");
        };
        assert!(!String::from_utf8(plain).unwrap().contains("# shard:"));
    }

    #[test]
    fn point_ops_roundtrip() {
        let mut s = session();
        assert_eq!(run(&mut s, &[b"SET", b"k", b"v"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"GET", b"k"]), RespValue::bulk(b"v".to_vec()));
        assert_eq!(
            run(&mut s, &[b"DEL", b"k", b"other"]),
            RespValue::Integer(2)
        );
        assert_eq!(run(&mut s, &[b"GET", b"k"]), RespValue::NullBulk);
        assert_eq!(
            run(&mut s, &[b"PING"]),
            RespValue::Simple("PONG".to_string())
        );
        // Errors are replies, not closed connections.
        assert!(matches!(run(&mut s, &[b"SET", b"k"]), RespValue::Error(_)));
        assert!(matches!(run(&mut s, &[b"NOPE"]), RespValue::Error(_)));
        assert!(!s.close_requested());
        assert_eq!(run(&mut s, &[b"QUIT"]), RespValue::ok());
        assert!(s.close_requested());
    }

    #[test]
    fn select_and_families_scope_operations() {
        let mut s = session();
        assert_eq!(run(&mut s, &[b"CFCREATE", b"users"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"SET", b"k", b"default"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"SELECT", b"users"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"SET", b"k", b"user"]), RespValue::ok());
        assert_eq!(
            run(&mut s, &[b"GET", b"k"]),
            RespValue::bulk(b"user".to_vec())
        );
        assert_eq!(run(&mut s, &[b"SELECT", b"default"]), RespValue::ok());
        assert_eq!(
            run(&mut s, &[b"GET", b"k"]),
            RespValue::bulk(b"default".to_vec())
        );
        assert!(matches!(
            run(&mut s, &[b"SELECT", b"missing"]),
            RespValue::Error(_)
        ));
        let cfs = run(&mut s, &[b"CFLIST"]);
        assert_eq!(
            cfs,
            RespValue::Array(vec![
                RespValue::bulk(b"default".to_vec()),
                RespValue::bulk(b"users".to_vec())
            ])
        );
        // Dropping the selected family falls back to default.
        assert_eq!(run(&mut s, &[b"SELECT", b"users"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"CFDROP", b"users"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"SET", b"still", b"works"]), RespValue::ok());
    }

    #[test]
    fn scan_pages_are_bounded_and_resumable() {
        let mut s = session();
        for i in 0..25u32 {
            run(&mut s, &[b"SET", format!("k{i:03}").as_bytes(), b"v"]);
        }
        let mut cursor: Vec<u8> = Vec::new();
        let mut seen = Vec::new();
        let mut pages = 0;
        loop {
            let reply = run(&mut s, &[b"SCAN", &cursor, b"COUNT", b"10"]);
            let RespValue::Array(parts) = reply else {
                panic!("SCAN must return an array")
            };
            let RespValue::Bulk(next) = &parts[0] else {
                panic!("cursor must be a bulk")
            };
            let RespValue::Array(flat) = &parts[1] else {
                panic!("entries must be an array")
            };
            for pair in flat.chunks(2) {
                let RespValue::Bulk(key) = &pair[0] else {
                    panic!()
                };
                seen.push(key.clone());
            }
            pages += 1;
            if next.is_empty() {
                break;
            }
            cursor = next.clone();
        }
        assert_eq!(seen.len(), 25);
        assert!(pages >= 3, "25 keys at COUNT 10 need >= 3 pages");
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "ordered, no dups");
        // COUNT is clamped to the configured page cap.
        let reply = run(&mut s, &[b"SCAN", b"", b"COUNT", b"9999999"]);
        let RespValue::Array(parts) = reply else {
            panic!()
        };
        let RespValue::Array(flat) = &parts[1] else {
            panic!()
        };
        assert!(flat.len() / 2 <= SessionOptions::default().max_scan_page);
        // END bounds the page.
        let reply = run(&mut s, &[b"SCAN", b"k000", b"END", b"k005"]);
        let RespValue::Array(parts) = reply else {
            panic!()
        };
        let RespValue::Array(flat) = &parts[1] else {
            panic!()
        };
        assert_eq!(flat.len() / 2, 5);
    }

    #[test]
    fn multi_exec_builds_one_cross_family_batch() {
        let mut s = session();
        run(&mut s, &[b"CFCREATE", b"mirror"]);
        assert_eq!(run(&mut s, &[b"MULTI"]), RespValue::ok());
        assert_eq!(
            run(&mut s, &[b"SET", b"a", b"1"]),
            RespValue::Simple("QUEUED".to_string())
        );
        assert_eq!(run(&mut s, &[b"SELECT", b"mirror"]), RespValue::ok());
        assert_eq!(
            run(&mut s, &[b"SET", b"a", b"1"]),
            RespValue::Simple("QUEUED".to_string())
        );
        let reply = run(&mut s, &[b"EXEC"]);
        assert_eq!(reply, RespValue::Array(vec![RespValue::ok(); 2]));
        // Both families saw the batch.
        assert_eq!(run(&mut s, &[b"GET", b"a"]), RespValue::bulk(b"1".to_vec()));
        run(&mut s, &[b"SELECT", b"default"]);
        assert_eq!(run(&mut s, &[b"GET", b"a"]), RespValue::bulk(b"1".to_vec()));

        // Queue-time errors poison the transaction.
        run(&mut s, &[b"MULTI"]);
        assert!(matches!(run(&mut s, &[b"SET", b"x"]), RespValue::Error(_)));
        assert_eq!(
            run(&mut s, &[b"SET", b"y", b"2"]),
            RespValue::Simple("QUEUED".to_string())
        );
        let reply = run(&mut s, &[b"EXEC"]);
        assert!(matches!(reply, RespValue::Error(msg) if msg.starts_with("EXECABORT")));
        assert_eq!(run(&mut s, &[b"GET", b"y"]), RespValue::NullBulk);

        // DISCARD drops the queue.
        run(&mut s, &[b"MULTI"]);
        run(&mut s, &[b"SET", b"z", b"3"]);
        assert_eq!(run(&mut s, &[b"DISCARD"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"GET", b"z"]), RespValue::NullBulk);
        assert!(matches!(run(&mut s, &[b"EXEC"]), RespValue::Error(_)));
    }

    #[test]
    fn auth_gate_denies_until_authenticated() {
        use crate::auth::StaticTokenAuth;
        let mut s = session_with(Some(Arc::new(StaticTokenAuth::new("sesame"))), None);
        // Deny-by-default: data commands refused, liveness allowed.
        assert!(matches!(
            run(&mut s, &[b"GET", b"k"]),
            RespValue::Error(msg) if msg.starts_with("NOAUTH")
        ));
        assert_eq!(
            run(&mut s, &[b"PING"]),
            RespValue::Simple("PONG".to_string())
        );
        assert!(matches!(
            run(&mut s, &[b"AUTH", b"wrong"]),
            RespValue::Error(msg) if msg.starts_with("WRONGPASS")
        ));
        assert_eq!(run(&mut s, &[b"AUTH", b"sesame"]), RespValue::ok());
        assert_eq!(run(&mut s, &[b"SET", b"k", b"v"]), RespValue::ok());
    }

    #[test]
    fn rate_limiter_returns_busy_and_recovers() {
        use crate::rate_limit::RateLimit;
        let limiter = TokenBucket::new(RateLimit {
            ops_per_sec: 1000.0,
            burst: 3.0,
        });
        let mut s = session_with(None, Some(limiter));
        let mut busy = 0;
        for _ in 0..20 {
            if matches!(
                run(&mut s, &[b"SET", b"k", b"v"]),
                RespValue::Error(msg) if msg.starts_with("BUSY")
            ) {
                busy += 1;
            }
        }
        assert!(busy > 0, "burst of 3 must trip the limiter within 20 ops");
        // The session still works — BUSY is backpressure, not a disconnect.
        assert!(!s.close_requested());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(run(&mut s, &[b"GET", b"k"]), RespValue::bulk(b"v".to_vec()));
    }

    #[test]
    fn info_renders_shared_field_lists() {
        let mut s = session();
        run(&mut s, &[b"SET", b"k", b"v"]);
        let RespValue::Bulk(body) = run(&mut s, &[b"INFO"]) else {
            panic!("INFO must return a bulk string")
        };
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("# server"));
        assert!(text.contains("commands:"));
        assert!(text.contains("# store"));
        assert!(text.contains("user_bytes_written:"));
        assert!(text.contains("# cf:default"));
        assert!(text.contains("memtable_bytes:"));
    }
}
