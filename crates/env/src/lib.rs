//! Filesystem abstraction with IO accounting.
//!
//! Every engine in the workspace performs IO through an [`Env`]; the two
//! implementations are [`DiskEnv`] (real files under a directory) and
//! [`MemEnv`] (an in-memory filesystem used by unit tests, crash-injection
//! tests and the fully-cached experiments).
//!
//! The [`IoStats`] attached to an `Env` counts every byte written and read,
//! which is how the benchmark harness measures write amplification from
//! inside the store instead of relying on external tools such as `iostat`.

pub mod disk;
pub mod mem;
pub mod stats;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pebblesdb_common::Result;

pub use disk::DiskEnv;
pub use mem::MemEnv;
pub use stats::{IoStats, IoStatsSnapshot};

/// A file that is written sequentially (WAL, sstable under construction).
pub trait WritableFile: Send {
    /// Appends `data` at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Flushes buffered data to the operating system.
    fn flush(&mut self) -> Result<()>;
    /// Forces data to stable storage.
    fn sync(&mut self) -> Result<()>;
    /// Flushes and closes the file.
    fn close(&mut self) -> Result<()>;
}

/// A file read at arbitrary offsets (sstable reads).
pub trait RandomAccessFile: Send + Sync {
    /// Reads `len` bytes starting at `offset`.
    ///
    /// Returns fewer bytes only if the file ends before `offset + len`.
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Total length of the file in bytes.
    fn len(&self) -> Result<u64>;
    /// Returns `true` if the file is empty.
    fn is_empty(&self) -> bool {
        self.len().map(|l| l == 0).unwrap_or(true)
    }
}

/// A file read from the beginning (WAL replay, manifest recovery).
pub trait SequentialFile: Send {
    /// Reads up to `buf.len()` bytes into `buf`, returning the count.
    fn read(&mut self, buf: &mut [u8]) -> Result<usize>;
    /// Skips `n` bytes.
    fn skip(&mut self, n: u64) -> Result<()>;
}

/// A file supporting in-place positional writes (B+Tree page files).
///
/// The LSM-family engines never overwrite data and do not use this; the
/// page-oriented B+Tree engine (the KyotoCabinet / WiredTiger stand-in)
/// rewrites pages in place, which is exactly the behaviour whose write
/// amplification the paper's Figure 1.1 quantifies.
pub trait RandomWritableFile: Send + Sync {
    /// Writes `data` at byte `offset`, extending the file if needed.
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()>;
    /// Reads `len` bytes starting at `offset`.
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Current file length in bytes.
    fn len(&self) -> Result<u64>;
    /// Returns `true` if the file is empty.
    fn is_empty(&self) -> bool {
        self.len().map(|l| l == 0).unwrap_or(true)
    }
    /// Forces contents to stable storage.
    fn sync(&self) -> Result<()>;
}

/// The environment a database runs in: file creation, deletion, directory
/// listing, and the IO statistics shared by every file it hands out.
pub trait Env: Send + Sync {
    /// Creates (or truncates) a writable file.
    fn new_writable_file(&self, path: &Path) -> Result<Box<dyn WritableFile>>;
    /// Opens a file for positional reads.
    fn new_random_access_file(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>>;
    /// Opens a file for sequential reads.
    fn new_sequential_file(&self, path: &Path) -> Result<Box<dyn SequentialFile>>;
    /// Opens (creating if missing) a file for positional reads and writes.
    fn new_random_writable_file(&self, path: &Path) -> Result<Arc<dyn RandomWritableFile>>;
    /// Returns `true` if `path` exists.
    fn file_exists(&self, path: &Path) -> bool;
    /// Returns the size of `path` in bytes.
    fn file_size(&self, path: &Path) -> Result<u64>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> Result<()>;
    /// Atomically renames `from` to `to`.
    ///
    /// The rename itself is atomic but **not durable** until the parent
    /// directory is synced — call [`Env::sync_dir`] afterwards when the
    /// rename must survive a crash (the CURRENT/MANIFEST switch).
    fn rename_file(&self, from: &Path, to: &Path) -> Result<()>;
    /// Forces the directory entries of `path` (a directory) to stable
    /// storage, making files previously created or renamed into it durable.
    ///
    /// Without this, a crash after a rename or a file creation can lose the
    /// directory entry even though the file's *data* was synced — the
    /// classic "fsync the file, forget the directory" bug. Engines call it
    /// after writing sstables (before the MANIFEST references them), after
    /// creating a fresh WAL, and after the CURRENT rename.
    fn sync_dir(&self, path: &Path) -> Result<()> {
        let _ = path;
        Ok(())
    }
    /// Creates a directory (and its parents).
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// Removes a directory and everything under it.
    fn remove_dir_all(&self, path: &Path) -> Result<()>;
    /// Lists the file names (not full paths) directly under `path`.
    fn children(&self, path: &Path) -> Result<Vec<String>>;
    /// The IO statistics shared by all files created by this environment.
    fn io_stats(&self) -> Arc<IoStats>;

    /// Writes `data` to `path` and then atomically renames it into place,
    /// syncing the parent directory so the rename survives a crash.
    ///
    /// Used for the `CURRENT` file so readers never observe a partial write
    /// and a crash immediately after the switch cannot roll it back.
    fn write_string_to_file_sync(&self, path: &Path, data: &[u8]) -> Result<()> {
        let tmp: PathBuf = path.with_extension("tmp_swap");
        {
            let mut file = self.new_writable_file(&tmp)?;
            file.append(data)?;
            file.sync()?;
            file.close()?;
        }
        self.rename_file(&tmp, path)?;
        if let Some(parent) = path.parent() {
            self.sync_dir(parent)?;
        }
        Ok(())
    }

    /// Reads the entire contents of `path`.
    fn read_file_to_vec(&self, path: &Path) -> Result<Vec<u8>> {
        let mut file = self.new_sequential_file(path)?;
        let mut out = Vec::new();
        let mut buf = [0u8; 8192];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_env(env: &dyn Env, root: &Path) {
        env.create_dir_all(root).unwrap();
        let path = root.join("file.txt");

        {
            let mut f = env.new_writable_file(&path).unwrap();
            f.append(b"hello ").unwrap();
            f.append(b"world").unwrap();
            f.sync().unwrap();
            f.close().unwrap();
        }
        assert!(env.file_exists(&path));
        assert_eq!(env.file_size(&path).unwrap(), 11);

        let ra = env.new_random_access_file(&path).unwrap();
        assert_eq!(ra.read(6, 5).unwrap(), b"world");
        assert_eq!(ra.read(0, 5).unwrap(), b"hello");
        assert_eq!(ra.len().unwrap(), 11);

        let data = env.read_file_to_vec(&path).unwrap();
        assert_eq!(data, b"hello world");

        let renamed = root.join("renamed.txt");
        env.rename_file(&path, &renamed).unwrap();
        assert!(!env.file_exists(&path));
        assert!(env.file_exists(&renamed));

        let children = env.children(root).unwrap();
        assert!(children.contains(&"renamed.txt".to_string()));

        env.write_string_to_file_sync(&root.join("CURRENT"), b"MANIFEST-000001\n")
            .unwrap();
        assert_eq!(
            env.read_file_to_vec(&root.join("CURRENT")).unwrap(),
            b"MANIFEST-000001\n"
        );

        env.remove_file(&renamed).unwrap();
        assert!(!env.file_exists(&renamed));

        let stats = env.io_stats().snapshot();
        assert!(stats.bytes_written >= 11);
        assert!(stats.bytes_read >= 11);
    }

    #[test]
    fn mem_env_full_lifecycle() {
        let env = MemEnv::new();
        exercise_env(&env, Path::new("/db"));
    }

    #[test]
    fn disk_env_full_lifecycle() {
        let dir = std::env::temp_dir().join(format!("pebbles-env-test-{}", std::process::id()));
        let env = DiskEnv::new();
        let _ = env.remove_dir_all(&dir);
        exercise_env(&env, &dir);
        env.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reading_missing_file_fails() {
        let env = MemEnv::new();
        assert!(env.new_sequential_file(Path::new("/nope")).is_err());
        assert!(env.new_random_access_file(Path::new("/nope")).is_err());
        assert!(env.file_size(Path::new("/nope")).is_err());
        assert!(!env.file_exists(Path::new("/nope")));
    }
}
