//! An in-memory environment used by tests and fully-cached experiments.
//!
//! Besides being fast and hermetic, [`MemEnv`] supports *fault injection*
//! for crash testing:
//!
//! * [`MemEnv::truncate_file`] drops the tail of a file, simulating a torn
//!   write at a crash point;
//! * [`MemEnv::inject_write_error_after`] makes appends/syncs to matching
//!   files start failing after a budget of successes, simulating a crash
//!   *between* two writes (for example: compaction outputs fully written,
//!   MANIFEST commit never happens);
//! * [`MemEnv::set_write_latency_micros`] slows every append down, widening
//!   the windows in which concurrent compaction jobs overlap so stress tests
//!   can assert on parallelism deterministically.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use pebblesdb_common::{Error, Result};

use crate::stats::IoStats;
use crate::{Env, RandomAccessFile, RandomWritableFile, SequentialFile, WritableFile};

type FileData = Arc<RwLock<Vec<u8>>>;

/// A rename whose directory entry has not been made durable by a
/// [`Env::sync_dir`] yet; a simulated crash rolls it back.
struct UnsyncedRename {
    from: PathBuf,
    to: PathBuf,
    /// The file that `to` pointed at before the rename (restored on crash).
    replaced: Option<FileData>,
}

#[derive(Default)]
struct FileSystem {
    files: HashMap<PathBuf, FileData>,
    dirs: Vec<PathBuf>,
    /// Files created since the last `sync_dir` of their parent; a simulated
    /// crash removes them (their directory entry never became durable).
    unsynced_creates: Vec<PathBuf>,
    /// Renames since the last `sync_dir` of the target's parent.
    unsynced_renames: Vec<UnsyncedRename>,
}

/// Shared write-fault configuration consulted by every writable file.
#[derive(Default)]
struct FaultState {
    /// `(path substring, remaining successful appends)`. Once a pattern's
    /// budget reaches zero, every later append or sync to a matching file
    /// fails with an injected IO error.
    fail_after: Vec<(String, u64)>,
    /// `(path substring, microseconds)` of artificial latency added to every
    /// append of a matching file; the empty pattern matches every file.
    write_latency: Vec<(String, u64)>,
    /// Path substrings whose `remove_file`/`remove_dir_all` calls fail with
    /// an injected IO error (an undeletable file: EBUSY, permissions, a
    /// flaky device) until cleared.
    fail_removes: Vec<String>,
}

impl FaultState {
    /// Charges one append against `path`; returns the injected error if a
    /// matching pattern's success budget is exhausted, otherwise the total
    /// artificial latency the append must pay.
    fn check_append(&mut self, path: &Path) -> Result<u64> {
        let name = path.to_string_lossy();
        for (pattern, remaining) in &mut self.fail_after {
            if name.contains(pattern.as_str()) {
                if *remaining == 0 {
                    return Err(Error::internal(format!(
                        "injected write failure for {name}"
                    )));
                }
                *remaining -= 1;
            }
        }
        Ok(self
            .write_latency
            .iter()
            .filter(|(pattern, _)| name.contains(pattern.as_str()))
            .map(|(_, micros)| micros)
            .sum())
    }

    /// Returns the injected error if removals of `path` are configured to
    /// fail.
    fn check_remove(&self, path: &Path) -> Result<()> {
        let name = path.to_string_lossy();
        for pattern in &self.fail_removes {
            if name.contains(pattern.as_str()) {
                return Err(Error::internal(format!(
                    "injected remove failure for {name}"
                )));
            }
        }
        Ok(())
    }

    /// Like [`FaultState::check_append`] but without consuming budget (used
    /// by `sync`, which writes no new bytes).
    fn check_sync(&self, path: &Path) -> Result<()> {
        let name = path.to_string_lossy();
        for (pattern, remaining) in &self.fail_after {
            if name.contains(pattern.as_str()) && *remaining == 0 {
                return Err(Error::internal(format!("injected sync failure for {name}")));
            }
        }
        Ok(())
    }
}

/// An [`Env`] holding every file in memory.
#[derive(Clone, Default)]
pub struct MemEnv {
    fs: Arc<Mutex<FileSystem>>,
    faults: Arc<Mutex<FaultState>>,
    stats: Arc<IoStats>,
}

impl MemEnv {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> Self {
        MemEnv::default()
    }

    fn normalize(path: &Path) -> PathBuf {
        PathBuf::from(path)
    }

    /// After `successes` more appends to files whose path contains
    /// `substring`, every further append or sync to such files fails.
    ///
    /// With `successes = 0` the next touch fails immediately — e.g.
    /// `inject_write_error_after("MANIFEST", 0)` kills the store at the
    /// moment a compaction tries to commit its version edit, *after* its
    /// output sstables were fully written.
    pub fn inject_write_error_after(&self, substring: &str, successes: u64) {
        self.faults
            .lock()
            .fail_after
            .push((substring.to_string(), successes));
    }

    /// Removes every injected write-error pattern (simulates the machine
    /// coming back up healthy after the crash).
    pub fn clear_fault_injection(&self) {
        let mut faults = self.faults.lock();
        faults.fail_after.clear();
        faults.fail_removes.clear();
    }

    /// Makes `remove_file` and `remove_dir_all` fail for any path containing
    /// `substring`, without touching the files — an undeletable directory.
    /// Cleared by [`MemEnv::clear_fault_injection`].
    pub fn inject_remove_error(&self, substring: &str) {
        self.faults.lock().fail_removes.push(substring.to_string());
    }

    /// Adds `micros` of artificial latency to every append, so tests can
    /// widen compaction IO windows. `0` removes previously set delays.
    pub fn set_write_latency_micros(&self, micros: u64) {
        self.set_write_latency_micros_for("", micros);
    }

    /// Adds `micros` of artificial latency to appends of files whose path
    /// contains `substring` (e.g. `".sst"` to emulate a slow device for
    /// sstable writes while leaving the WAL fast). `0` removes the pattern.
    pub fn set_write_latency_micros_for(&self, substring: &str, micros: u64) {
        let mut faults = self.faults.lock();
        faults.write_latency.retain(|(p, _)| p != substring);
        if micros > 0 {
            faults.write_latency.push((substring.to_string(), micros));
        }
    }

    /// Truncates the named file to `len` bytes, simulating a torn write.
    ///
    /// Returns the previous length. Used by crash-recovery tests.
    pub fn truncate_file(&self, path: &Path, len: usize) -> Result<usize> {
        let fs = self.fs.lock();
        let data = fs
            .files
            .get(&Self::normalize(path))
            .ok_or_else(|| Error::invalid_argument(format!("no such file: {}", path.display())))?;
        let mut data = data.write();
        let old = data.len();
        data.truncate(len);
        Ok(old)
    }

    /// Returns the total bytes stored across all files (for space metrics).
    pub fn total_file_bytes(&self) -> u64 {
        let fs = self.fs.lock();
        fs.files.values().map(|f| f.read().len() as u64).sum()
    }

    /// Simulates the directory-entry loss of a crash: every file created and
    /// every rename performed since the last [`Env::sync_dir`] of its parent
    /// directory is rolled back — created files vanish, renames are undone
    /// (restoring whatever the target previously pointed at).
    ///
    /// File *contents* are untouched (torn data is modelled separately with
    /// [`MemEnv::truncate_file`]); this models exactly the metadata a real
    /// filesystem may lose when the directory was never fsynced. Crash tests
    /// call it between "power loss" and "reopen" to assert the engines
    /// `sync_dir` at every point where a directory entry must be durable.
    pub fn drop_unsynced_dir_entries(&self) {
        let mut fs = self.fs.lock();
        // Undo renames newest-first so chained renames unwind correctly.
        while let Some(rename) = fs.unsynced_renames.pop() {
            if let Some(data) = fs.files.remove(&rename.to) {
                fs.files.insert(rename.from.clone(), data);
            }
            if let Some(replaced) = rename.replaced {
                fs.files.insert(rename.to, replaced);
            }
        }
        let creates = std::mem::take(&mut fs.unsynced_creates);
        for path in creates {
            fs.files.remove(&path);
        }
    }

    /// Number of directory entries (creates + renames) a crash would lose
    /// right now. Zero means every entry was covered by a `sync_dir`.
    pub fn unsynced_dir_entries(&self) -> usize {
        let fs = self.fs.lock();
        fs.unsynced_creates.len() + fs.unsynced_renames.len()
    }
}

struct MemWritableFile {
    path: PathBuf,
    data: FileData,
    faults: Arc<Mutex<FaultState>>,
    stats: Arc<IoStats>,
}

impl WritableFile for MemWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let latency = self.faults.lock().check_append(&self.path)?;
        if latency > 0 {
            std::thread::sleep(std::time::Duration::from_micros(latency));
        }
        self.data.write().extend_from_slice(data);
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.faults.lock().check_sync(&self.path)?;
        self.stats.record_sync();
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.faults.lock().check_sync(&self.path)?;
        Ok(())
    }
}

struct MemRandomAccessFile {
    data: FileData,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for MemRandomAccessFile {
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let data = self.data.read();
        let start = (offset as usize).min(data.len());
        let end = (start + len).min(data.len());
        let out = data[start..end].to_vec();
        self.stats.record_read(out.len() as u64);
        Ok(out)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.read().len() as u64)
    }
}

struct MemSequentialFile {
    data: FileData,
    offset: usize,
    stats: Arc<IoStats>,
}

impl SequentialFile for MemSequentialFile {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let data = self.data.read();
        let remaining = data.len().saturating_sub(self.offset);
        let n = remaining.min(buf.len());
        buf[..n].copy_from_slice(&data[self.offset..self.offset + n]);
        self.offset += n;
        self.stats.record_read(n as u64);
        Ok(n)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        self.offset = self.offset.saturating_add(n as usize);
        Ok(())
    }
}

struct MemRandomWritableFile {
    data: FileData,
    stats: Arc<IoStats>,
}

impl RandomWritableFile for MemRandomWritableFile {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut file = self.data.write();
        let end = offset as usize + data.len();
        if file.len() < end {
            file.resize(end, 0);
        }
        file[offset as usize..end].copy_from_slice(data);
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let file = self.data.read();
        let start = (offset as usize).min(file.len());
        let end = (start + len).min(file.len());
        let out = file[start..end].to_vec();
        self.stats.record_read(out.len() as u64);
        Ok(out)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.read().len() as u64)
    }

    fn sync(&self) -> Result<()> {
        self.stats.record_sync();
        Ok(())
    }
}

impl Env for MemEnv {
    fn new_writable_file(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let mut fs = self.fs.lock();
        let data: FileData = Arc::new(RwLock::new(Vec::new()));
        fs.files.insert(Self::normalize(path), Arc::clone(&data));
        fs.unsynced_creates.push(Self::normalize(path));
        self.stats.record_file_created();
        Ok(Box::new(MemWritableFile {
            path: Self::normalize(path),
            data,
            faults: Arc::clone(&self.faults),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_random_access_file(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        let fs = self.fs.lock();
        let data = fs
            .files
            .get(&Self::normalize(path))
            .ok_or_else(|| Error::invalid_argument(format!("no such file: {}", path.display())))?;
        Ok(Arc::new(MemRandomAccessFile {
            data: Arc::clone(data),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_sequential_file(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        let fs = self.fs.lock();
        let data = fs
            .files
            .get(&Self::normalize(path))
            .ok_or_else(|| Error::invalid_argument(format!("no such file: {}", path.display())))?;
        Ok(Box::new(MemSequentialFile {
            data: Arc::clone(data),
            offset: 0,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_random_writable_file(&self, path: &Path) -> Result<Arc<dyn RandomWritableFile>> {
        let mut fs = self.fs.lock();
        let path = Self::normalize(path);
        if !fs.files.contains_key(&path) {
            self.stats.record_file_created();
            fs.files
                .insert(path.clone(), Arc::new(RwLock::new(Vec::new())));
            // Like new_writable_file: the directory entry is not durable
            // until the parent is synced.
            fs.unsynced_creates.push(path.clone());
        }
        let data = Arc::clone(&fs.files[&path]);
        Ok(Arc::new(MemRandomWritableFile {
            data,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.fs.lock().files.contains_key(&Self::normalize(path))
    }

    fn file_size(&self, path: &Path) -> Result<u64> {
        let fs = self.fs.lock();
        let data = fs
            .files
            .get(&Self::normalize(path))
            .ok_or_else(|| Error::invalid_argument(format!("no such file: {}", path.display())))?;
        let len = data.read().len() as u64;
        Ok(len)
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        self.faults.lock().check_remove(path)?;
        let mut fs = self.fs.lock();
        let path = Self::normalize(path);
        fs.files
            .remove(&path)
            .ok_or_else(|| Error::invalid_argument(format!("no such file: {}", path.display())))?;
        // A deleted file's pending directory entries are moot; dropping them
        // keeps a later simulated crash from resurrecting it.
        fs.unsynced_creates.retain(|p| *p != path);
        fs.unsynced_renames.retain(|r| r.to != path);
        self.stats.record_file_removed();
        Ok(())
    }

    fn rename_file(&self, from: &Path, to: &Path) -> Result<()> {
        let mut fs = self.fs.lock();
        let from = Self::normalize(from);
        let to = Self::normalize(to);
        let data = fs
            .files
            .remove(&from)
            .ok_or_else(|| Error::invalid_argument(format!("no such file: {}", from.display())))?;
        let replaced = fs.files.insert(to.clone(), data);
        fs.unsynced_renames
            .push(UnsyncedRename { from, to, replaced });
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        self.faults.lock().check_sync(path)?;
        let mut fs = self.fs.lock();
        let dir = Self::normalize(path);
        fs.unsynced_creates
            .retain(|p| p.parent() != Some(dir.as_path()));
        fs.unsynced_renames
            .retain(|r| r.to.parent() != Some(dir.as_path()));
        self.stats.record_dir_sync();
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        let mut fs = self.fs.lock();
        let path = Self::normalize(path);
        if !fs.dirs.contains(&path) {
            fs.dirs.push(path);
        }
        Ok(())
    }

    fn remove_dir_all(&self, path: &Path) -> Result<()> {
        self.faults.lock().check_remove(path)?;
        let mut fs = self.fs.lock();
        let prefix = Self::normalize(path);
        fs.files.retain(|p, _| !p.starts_with(&prefix));
        fs.dirs.retain(|p| !p.starts_with(&prefix));
        Ok(())
    }

    fn children(&self, path: &Path) -> Result<Vec<String>> {
        let fs = self.fs.lock();
        let prefix = Self::normalize(path);
        let mut out = Vec::new();
        for file in fs.files.keys() {
            if let Ok(rest) = file.strip_prefix(&prefix) {
                if let Some(name) = rest.to_str() {
                    if !name.is_empty() && !name.contains('/') {
                        out.push(name.to_string());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_simulates_torn_writes() {
        let env = MemEnv::new();
        let path = Path::new("/db/000001.log");
        {
            let mut f = env.new_writable_file(path).unwrap();
            f.append(b"0123456789").unwrap();
            f.close().unwrap();
        }
        let old = env.truncate_file(path, 4).unwrap();
        assert_eq!(old, 10);
        assert_eq!(env.file_size(path).unwrap(), 4);
        assert_eq!(env.read_file_to_vec(path).unwrap(), b"0123");
    }

    #[test]
    fn injected_write_errors_fire_after_the_success_budget() {
        let env = MemEnv::new();
        env.inject_write_error_after("MANIFEST", 2);

        // Non-matching files are unaffected.
        let mut log = env.new_writable_file(Path::new("/db/000007.log")).unwrap();
        log.append(b"fine").unwrap();
        log.sync().unwrap();

        let mut manifest = env
            .new_writable_file(Path::new("/db/MANIFEST-000001"))
            .unwrap();
        manifest.append(b"one").unwrap();
        manifest.append(b"two").unwrap();
        assert!(manifest.append(b"three").is_err(), "budget exhausted");
        assert!(manifest.sync().is_err(), "sync fails once budget is spent");
        // Nothing past the budget reached the file.
        assert_eq!(
            env.read_file_to_vec(Path::new("/db/MANIFEST-000001"))
                .unwrap(),
            b"onetwo"
        );

        env.clear_fault_injection();
        manifest.append(b"three").unwrap();
        manifest.sync().unwrap();
    }

    #[test]
    fn write_latency_injection_slows_appends() {
        let env = MemEnv::new();
        env.set_write_latency_micros(2_000);
        let mut f = env.new_writable_file(Path::new("/slow")).unwrap();
        let start = std::time::Instant::now();
        f.append(b"x").unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_micros(2_000));
        env.set_write_latency_micros(0);
    }

    #[test]
    fn children_lists_only_direct_entries() {
        let env = MemEnv::new();
        for name in ["/db/a.sst", "/db/b.log", "/db/sub/c.sst", "/other/d.sst"] {
            let mut f = env.new_writable_file(Path::new(name)).unwrap();
            f.append(b"x").unwrap();
        }
        let children = env.children(Path::new("/db")).unwrap();
        assert_eq!(children, vec!["a.sst".to_string(), "b.log".to_string()]);
    }

    #[test]
    fn remove_dir_all_wipes_subtree() {
        let env = MemEnv::new();
        for name in ["/db/a", "/db/b", "/keep/c"] {
            env.new_writable_file(Path::new(name)).unwrap();
        }
        env.remove_dir_all(Path::new("/db")).unwrap();
        assert!(!env.file_exists(Path::new("/db/a")));
        assert!(env.file_exists(Path::new("/keep/c")));
    }

    #[test]
    fn unsynced_dir_entries_are_lost_on_simulated_crash() {
        let env = MemEnv::new();
        {
            let mut f = env.new_writable_file(Path::new("/db/CURRENT")).unwrap();
            f.append(b"MANIFEST-000001\n").unwrap();
        }
        env.sync_dir(Path::new("/db")).unwrap(); // baseline becomes durable
        {
            let mut f = env.new_writable_file(Path::new("/db/CURRENT.tmp")).unwrap();
            f.append(b"MANIFEST-000002\n").unwrap();
        }
        env.rename_file(Path::new("/db/CURRENT.tmp"), Path::new("/db/CURRENT"))
            .unwrap();
        assert!(env.unsynced_dir_entries() > 0);

        env.drop_unsynced_dir_entries();
        // The unsynced rename rolled back and the unsynced create vanished.
        assert_eq!(
            env.read_file_to_vec(Path::new("/db/CURRENT")).unwrap(),
            b"MANIFEST-000001\n"
        );
        assert!(!env.file_exists(Path::new("/db/CURRENT.tmp")));
    }

    #[test]
    fn write_string_to_file_sync_dir_syncs_the_rename() {
        let env = MemEnv::new();
        env.write_string_to_file_sync(Path::new("/db/CURRENT"), b"MANIFEST-000007\n")
            .unwrap();
        assert_eq!(env.unsynced_dir_entries(), 0);
        env.drop_unsynced_dir_entries();
        assert_eq!(
            env.read_file_to_vec(Path::new("/db/CURRENT")).unwrap(),
            b"MANIFEST-000007\n"
        );
        assert!(env.io_stats().snapshot().dir_syncs >= 1);
    }

    #[test]
    fn total_file_bytes_tracks_contents() {
        let env = MemEnv::new();
        let mut f = env.new_writable_file(Path::new("/x")).unwrap();
        f.append(&[0u8; 100]).unwrap();
        let mut g = env.new_writable_file(Path::new("/y")).unwrap();
        g.append(&[0u8; 20]).unwrap();
        assert_eq!(env.total_file_bytes(), 120);
    }
}
