//! The on-disk environment backed by `std::fs`.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use pebblesdb_common::{Error, Result};

use crate::stats::IoStats;
use crate::{Env, RandomAccessFile, RandomWritableFile, SequentialFile, WritableFile};

/// An [`Env`] that stores files on the local filesystem.
#[derive(Clone, Default)]
pub struct DiskEnv {
    stats: Arc<IoStats>,
}

impl DiskEnv {
    /// Creates a disk environment with fresh IO counters.
    pub fn new() -> Self {
        DiskEnv {
            stats: Arc::new(IoStats::new()),
        }
    }
}

struct DiskWritableFile {
    writer: Option<BufWriter<File>>,
    stats: Arc<IoStats>,
}

impl WritableFile for DiskWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let writer = self
            .writer
            .as_mut()
            .ok_or_else(|| Error::internal("append on closed file"))?;
        writer.write_all(data)?;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if let Some(writer) = self.writer.as_mut() {
            writer.flush()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        if let Some(writer) = self.writer.as_mut() {
            writer.flush()?;
            writer.get_ref().sync_data()?;
            self.stats.record_sync();
        }
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        if let Some(mut writer) = self.writer.take() {
            writer.flush()?;
        }
        Ok(())
    }
}

struct DiskRandomAccessFile {
    file: File,
    len: u64,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for DiskRandomAccessFile {
    fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        // `read_at` style positional reads keep this method `&self`.
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut buf = vec![0u8; len];
            let mut total = 0usize;
            while total < len {
                let n = self
                    .file
                    .read_at(&mut buf[total..], offset + total as u64)?;
                if n == 0 {
                    break;
                }
                total += n;
            }
            buf.truncate(total);
            self.stats.record_read(total as u64);
            Ok(buf)
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.try_clone()?;
            file.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len];
            let mut total = 0usize;
            while total < len {
                let n = file.read(&mut buf[total..])?;
                if n == 0 {
                    break;
                }
                total += n;
            }
            buf.truncate(total);
            self.stats.record_read(total as u64);
            Ok(buf)
        }
    }

    fn len(&self) -> Result<u64> {
        Ok(self.len)
    }
}

struct DiskSequentialFile {
    file: File,
    stats: Arc<IoStats>,
}

impl SequentialFile for DiskSequentialFile {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        let n = self.file.read(buf)?;
        self.stats.record_read(n as u64);
        Ok(n)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        self.file.seek(SeekFrom::Current(n as i64))?;
        Ok(())
    }
}

struct DiskRandomWritableFile {
    file: File,
    stats: Arc<IoStats>,
}

impl RandomWritableFile for DiskRandomWritableFile {
    fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.write_all_at(data, offset)?;
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.try_clone()?;
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(data)?;
        }
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            let mut buf = vec![0u8; len];
            let mut total = 0usize;
            while total < len {
                let n = self
                    .file
                    .read_at(&mut buf[total..], offset + total as u64)?;
                if n == 0 {
                    break;
                }
                total += n;
            }
            buf.truncate(total);
            self.stats.record_read(total as u64);
            Ok(buf)
        }
        #[cfg(not(unix))]
        {
            let mut file = self.file.try_clone()?;
            file.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len];
            let n = file.read(&mut buf)?;
            buf.truncate(n);
            self.stats.record_read(n as u64);
            Ok(buf)
        }
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.record_sync();
        Ok(())
    }
}

impl Env for DiskEnv {
    fn new_writable_file(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        self.stats.record_file_created();
        Ok(Box::new(DiskWritableFile {
            writer: Some(BufWriter::with_capacity(64 << 10, file)),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_random_access_file(&self, path: &Path) -> Result<Arc<dyn RandomAccessFile>> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(DiskRandomAccessFile {
            file,
            len,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_sequential_file(&self, path: &Path) -> Result<Box<dyn SequentialFile>> {
        let file = File::open(path)?;
        Ok(Box::new(DiskSequentialFile {
            file,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn new_random_writable_file(&self, path: &Path) -> Result<Arc<dyn RandomWritableFile>> {
        let existed = path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if !existed {
            self.stats.record_file_created();
        }
        Ok(Arc::new(DiskRandomWritableFile {
            file,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn file_exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_size(&self, path: &Path) -> Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        fs::remove_file(path)?;
        self.stats.record_file_removed();
        Ok(())
    }

    fn rename_file(&self, from: &Path, to: &Path) -> Result<()> {
        fs::rename(from, to)?;
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        // fsync the directory itself so renames and newly created files in
        // it survive a crash; without this, `fs::rename` is atomic but the
        // new directory entry may never reach the device.
        let dir = File::open(path)?;
        dir.sync_all()?;
        self.stats.record_dir_sync();
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        fs::create_dir_all(path)?;
        Ok(())
    }

    fn remove_dir_all(&self, path: &Path) -> Result<()> {
        if path.exists() {
            fs::remove_dir_all(path)?;
        }
        Ok(())
    }

    fn children(&self, path: &Path) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_reads_do_not_disturb_each_other() {
        let dir = std::env::temp_dir().join(format!("pebbles-disk-pos-{}", std::process::id()));
        let env = DiskEnv::new();
        env.create_dir_all(&dir).unwrap();
        let path = dir.join("data");
        {
            let mut f = env.new_writable_file(&path).unwrap();
            f.append(b"0123456789").unwrap();
            f.close().unwrap();
        }
        let ra = env.new_random_access_file(&path).unwrap();
        assert_eq!(ra.read(2, 3).unwrap(), b"234");
        assert_eq!(ra.read(0, 2).unwrap(), b"01");
        assert_eq!(ra.read(8, 10).unwrap(), b"89");
        env.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_close_is_an_error() {
        let dir = std::env::temp_dir().join(format!("pebbles-disk-close-{}", std::process::id()));
        let env = DiskEnv::new();
        env.create_dir_all(&dir).unwrap();
        let path = dir.join("data");
        let mut f = env.new_writable_file(&path).unwrap();
        f.append(b"x").unwrap();
        f.close().unwrap();
        assert!(f.append(b"y").is_err());
        env.remove_dir_all(&dir).unwrap();
    }
}
