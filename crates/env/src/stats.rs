//! IO accounting shared by every file an [`Env`](crate::Env) creates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative IO counters for an environment.
///
/// The write-amplification experiments (Figure 1.1 and Figure 5.1a of the
/// paper) divide `bytes_written` by the user payload accepted by the store.
#[derive(Debug, Default)]
pub struct IoStats {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    writes: AtomicU64,
    reads: AtomicU64,
    syncs: AtomicU64,
    dir_syncs: AtomicU64,
    files_created: AtomicU64,
    files_removed: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Total bytes appended to writable files.
    pub bytes_written: u64,
    /// Total bytes returned by reads.
    pub bytes_read: u64,
    /// Number of append calls.
    pub writes: u64,
    /// Number of read calls.
    pub reads: u64,
    /// Number of sync calls.
    pub syncs: u64,
    /// Number of directory syncs (durability of renames and new files).
    pub dir_syncs: u64,
    /// Number of files created.
    pub files_created: u64,
    /// Number of files removed.
    pub files_removed: u64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Records `n` bytes written.
    pub fn record_write(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` bytes read.
    pub fn record_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a file sync.
    pub fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a directory sync.
    pub fn record_dir_sync(&self) {
        self.dir_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a file creation.
    pub fn record_file_created(&self) {
        self.files_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a file removal.
    pub fn record_file_removed(&self) {
        self.files_removed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Returns a consistent-enough copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            dir_syncs: self.dir_syncs.load(Ordering::Relaxed),
            files_created: self.files_created.load(Ordering::Relaxed),
            files_removed: self.files_removed.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.bytes_written.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.reads.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
        self.dir_syncs.store(0, Ordering::Relaxed);
        self.files_created.store(0, Ordering::Relaxed);
        self.files_removed.store(0, Ordering::Relaxed);
    }
}

impl IoStatsSnapshot {
    /// Bytes written since an earlier snapshot.
    pub fn written_since(&self, earlier: &IoStatsSnapshot) -> u64 {
        self.bytes_written.saturating_sub(earlier.bytes_written)
    }

    /// Bytes read since an earlier snapshot.
    pub fn read_since(&self, earlier: &IoStatsSnapshot) -> u64 {
        self.bytes_read.saturating_sub(earlier.bytes_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = IoStats::new();
        stats.record_write(10);
        stats.record_write(5);
        stats.record_read(3);
        stats.record_sync();
        stats.record_file_created();
        stats.record_file_removed();
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_written, 15);
        assert_eq!(snap.bytes_read, 3);
        assert_eq!(snap.writes, 2);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.syncs, 1);
        assert_eq!(snap.files_created, 1);
        assert_eq!(snap.files_removed, 1);
    }

    #[test]
    fn reset_zeroes_counters() {
        let stats = IoStats::new();
        stats.record_write(10);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn snapshot_deltas() {
        let stats = IoStats::new();
        stats.record_write(100);
        let before = stats.snapshot();
        stats.record_write(50);
        stats.record_read(7);
        let after = stats.snapshot();
        assert_eq!(after.written_since(&before), 50);
        assert_eq!(after.read_since(&before), 7);
    }
}
