//! Lazy iterators over the files of one level.
//!
//! Levels 1 and deeper hold files with disjoint key ranges, so a range query
//! only ever needs one file open at a time; [`LevelConcatIterator`] walks the
//! sorted file list and opens tables lazily through the table cache.

use std::sync::Arc;

use pebblesdb_common::iterator::DbIterator;
use pebblesdb_common::key::{compare_internal_keys, extract_user_key};
use pebblesdb_common::{ReadOptions, Result};
use pebblesdb_sstable::table::TableIterator;
use pebblesdb_sstable::TableCache;

use crate::version::FileMetaData;

/// Iterates over a sorted run of non-overlapping files, opening each sstable
/// only when the cursor reaches it.
pub struct LevelConcatIterator {
    table_cache: Arc<TableCache>,
    read_options: ReadOptions,
    files: Vec<Arc<FileMetaData>>,
    /// Index of the file the cursor is in; `files.len()` means unpositioned.
    index: usize,
    current: Option<TableIterator>,
    /// First error hit while opening a file; ends iteration.
    error: Option<pebblesdb_common::Error>,
}

impl LevelConcatIterator {
    /// Creates an iterator over `files`, which must be sorted by smallest key
    /// and non-overlapping.
    pub fn new(
        table_cache: Arc<TableCache>,
        read_options: ReadOptions,
        files: Vec<Arc<FileMetaData>>,
    ) -> Self {
        let index = files.len();
        LevelConcatIterator {
            table_cache,
            read_options,
            files,
            index,
            current: None,
            error: None,
        }
    }

    fn record_open_error(&mut self, result: Result<()>) -> bool {
        match result {
            Ok(()) => true,
            Err(err) => {
                self.error = Some(err);
                self.current = None;
                false
            }
        }
    }

    fn open_file(&mut self, index: usize) -> Result<()> {
        self.index = index;
        if index >= self.files.len() {
            self.current = None;
            return Ok(());
        }
        let file = &self.files[index];
        self.current = Some(self.table_cache.iter(
            &self.read_options,
            file.number,
            file.file_size,
        )?);
        Ok(())
    }

    fn skip_forward_while_invalid(&mut self) {
        while self.current.as_ref().map(|it| !it.valid()).unwrap_or(false) {
            let next = self.index + 1;
            if next >= self.files.len() {
                self.current = None;
                return;
            }
            let result = self.open_file(next);
            if !self.record_open_error(result) {
                return;
            }
            if let Some(iter) = self.current.as_mut() {
                iter.seek_to_first();
            }
        }
    }

    fn skip_backward_while_invalid(&mut self) {
        while self.current.as_ref().map(|it| !it.valid()).unwrap_or(false) {
            if self.index == 0 {
                self.current = None;
                return;
            }
            let result = self.open_file(self.index - 1);
            if !self.record_open_error(result) {
                return;
            }
            if let Some(iter) = self.current.as_mut() {
                iter.seek_to_last();
            }
        }
    }
}

impl DbIterator for LevelConcatIterator {
    fn valid(&self) -> bool {
        self.current.as_ref().map(|it| it.valid()).unwrap_or(false)
    }

    fn seek_to_first(&mut self) {
        if self.files.is_empty() {
            self.current = None;
            return;
        }
        let result = self.open_file(0);
        if !self.record_open_error(result) {
            return;
        }
        if let Some(iter) = self.current.as_mut() {
            iter.seek_to_first();
        }
        self.skip_forward_while_invalid();
    }

    fn seek_to_last(&mut self) {
        if self.files.is_empty() {
            self.current = None;
            return;
        }
        let last = self.files.len() - 1;
        let result = self.open_file(last);
        if !self.record_open_error(result) {
            return;
        }
        if let Some(iter) = self.current.as_mut() {
            iter.seek_to_last();
        }
        self.skip_backward_while_invalid();
    }

    fn seek(&mut self, target: &[u8]) {
        // Find the first file whose largest key is >= target.
        let index = self.files.partition_point(|f| {
            compare_internal_keys(f.largest.encoded(), target) == std::cmp::Ordering::Less
        });
        if index >= self.files.len() {
            self.current = None;
            self.index = self.files.len();
            return;
        }
        let result = self.open_file(index);
        if !self.record_open_error(result) {
            return;
        }
        if let Some(iter) = self.current.as_mut() {
            iter.seek(target);
        }
        self.skip_forward_while_invalid();
    }

    fn next(&mut self) {
        if let Some(iter) = self.current.as_mut() {
            iter.next();
        }
        self.skip_forward_while_invalid();
    }

    fn prev(&mut self) {
        if let Some(iter) = self.current.as_mut() {
            iter.prev();
        }
        self.skip_backward_while_invalid();
    }

    fn key(&self) -> &[u8] {
        self.current.as_ref().expect("iterator not valid").key()
    }

    fn value(&self) -> &[u8] {
        self.current.as_ref().expect("iterator not valid").value()
    }

    fn status(&self) -> Result<()> {
        if let Some(err) = &self.error {
            return Err(err.clone());
        }
        match &self.current {
            Some(iter) => iter.status(),
            None => Ok(()),
        }
    }
}

/// Returns the user key of the iterator's current entry (test helper).
pub fn current_user_key(iter: &dyn DbIterator) -> Vec<u8> {
    extract_user_key(iter.key()).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pebblesdb_common::filename::table_file_name;
    use pebblesdb_common::key::{encode_internal_key, InternalKey, ValueType};
    use pebblesdb_common::StoreOptions;
    use pebblesdb_env::{Env, MemEnv};
    use pebblesdb_sstable::TableBuilder;
    use std::path::{Path, PathBuf};

    fn build_file(
        env: &Arc<dyn Env>,
        db: &Path,
        options: &StoreOptions,
        number: u64,
        keys: &[&str],
    ) -> Arc<FileMetaData> {
        let file = env.new_writable_file(&table_file_name(db, number)).unwrap();
        let mut builder = TableBuilder::new(options, file);
        for k in keys {
            let key = encode_internal_key(k.as_bytes(), 1, ValueType::Value);
            builder.add(&key, b"v").unwrap();
        }
        let smallest = builder.first_key().unwrap().to_vec();
        let largest = builder.last_key().unwrap().to_vec();
        let size = builder.finish().unwrap();
        Arc::new(FileMetaData::new(
            number,
            size,
            InternalKey::from_encoded(smallest),
            InternalKey::from_encoded(largest),
        ))
    }

    #[test]
    fn concatenating_iterator_walks_files_lazily() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = PathBuf::from("/concat");
        env.create_dir_all(&db).unwrap();
        let options = StoreOptions::default();
        let files = vec![
            build_file(&env, &db, &options, 1, &["a", "b"]),
            build_file(&env, &db, &options, 2, &["f", "g"]),
            build_file(&env, &db, &options, 3, &["m", "n"]),
        ];
        let cache = Arc::new(TableCache::new(Arc::clone(&env), db, options.clone(), 16));
        let mut iter = LevelConcatIterator::new(Arc::clone(&cache), ReadOptions::default(), files);

        iter.seek_to_first();
        let mut seen = Vec::new();
        while iter.valid() {
            seen.push(current_user_key(&iter));
            iter.next();
        }
        assert_eq!(
            seen,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"f".to_vec(),
                b"g".to_vec(),
                b"m".to_vec(),
                b"n".to_vec()
            ]
        );

        // Seek lands on the right file.
        iter.seek(&encode_internal_key(b"c", u64::MAX >> 8, ValueType::Value));
        assert!(iter.valid());
        assert_eq!(current_user_key(&iter), b"f".to_vec());

        // Reverse iteration crosses file boundaries too.
        iter.seek_to_last();
        assert_eq!(current_user_key(&iter), b"n".to_vec());
        iter.prev();
        assert_eq!(current_user_key(&iter), b"m".to_vec());
        iter.prev();
        assert_eq!(current_user_key(&iter), b"g".to_vec());

        // Seeking past the end invalidates the iterator.
        iter.seek(&encode_internal_key(
            b"zzz",
            u64::MAX >> 8,
            ValueType::Value,
        ));
        assert!(!iter.valid());
    }

    #[test]
    fn empty_level_yields_nothing() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let cache = Arc::new(TableCache::new(
            Arc::clone(&env),
            PathBuf::from("/x"),
            StoreOptions::default(),
            4,
        ));
        let mut iter = LevelConcatIterator::new(cache, ReadOptions::default(), Vec::new());
        iter.seek_to_first();
        assert!(!iter.valid());
        iter.seek(&encode_internal_key(b"a", 1, ValueType::Value));
        assert!(!iter.valid());
    }
}
